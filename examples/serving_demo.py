"""Serving demo: cache, batching, parallel workers, and snapshot warm-start.

Run with::

    python examples/serving_demo.py

The script walks through the serving runtime on top of the reverse top-k
engine:

1. cold-start a service (index built, then archived as a snapshot),
2. warm-start a second service from the snapshot (no rebuild),
3. replay a skewed, repeat-heavy workload through the cache + dedup +
   batch + thread-pool pipeline and compare against the naive loop,
4. inspect the metrics endpoint,
5. persist a refinement and watch it invalidate stale cached answers.
"""

from pathlib import Path
import sys
import tempfile

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import IndexParams, ReverseTopKService, ServiceConfig
from repro.graph import copying_web_graph
from repro.utils.timer import Timer
from repro.workloads import replay, zipfian_query_workload


def main() -> None:
    graph = copying_web_graph(600, out_degree=6, seed=42)
    params = IndexParams(capacity=50, hub_budget=10)
    config = ServiceConfig(
        cache_capacity=256, max_batch_size=32, n_workers=2, backend="thread"
    )
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges")

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Cold start: the index is built and archived under a key derived
        #    from (graph fingerprint, index parameters).
        with Timer() as cold_timer:
            service = ReverseTopKService.from_graph(
                graph, params, config=config, snapshot_dir=tmp
            )
        print(
            f"cold start: {cold_timer.elapsed:.2f}s "
            f"(warm_started={service.warm_started})"
        )

        # 2. Warm start: an identical (graph, params) pair hits the snapshot.
        with Timer() as warm_timer:
            warm = ReverseTopKService.from_graph(
                graph, params, config=config, snapshot_dir=tmp
            )
        print(
            f"warm start: {warm_timer.elapsed:.2f}s "
            f"(warm_started={warm.warm_started}, "
            f"{cold_timer.elapsed / max(warm_timer.elapsed, 1e-9):.0f}x faster)"
        )
        warm.close()

        # 3. A skewed workload: a few hot queries dominate, like real traffic.
        workload = zipfian_query_workload(
            graph, 300, k=10, hot_fraction=0.05, seed=7
        )
        n_unique = len(set(workload.queries.tolist()))
        print(f"\nworkload: {len(workload)} requests, {n_unique} unique queries")

        with Timer() as naive_timer:
            naive = [
                service.engine.query(int(q), 10, update_index=False)
                for q in workload.queries
            ]
        report = replay(service, workload, burst_size=50)
        for direct, served in zip(naive, report.results):
            np.testing.assert_array_equal(served.nodes, direct.nodes)
        print(
            f"naive loop : {len(workload) / naive_timer.elapsed:7.0f} qps"
        )
        print(
            f"service    : {report.throughput_qps:7.0f} qps "
            f"({report.throughput_qps * naive_timer.elapsed / len(workload):.1f}x, "
            f"identical answers)"
        )

        # 4. The metrics endpoint explains where the speedup came from.
        metrics = service.metrics()
        print("\nservice metrics:")
        print(f"  requests          : {metrics.n_requests}")
        print(f"  cache hits        : {metrics.n_cache_hits} "
              f"(hit rate {metrics.cache.hit_rate:.0%})")
        print(f"  in-flight dedup   : {metrics.n_deduplicated}")
        print(f"  engine queries    : {metrics.n_engine_queries}")
        print(f"  executor batches  : {metrics.n_batches}")
        print(f"  p50 / p95 latency : {metrics.latency['p50_seconds'] * 1e3:.2f} / "
              f"{metrics.latency['p95_seconds'] * 1e3:.2f} ms")

        # 5. Refinements persist through the write path and bump the index
        #    version, which invalidates every cached answer automatically.
        hot = int(workload.queries[0])
        version_before = service.engine.index.version
        service.refine(hot, 10)
        print(f"\nindex version {version_before} -> {service.engine.index.version} "
              f"after persisting a refinement")
        service.query(hot, 10)  # recomputed under the new version
        print(f"engine queries after refinement: "
              f"{service.metrics().n_engine_queries} (stale cache entry skipped)")
        service.close()

        # 6. Sharded serving: partition the index into contiguous node-range
        #    shards served as memmap views over the snapshot layout.  The
        #    answers are bit-identical to the monolithic engine; the resident
        #    footprint shrinks to the hub matrix plus whatever the query mix
        #    actually touches.
        sharded = ReverseTopKService.from_graph(
            graph, params, config=config, snapshot_dir=tmp,
            n_shards=4,       # four contiguous node-range shards
            memory_budget=0,  # force the out-of-core memmap backing
        )
        index = sharded.engine.index
        print(f"\nsharded serving: {index.n_shards} shards, "
              f"backing={index.shards[0].backing}, "
              f"resident {index.resident_bytes() / 2**20:.2f} MB "
              f"of {index.total_bytes() / 2**20:.2f} MB logical")
        for query, k in [(11, 10), (42, 10)]:
            a = sharded.query(query, k)
            b = service.engine.query(query, k, update_index=False)
            np.testing.assert_array_equal(a.nodes, b.nodes)
        print("sharded answers identical to the monolithic engine "
              f"(resident now {index.resident_bytes() / 2**20:.2f} MB "
              "after lazily touching candidate states)")
        sharded.close()


if __name__ == "__main__":
    main()
