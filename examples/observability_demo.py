"""Observability demo: metrics registry, request tracing, kernel profiling.

Run with::

    python examples/observability_demo.py

The script walks the three pillars of the `repro.obs` layer:

1. profile the propagation kernel with an opt-in :class:`KernelProfiler`
   sink (the default sink is a no-op, so un-profiled runs pay nothing);
2. start the network server and send an ``X-Trace`` query — the response
   carries the full span tree: admission wait, coalesce batch, per-batch
   engine scan and its pmpn / scan / refine stages, with wall-clock
   timings at every level;
3. read back the slow-query ring buffer from ``GET /debug/slow``;
4. scrape ``GET /metrics`` twice — once as the historical JSON document,
   once as Prometheus text exposition — both rendered from one registry.
"""

import asyncio
from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import IndexParams, PropagationKernel
from repro.dynamic import DynamicReverseTopKService
from repro.graph import copying_web_graph, transition_matrix
from repro.net import ReverseTopKClient, ServerConfig, start_in_thread
from repro.obs import KernelProfiler


def print_span(span: dict, depth: int = 0) -> None:
    annotations = ", ".join(
        f"{key}={value}" for key, value in span["annotations"].items()
    )
    print(f"  {'  ' * depth}{span['name']:<16} "
          f"{span['seconds'] * 1e3:7.2f} ms"
          f"{'  (' + annotations + ')' if annotations else ''}")
    for child in span["children"]:
        print_span(child, depth + 1)


def profile_kernel(graph) -> None:
    # 1. The kernel accepts any profiler sink; the default NULL_PROFILER is
    #    a module-level no-op so production runs skip every hook.
    matrix = transition_matrix(graph)
    hub_mask = np.zeros(graph.n_nodes, dtype=bool)
    hub_mask[:6] = True
    profiler = KernelProfiler()
    kernel = PropagationKernel(
        matrix, hub_mask, IndexParams(capacity=20, hub_budget=6),
        profiler=profiler,
    )
    sources = np.arange(6, 106, dtype=np.int64)
    kernel.run(sources)
    kernel.run(sources)  # the second run reuses the pooled scan planes
    print("kernel profile (2 runs, 100 sources each):")
    print(f"  block iterations : {profiler.n_block_iterations} "
          f"({profiler.n_live_columns} live columns)")
    print(f"  product time     : {profiler.product_seconds * 1e3:.1f} ms")
    print(f"  peak plane bytes : {profiler.peak_plane_bytes / 2**10:.0f} KiB")
    print(f"  workspace reuse  : {profiler.workspace_hit_rate:.0%} hit rate")


async def drive(handle) -> None:
    async with ReverseTopKClient(handle.host, handle.port) as client:
        # 2. X-Trace: the span tree rides back on the response.
        response = await client.query(7, 10, trace=True)
        print("\ntraced query (X-Trace: 1), span tree:")
        print_span(response["trace"])

        # A couple of untraced queries to populate metrics and the slow log.
        await asyncio.gather(*[client.query(q, 10) for q in range(8)])

        # 3. The slow-query ring buffer (threshold 0 here, so every request
        #    qualifies; production defaults to 100 ms).
        slow = await client.slow_queries()
        print(f"\n/debug/slow: {slow['n_recorded']} recorded, "
              f"{slow['n_retained']} retained "
              f"(capacity {slow['capacity']})")
        newest = slow["entries"][0]
        print(f"  newest: query={newest['query']} "
              f"tenant={newest['tenant']} "
              f"{newest['seconds'] * 1e3:.2f} ms status={newest['status']}")

        # 4. One registry, two expositions.
        metrics = await client.metrics()
        tenant = metrics["tenants"]["default"]
        print("\n/metrics (JSON): "
              f"{metrics['server']['n_requests']} requests, "
              f"p95 {tenant['latency']['p95_seconds'] * 1e3:.2f} ms")
        text = await client.metrics_text()
        wanted = (
            "repro_http_requests_total",
            "repro_coalesce_submitted_total",
            "repro_request_seconds_count",
            "repro_rollover_generation",
        )
        print("/metrics (Prometheus text), excerpt:")
        for line in text.splitlines():
            if line.startswith(wanted):
                print(f"  {line}")


def main() -> None:
    graph = copying_web_graph(300, out_degree=5, seed=17)
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges\n")
    profile_kernel(graph)

    service = DynamicReverseTopKService.from_graph(graph)
    handle = start_in_thread(
        service,
        ServerConfig(slow_query_threshold=0.0, slow_log_capacity=32),
    )
    try:
        asyncio.run(drive(handle))
    finally:
        handle.stop()
    print("\nserver stopped")


if __name__ == "__main__":
    main()
