"""Network serving demo: HTTP front door, backpressure, live rollover.

Run with::

    python examples/server_demo.py

The script walks through the `repro.net` stack:

1. start a :class:`ReverseTopKServer` on a background event-loop thread,
   wrapping a :class:`DynamicReverseTopKService`;
2. fire a burst of concurrent queries through the async client and verify
   the answers are bit-identical to calling the engine directly;
3. overload a tight admission policy and watch explicit 429 + Retry-After
   backpressure engage (bounded queue, no silent latency growth);
4. apply a graph update batch through the zero-downtime rollover path and
   observe the generation / index version advance without dropping a query;
5. scrape ``GET /metrics`` for per-tenant percentiles and counters.
"""

import asyncio
from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.dynamic import DynamicReverseTopKService
from repro.graph import copying_web_graph
from repro.net import (
    AdmissionPolicy,
    ReverseTopKClient,
    ServerConfig,
    ServerRejected,
    start_in_thread,
)


def absent_edge(graph):
    """First (u, v) pair not already in the graph (for the update demo)."""
    present = {(u, v) for u, v, _ in graph.edges()}
    for u in range(graph.n_nodes):
        for v in range(graph.n_nodes):
            if u != v and (u, v) not in present:
                return u, v
    raise RuntimeError("graph is complete")


async def drive(handle, service, new_edge) -> None:
    async with ReverseTopKClient(
        handle.host, handle.port, max_connections=128
    ) as client:
        # 2. A concurrent burst: the coalescer funnels all connections onto
        #    one batched serve() call; answers match the engine bit for bit.
        queries = [(q % 60, 10) for q in range(48)]
        responses = await asyncio.gather(
            *[client.query(q, k) for q, k in queries]
        )
        for (q, k), response in zip(queries, responses):
            direct = service.engine.query(q, k, update_index=False)
            np.testing.assert_array_equal(response["nodes"], direct.nodes)
            np.testing.assert_array_equal(
                response["proximities"], direct.proximities_to_query
            )
        print(f"burst of {len(queries)} concurrent queries: "
              "answers bit-identical to the in-process engine")

        # 3. Overload: more simultaneous requests than max_pending allows.
        #    The server sheds the excess with 429 + Retry-After instead of
        #    queueing without bound.
        outcomes = await asyncio.gather(
            *[client.query(q % 60, 10) for q in range(120)],
            return_exceptions=True,
        )
        shed = [o for o in outcomes if isinstance(o, ServerRejected)]
        served = [o for o in outcomes if isinstance(o, dict)]
        print(f"overload burst: {len(served)} served, {len(shed)} shed with "
              f"429 (Retry-After ~{shed[0].retry_after:.3f}s)" if shed else
              "overload burst: all served (host too fast to overload)")

        # 4. Zero-downtime rollover: queries keep flowing while the update
        #    batch is maintained on a clone and swapped in atomically.
        before = await client.query(0, 10)
        ack = await client.update([("add", *new_edge)])
        after = await client.query(0, 10)
        print(f"rollover: generation {before['generation']} -> "
              f"{after['generation']}, index version "
              f"{before['index_version']} -> {after['index_version']} "
              f"(changed={ack['changed']}, "
              f"invalidated={ack['n_invalidated']} states)")

        # 5. The metrics endpoint aggregates every layer.
        metrics = await client.metrics()
        tenant = metrics["tenants"]["default"]
        print("\n/metrics snapshot:")
        print(f"  admitted / completed : {tenant['counters']['admitted']} / "
              f"{tenant['counters']['completed']}")
        print(f"  shed (queue full)    : {tenant['counters']['shed_queue_full']}")
        print(f"  coalesced joins      : {metrics['coalesce']['n_coalesced']}")
        print(f"  serve bursts         : {metrics['coalesce']['n_batches']} "
              f"for {metrics['coalesce']['n_submitted']} submissions")
        print(f"  peak queue depth     : {metrics['admission']['peak_pending']} "
              f"(bound {metrics['admission']['max_pending']})")
        print(f"  p50 / p95 latency    : "
              f"{tenant['latency']['p50_seconds'] * 1e3:.2f} / "
              f"{tenant['latency']['p95_seconds'] * 1e3:.2f} ms")
        print(f"  rollovers            : {metrics['rollover']['n_rollovers']}")


def main() -> None:
    graph = copying_web_graph(60, out_degree=4, seed=11)
    service = DynamicReverseTopKService.from_graph(graph)
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges")

    # 1. The server owns its event loop on a background thread; the handle
    #    exposes the bound address and a blocking stop().
    config = ServerConfig(
        admission=AdmissionPolicy(max_pending=64, retry_after_s=0.02),
        batch_window=0.002,
    )
    handle = start_in_thread(service, config)
    print(f"serving on http://{handle.host}:{handle.port}")
    try:
        asyncio.run(drive(handle, service, absent_edge(graph)))
    finally:
        handle.stop()
    print("\nserver stopped; generations drained and closed")


if __name__ == "__main__":
    main()
