"""Quickstart: build a reverse top-k index and run queries on a web-like graph.

Run with::

    python examples/quickstart.py

The script walks through the full life-cycle of the library:

1. generate (or load) a directed graph,
2. build the lower-bound index offline (Algorithm 1 of the paper),
3. answer reverse top-k queries online (Algorithm 4),
4. inspect the per-query statistics that explain *why* it is fast,
5. persist the refined index for the next session.
"""

from pathlib import Path
import sys
import tempfile

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import IndexParams, ReverseTopKEngine, brute_force_reverse_topk
from repro.core import ReverseTopKIndex
from repro.graph import copying_web_graph, transition_matrix


def main() -> None:
    # 1. A 400-node web-like graph (power-law in-degrees, like the paper's crawls).
    graph = copying_web_graph(400, out_degree=6, seed=42)
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges")

    # 2. Offline indexing.  K bounds the largest k any query may use; the hub
    #    budget B picks the top in-/out-degree nodes whose proximity vectors
    #    are precomputed exactly.
    params = IndexParams(capacity=50, hub_budget=10)
    engine = ReverseTopKEngine.build(graph, params)
    print(f"index: {engine.index}")
    print(f"index build time: {engine.index.build_seconds:.3f}s")

    # 3. Online queries: which nodes have node 7 among their top-10 proximities?
    query_node, k = 7, 10
    result = engine.query(query_node, k)
    print(f"\nreverse top-{k} of node {query_node}: {len(result.nodes)} nodes")
    print("strongest members (node, proximity to query):")
    for node, proximity in result.ranked()[:5]:
        print(f"  node {node:4d}  proximity {proximity:.5f}")

    # 4. The statistics show the pruning at work: only a handful of candidates
    #    out of 400 nodes ever needed a second look.
    stats = result.statistics
    print("\nquery statistics:")
    print(f"  candidates after lower-bound pruning : {stats.n_candidates}")
    print(f"  immediate hits via upper bound       : {stats.n_hits}")
    print(f"  refinement iterations                : {stats.n_refinement_iterations}")
    print(f"  PMPN iterations                      : {stats.pmpn_iterations}")
    print(f"  total time                           : {stats.seconds * 1000:.1f} ms")

    # Sanity check against the brute-force definition (only viable on small
    # graphs).  Nodes whose k-th proximity exactly ties the proximity to the
    # query may legitimately differ between solvers, so compare by overlap.
    expected = set(brute_force_reverse_topk(transition_matrix(graph), query_node, k).tolist())
    ours = set(result.nodes.tolist())
    overlap = len(ours & expected) / max(1, len(ours | expected))
    print(f"\nagreement with brute force: {overlap:.1%} "
          f"({len(ours)} vs {len(expected)} nodes; differences are exact ties)")

    # 5. Persist the (already refined) index and load it back.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "index.npz"
        engine.index.save(path)
        reloaded = ReverseTopKIndex.load(path)
        print(f"round-tripped index covers {reloaded.n_nodes} nodes "
              f"({reloaded.total_bytes() / 1024:.1f} KB on disk)")


if __name__ == "__main__":
    main()
