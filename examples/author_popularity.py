"""Author popularity in a co-authorship network (paper §5.4, Table 3).

Run with::

    python examples/author_popularity.py

The paper ranks DBLP authors by the size of their reverse top-5 list under a
*weighted* random walk (transition probability proportional to the number of
co-authored papers).  The headline result: truly popular authors are ranked
highly by far more researchers than they ever co-authored with — the reverse
top-k size is a stronger popularity signal than the degree.
"""

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import AuthorPopularityAnalyzer
from repro.core import IndexParams
from repro.graph import datasets


def main() -> None:
    graph, paper_counts = datasets.dblp(scale=0.12, seed=5)
    print(f"co-authorship graph: {graph.n_nodes} authors, "
          f"{graph.n_edges} directed collaboration edges")

    analyzer = AuthorPopularityAnalyzer(
        graph, k=5, params=IndexParams(capacity=30, hub_budget=8)
    )

    print("\nauthors with the longest reverse top-5 lists (cf. Table 3):")
    print(f"{'author':<12} {'reverse top-5 size':>18} {'# coauthors':>12} {'indirect':>9}")
    for record in analyzer.ranking(top=10):
        print(
            f"{record.name:<12} {record.reverse_top_k_size:>18d} "
            f"{record.n_coauthors:>12d} {record.indirect_reach:>9d}"
        )

    # The paper's point: reverse top-k size versus plain degree.
    mapping = analyzer.popularity_versus_degree()
    exceed = sum(1 for size, degree in mapping.values() if size > degree)
    print(
        f"\n{exceed} of {graph.n_nodes} authors are in more top-5 lists than they "
        "have co-authors — their influence reaches beyond direct collaboration."
    )


if __name__ == "__main__":
    main()
