"""Product-influence analysis on a co-purchase graph (paper §1 motivation).

Run with::

    python examples/product_influence.py

"In a product co-purchase graph, a reverse top-k query of a product q can
identify which products influence the buying of q" — this example builds a
synthetic co-purchase graph, finds the influencers of a few products and
suggests cross-promotion bundles.
"""

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import ProductInfluenceAnalyzer
from repro.core import IndexParams
from repro.graph import datasets


def main() -> None:
    graph, categories = datasets.amazon_copurchase(scale=0.25, seed=6)
    print(f"co-purchase graph: {graph.n_nodes} products, {graph.n_edges} edges, "
          f"{categories.max() + 1} categories")

    analyzer = ProductInfluenceAnalyzer(
        graph, k=10, params=IndexParams(capacity=30, hub_budget=10)
    )

    for product in (3, 42, 117):
        record = analyzer.influencers(product)
        print(f"\nproduct {product} (category {categories[product]}):")
        print(f"  {len(record.influencers)} products have it in their top-10 "
              "co-purchase proximities")
        print("  strongest influencers:", record.top(5))
        print("  suggested promotion bundle:", analyzer.promotion_bundle(product, size=3))

    # A simple influence leaderboard across a sample of products.
    sample = list(range(0, graph.n_nodes, max(1, graph.n_nodes // 20)))
    scores = analyzer.influence_scores(sample)
    leaders = sorted(scores.items(), key=lambda item: -item[1])[:5]
    print("\nmost influential products in the sample (by reverse top-10 list size):")
    for product, size in leaders:
        print(f"  product {product:4d}  influences {size:3d} products "
              f"(category {categories[product]})")


if __name__ == "__main__":
    main()
