"""Spam-host detection with reverse top-k queries (paper §5.4, first application).

Run with::

    python examples/spam_detection.py

A synthetic labelled host graph stands in for the Webspam UK2006 dataset: spam
hosts form link farms that funnel their PageRank contribution into a few
targets.  A reverse top-k query on a suspicious host reveals exactly which
hosts give it one of their top-k contributions — for spam, these are almost
all other spam hosts.
"""

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.apps import SpamDetector
from repro.core import IndexParams
from repro.graph import datasets


def main() -> None:
    graph, labels = datasets.webspam(scale=0.12, seed=4)
    n_spam = int(labels.sum())
    print(f"host graph: {graph.n_nodes} hosts ({n_spam} labelled spam), "
          f"{graph.n_edges} links")

    detector = SpamDetector(
        graph, labels, k=5, params=IndexParams(capacity=30, hub_budget=10)
    )

    # Reproduce the paper's aggregate measurement.
    report = detector.evaluate(max_queries_per_class=30)
    print(f"\nreverse top-{report.k} composition (averaged over "
          f"{report.spam_queries}+{report.normal_queries} labelled queries):")
    print(f"  spam queries   -> {report.mean_spam_ratio_for_spam:6.1%} of their "
          "reverse sets are spam hosts")
    print(f"  normal queries -> {report.mean_spam_ratio_for_normal:6.1%} of their "
          "reverse sets are spam hosts")
    print(f"  separation     -> {report.separation():.2f}")

    # Use the signal as a classifier on a few "unlabelled" hosts.
    rng = np.random.default_rng(0)
    suspects = rng.choice(graph.n_nodes, size=6, replace=False)
    print("\nper-host spam scores (fraction of spam in the reverse top-5 set):")
    for host in suspects:
        ratio = detector.spam_ratio(int(host))
        verdict = "SPAM " if detector.classify(int(host)) else "clean"
        truth = "spam" if labels[host] else "normal"
        print(f"  host {int(host):4d}  score {ratio:4.2f}  -> {verdict} (label: {truth})")


if __name__ == "__main__":
    main()
