"""Dynamic-graph demo: query, mutate, query again — without rebuilding.

Run with::

    python examples/dynamic_demo.py

The script walks through the dynamic subsystem on top of the serving
runtime:

1. build a dynamic service over a synthetic web graph,
2. serve a query burst (populating the result cache),
3. apply an update batch (edge insert + delete + weight change) and watch
   the maintainer invalidate only the affected index states,
4. re-serve the same burst: cached answers from the old graph generation
   are gone, the recomputed ones match a from-scratch engine exactly,
5. apply a no-op batch (weight changes under the unweighted walk) and watch
   the cache stay warm.
"""

from pathlib import Path
import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import (
    DynamicReverseTopKService,
    GraphUpdate,
    IndexParams,
    ReverseTopKEngine,
    ServiceConfig,
    build_index,
)
from repro.graph import copying_web_graph
from repro.utils.timer import Timer


def main() -> None:
    graph = copying_web_graph(600, out_degree=6, seed=42)
    params = IndexParams(capacity=50, hub_budget=10)
    config = ServiceConfig(cache_capacity=256, max_batch_size=32)
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges")

    # 1. One service, built once — it will survive every mutation below.
    with Timer() as build_timer:
        service = DynamicReverseTopKService.from_graph(graph, params, config=config)
    print(f"initial build: {build_timer.elapsed:.2f}s")

    # 2. Serve a burst; repeats hit the version-keyed cache.
    requests = [(q, 10) for q in (7, 42, 7, 99, 42, 7)]
    before = service.serve(requests)
    metrics = service.metrics()
    print(
        f"\nserved {metrics.n_requests} requests "
        f"({metrics.n_cache_hits} cache hits, "
        f"{metrics.n_engine_queries} engine queries)"
    )

    # 3. The graph churns: a link appears, one vanishes, one drifts.
    u, v, _ = next(service.graph.base.edges())
    batch = [
        GraphUpdate.add(7, 550),
        GraphUpdate.remove(u, v),
        GraphUpdate.set_weight(*next(iter([(s, t) for s, t, _ in graph.edges() if (s, t) != (u, v)])), 2.5),
    ]
    version_before = service.engine.index.version
    with Timer() as update_timer:
        report = service.apply_updates(batch)
    print(
        f"\napplied {len(batch)} updates in {update_timer.elapsed * 1e3:.0f}ms: "
        f"{report.n_changed_columns} transition columns changed, "
        f"{report.n_invalidated}/{service.engine.n_nodes} states invalidated, "
        f"{report.n_rematerialized} re-expanded, "
        f"full_rebuild={report.full_rebuild}"
    )
    print(
        f"index version {version_before} -> {service.engine.index.version} "
        f"(old cache generation retired)"
    )

    # 4. Same burst again: answers are recomputed on the new graph and match
    #    a from-scratch engine bit for bit.
    after = service.serve(requests)
    changed = sum(
        not np.array_equal(a.nodes, b.nodes) for a, b in zip(before, after)
    )
    fresh = ReverseTopKEngine(
        service.engine.transition,
        build_index(
            service.graph.base,
            params.for_graph(graph.n_nodes),
            hubs=service.engine.index.hubs,
            transition=service.engine.transition,
        ),
    )
    for (query, k), served in zip(requests, after):
        direct = fresh.query(query, k, update_index=False)
        np.testing.assert_array_equal(served.nodes, direct.nodes)
    print(
        f"\nre-served the burst: {changed} answers changed with the graph, "
        f"all bit-identical to a from-scratch rebuild"
    )

    # 5. Weight changes don't move the unweighted random walk: the service
    #    detects the no-op and keeps every cached answer alive.
    engine_queries = service.metrics().n_engine_queries
    edges = [(s, t) for s, t, _ in service.graph.base.edges()]
    noop = service.apply_updates(
        [GraphUpdate.set_weight(s, t, 3.0) for s, t in edges[:3]]
    )
    service.serve(requests)
    metrics = service.metrics()
    print(
        f"\nno-op batch (weight-only churn): changed={noop.changed}, "
        f"engine queries {engine_queries} -> {metrics.n_engine_queries} "
        f"(cache stayed warm)"
    )
    print(f"\nupdate metrics: {service.update_metrics().as_dict()}")
    service.close()


if __name__ == "__main__":
    main()
