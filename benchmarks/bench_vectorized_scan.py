"""Seed-vs-columnar scan benchmark: per-query scan-stage time, recorded to JSON.

The vectorized engine replaces the seed's per-node Python loop with columnar
whole-array stages.  This benchmark measures the scan stage of both
implementations on a 2,000-node copying-web graph, checks that they produce
identical results and statistics, asserts the vectorized scan is at least 5x
faster, and writes the raw numbers to ``benchmarks/results/vectorized_scan.json``
so future PRs have a perf trajectory to compare against.
"""

import json
from pathlib import Path
import statistics

import numpy as np

from repro.core import IndexParams, ReverseTopKEngine, build_index
from repro.graph import copying_web_graph, transition_matrix

N_NODES = 2_000
K = 10
N_QUERIES = 25
MIN_SPEEDUP = 5.0

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "vectorized_scan.json"

_COUNTERS = (
    "n_results",
    "n_candidates",
    "n_hits",
    "n_exact_shortcut",
    "n_pruned_immediately",
    "n_refinement_iterations",
    "n_refined_nodes",
    "n_exact_fallbacks",
)


def test_vectorized_scan_speedup(benchmark):
    graph = copying_web_graph(N_NODES, out_degree=5, seed=3)
    matrix = transition_matrix(graph)
    params = IndexParams(capacity=50, hub_budget=8)
    index = build_index(graph, params, transition=matrix)
    engine = ReverseTopKEngine(matrix, index)
    queries = list(range(0, N_NODES, N_NODES // N_QUERIES))[:N_QUERIES]

    # Warm the index so both modes measure the steady-state scan, not
    # first-touch refinement work.
    engine.query_many(queries, K, update_index=True)

    scalar_scan = []
    vectorized_scan = []
    for query in queries:
        vec = engine.query(query, K, scan_mode="vectorized")
        sca = engine.query(query, K, scan_mode="scalar")
        # Equivalence at benchmark scale: same results, same counters.
        np.testing.assert_array_equal(vec.nodes, sca.nodes)
        for counter in _COUNTERS:
            assert getattr(vec.statistics, counter) == getattr(sca.statistics, counter)
        vectorized_scan.append(vec.statistics.stage_seconds["scan"])
        scalar_scan.append(sca.statistics.stage_seconds["scan"])

    benchmark(lambda: engine.query(queries[0], K, scan_mode="vectorized"))

    scalar_mean = statistics.mean(scalar_scan)
    vectorized_mean = statistics.mean(vectorized_scan)
    speedup = scalar_mean / vectorized_mean
    record = {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "k": K,
        "n_queries": len(queries),
        "capacity": params.capacity,
        "hub_budget": params.hub_budget,
        "scalar_scan_seconds_mean": scalar_mean,
        "scalar_scan_seconds_median": statistics.median(scalar_scan),
        "vectorized_scan_seconds_mean": vectorized_mean,
        "vectorized_scan_seconds_median": statistics.median(vectorized_scan),
        "speedup_mean": speedup,
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nscan stage on {graph.n_nodes}-node copying-web graph (k={K}): "
        f"scalar {scalar_mean * 1e3:.3f} ms, vectorized {vectorized_mean * 1e3:.3f} ms "
        f"-> {speedup:.1f}x"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized scan only {speedup:.1f}x faster than the seed per-node loop "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )
