"""Ablation — batched ink propagation (Eq. 8-9) vs. single-node BCA/push.

The paper argues the batched rule reduces both the node-selection cost and the
number of iterations compared to propagating a single node per step ([7], [2]).
This ablation builds a lower-bound approximation of the same quality with each
strategy and compares the work required.
"""

import numpy as np
import scipy.sparse as sp

from repro.core import IndexParams, PropagationKernel
from repro.core.propagation import initial_node_state
from repro.evaluation.tables import format_table
from repro.rwr import bca_proximity_vector, push_proximity_vector
from repro.utils.timer import Timer

DATASET = "web-stanford-cs"
RESIDUE_TARGET = 0.1
N_SOURCES = 20


def _batched_until_target(matrix, source, params):
    # The batched rule as the index uses it: single-source steps through the
    # propagation kernel's scalar backend (the paper's Eq. 8-9 loop).
    kernel = PropagationKernel(
        matrix, np.zeros(matrix.shape[0], dtype=bool), params, backend="scalar"
    )
    state = initial_node_state(source, False)
    iterations = 0
    while state.residual_mass > RESIDUE_TARGET and iterations < 10_000:
        if not kernel.step(state):
            break
        iterations += 1
    return iterations


def test_ablation_batched_vs_single_node(benchmark, bench_graphs, bench_transitions,
                                         write_result_file):
    graph = bench_graphs[DATASET]
    matrix = sp.csc_matrix(bench_transitions[DATASET])
    params = IndexParams(capacity=50, hub_budget=0, residue_threshold=RESIDUE_TARGET)
    rng = np.random.default_rng(0)
    sources = rng.integers(0, graph.n_nodes, size=N_SOURCES)

    benchmark.pedantic(
        lambda: _batched_until_target(matrix, int(sources[0]), params),
        rounds=3,
        iterations=1,
    )

    with Timer() as batched_timer:
        batched_iterations = [
            _batched_until_target(matrix, int(source), params) for source in sources
        ]
    with Timer() as single_timer:
        single_pushes = [
            bca_proximity_vector(
                matrix, int(source), residue_threshold=RESIDUE_TARGET
            ).iterations
            for source in sources
        ]
    with Timer() as push_timer:
        threshold_pushes = [
            push_proximity_vector(
                matrix, int(source), propagation_threshold=params.propagation_threshold
            ).iterations
            for source in sources
        ]

    rows = [
        ["batched (ours)", float(np.mean(batched_iterations)), batched_timer.elapsed],
        ["single max-residue [7]", float(np.mean(single_pushes)), single_timer.elapsed],
        ["single threshold push [2]", float(np.mean(threshold_pushes)), push_timer.elapsed],
    ]
    text = format_table(
        ["strategy", "mean iterations", "total time (s)"],
        rows,
        title=f"Ablation — ink propagation strategy, {DATASET} ({N_SOURCES} sources)",
    )
    write_result_file("ablation_batched_bca", text)
    print("\n" + text)

    # The batched strategy needs far fewer iterations than single-node pushes
    # to reach the same residue target (each iteration does more work, but the
    # per-iteration selection scan is amortised — the paper's argument).
    assert np.mean(batched_iterations) < np.mean(single_pushes)
