"""Observability overhead benchmark: what instrumentation actually costs.

Three A/B comparisons on one copying-web graph, timed interleaved
(round-robin, best of ``N_REPEATS``) so machine drift cancels:

1. **tracing off** (the shipped default) versus a stripped baseline where
   the scan path's ``current_span`` hooks are swapped for the cheapest
   possible stub — this measures the pay-as-you-go contract and is the
   one hard assertion (``MAX_TRACING_OFF_OVERHEAD``, < 2%);
2. **tracing on** (a ``Trace`` activated around every query, full span
   trees materialized) versus tracing off — reported, not asserted, so
   the cost of opting in stays visible in the results JSON;
3. **kernel profiling on** (:class:`KernelProfiler` sink) versus the
   default :data:`NULL_PROFILER` on a propagation build.

Raw numbers land in ``benchmarks/results/observability_overhead.json``.
"""

from contextlib import contextmanager
import gc
import json
from pathlib import Path
import time

import numpy as np

from repro.core import IndexParams, PropagationKernel, ReverseTopKEngine, build_index
from repro.core.lbi import _compute_hub_matrix, default_hub_selection
import repro.core.query as query_module
import repro.core.sharding as sharding_module
from repro.graph import copying_web_graph, transition_matrix
from repro.obs import KernelProfiler, Trace

N_NODES = 500
OUT_DEGREE = 5
GRAPH_SEED = 9
CAPACITY = 30
HUB_BUDGET = 8
K = 10
N_QUERIES = 40
N_REPEATS = 7
#: The pay-as-you-go contract: with no active trace the scan path may cost
#: at most 2% over a build with the hooks stripped out entirely.
MAX_TRACING_OFF_OVERHEAD = 1.02

RESULTS_JSON = (
    Path(__file__).resolve().parent / "results" / "observability_overhead.json"
)


@contextmanager
def _stripped_hooks():
    """Replace the scan path's tracing hooks with the cheapest stub."""
    saved = (query_module.current_span, sharding_module.current_span)
    query_module.current_span = lambda: None
    sharding_module.current_span = lambda: None
    try:
        yield
    finally:
        query_module.current_span, sharding_module.current_span = saved


def _time_queries(engine, traced: bool = False) -> float:
    start = time.perf_counter()
    for query in range(N_QUERIES):
        if traced:
            with Trace("bench"):
                engine.query(query, K, update_index=False)
        else:
            engine.query(query, K, update_index=False)
    return time.perf_counter() - start


def test_observability_overhead():
    graph = copying_web_graph(N_NODES, out_degree=OUT_DEGREE, seed=GRAPH_SEED)
    matrix = transition_matrix(graph)
    params = IndexParams(capacity=CAPACITY, hub_budget=HUB_BUDGET)
    index = build_index(graph, params, transition=matrix)
    engine = ReverseTopKEngine(matrix, index)

    # ------------------------------------------------------------------ #
    # scan path: stripped / tracing off / tracing on, interleaved
    # ------------------------------------------------------------------ #
    _time_queries(engine)  # warm up caches and the allocator
    rounds = []
    for repeat in range(N_REPEATS):
        gc.collect()
        samples = {}
        if repeat % 2:  # alternate order so machine drift cancels
            with _stripped_hooks():
                samples["stripped"] = _time_queries(engine)
            samples["tracing_off"] = _time_queries(engine)
        else:
            samples["tracing_off"] = _time_queries(engine)
            with _stripped_hooks():
                samples["stripped"] = _time_queries(engine)
        samples["tracing_on"] = _time_queries(engine, traced=True)
        rounds.append(samples)

    best = {
        name: min(samples[name] for samples in rounds)
        for name in ("stripped", "tracing_off", "tracing_on")
    }
    # Two noise-robust views of the pay-as-you-go contract: best-vs-best
    # across all rounds, and the best same-round pairing (immune to drift
    # between early and late rounds).  The instrumentation's true cost
    # cannot exceed the smaller of the two.
    tracing_off_overhead = min(
        best["tracing_off"] / best["stripped"],
        min(s["tracing_off"] / s["stripped"] for s in rounds),
    )
    tracing_on_overhead = best["tracing_on"] / best["tracing_off"]

    # ------------------------------------------------------------------ #
    # kernel build: NULL_PROFILER (default) versus a live KernelProfiler
    # ------------------------------------------------------------------ #
    hubs = default_hub_selection(graph, params)
    hub_matrix, _, _ = _compute_hub_matrix(matrix, hubs, params)
    hub_mask = hubs.mask(graph.n_nodes)
    sources = np.array(
        [node for node in range(200) if not hub_mask[node]], dtype=np.int64
    )
    kernels = {
        "null_profiler": PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
        ),
        "kernel_profiler": PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            profiler=KernelProfiler(),
        ),
    }
    for kernel in kernels.values():  # warmup (also fills the plane pools)
        kernel.run(sources)
    kernel_best = {}
    for _ in range(N_REPEATS):
        for name, kernel in kernels.items():
            start = time.perf_counter()
            kernel.run(sources)
            elapsed = time.perf_counter() - start
            if name not in kernel_best or elapsed < kernel_best[name]:
                kernel_best[name] = elapsed
    profiler_overhead = kernel_best["kernel_profiler"] / kernel_best["null_profiler"]

    record = {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "capacity": CAPACITY,
        "hub_budget": HUB_BUDGET,
        "k": K,
        "n_queries": N_QUERIES,
        "n_repeats": N_REPEATS,
        "scan_seconds": best,
        "tracing_off_overhead": tracing_off_overhead,
        "tracing_on_overhead": tracing_on_overhead,
        "kernel_build_seconds": kernel_best,
        "profiler_on_overhead": profiler_overhead,
        "max_tracing_off_overhead": MAX_TRACING_OFF_OVERHEAD,
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    print(
        f"\nscan ({N_QUERIES} queries, {graph.n_nodes} nodes): "
        f"stripped {best['stripped'] * 1e3:.1f} ms, "
        f"tracing off {best['tracing_off'] * 1e3:.1f} ms "
        f"(+{(tracing_off_overhead - 1) * 100:.2f}%), "
        f"tracing on {best['tracing_on'] * 1e3:.1f} ms "
        f"(+{(tracing_on_overhead - 1) * 100:.1f}% over off); "
        f"kernel build with profiler "
        f"+{(profiler_overhead - 1) * 100:.1f}% over the null sink"
    )

    assert tracing_off_overhead < MAX_TRACING_OFF_OVERHEAD, (
        f"tracing-off instrumentation costs "
        f"{(tracing_off_overhead - 1) * 100:.2f}% on the scan path "
        f"(limit {(MAX_TRACING_OFF_OVERHEAD - 1) * 100:.0f}%)"
    )
