"""Figure 6 — pruning power: candidates, immediate hits and results per query.

The candidate/hit counters now come from the vectorized columnar scan; the
shape assertions below are the same ones the seed per-node loop satisfied,
so they double as a pruning-statistics regression check for the refactor.
"""

import pytest

from repro.evaluation import figure6_pruning_power

BENCH_DATASETS = ("web-stanford-cs", "epinions", "web-stanford", "web-google")
K_VALUES = (5, 10, 20, 50)
N_QUERIES = 15


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_fig6_pruning_power(benchmark, bench_graphs, bench_params, write_result_file, dataset):
    graph = bench_graphs[dataset]

    result = benchmark.pedantic(
        lambda: figure6_pruning_power(
            graph,
            k_values=K_VALUES,
            n_queries=N_QUERIES,
            params=bench_params,
            graph_name=dataset,
        ),
        rounds=1,
        iterations=1,
    )
    write_result_file(f"figure6_{dataset}", result.text)
    print("\n" + result.text)

    candidates = result.data["candidates"]
    hits = result.data["hits"]
    results = result.data["results"]
    n = graph.n_nodes
    for k, cand, hit, res in zip(result.data["k"], candidates, hits, results):
        # The paper's observation: candidates are in the order of k — far
        # below n as long as k << n (on these scaled-down graphs k=50 is a
        # sizeable fraction of the graph, so the bound is relative to k).
        assert cand <= max(12 * k, 0.9 * n)
        assert hit <= cand + 1e-9
        assert res >= hit - 1e-9
    # Candidate counts grow with k (more nodes can contain the query in their
    # larger top-k sets).  The comparison only makes sense while k << n; once
    # k approaches the graph size most nodes are decided by the exact
    # shortcut and the candidate count collapses, so restrict the check to
    # the k values small relative to the stand-in graphs.
    meaningful = [c for k, c in zip(result.data["k"], candidates) if k <= n / 5]
    if len(meaningful) >= 2:
        assert meaningful[-1] >= meaningful[0] - 1e-9
