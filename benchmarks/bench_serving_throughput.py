"""Serving-layer throughput benchmark: service vs. naive per-query loop.

A skewed (Zipf) workload of repeat-heavy requests is replayed twice against
the same engine over a 2,000-node copying-web graph:

* **naive** — the seed's serving story: one synchronous
  ``engine.query(q, k, update_index=False)`` call per request, no caching,
  no batching, no parallelism;
* **service** — the :class:`ReverseTopKService` pipeline: LRU result cache,
  in-flight dedup + same-k batching, and a thread pool fanning batches over
  the shared read-only engine.

The benchmark asserts the service answers are identical to the naive loop's
(request by request), that throughput improves by at least ``MIN_SPEEDUP``,
and records the raw numbers to ``benchmarks/results/serving_throughput.json``
so future scaling PRs have a trajectory to compare against.
"""

import json
from pathlib import Path

import numpy as np

from repro.core import IndexParams, ReverseTopKEngine, build_index
from repro.graph import copying_web_graph, transition_matrix
from repro.serving import ReverseTopKService, ServiceConfig
from repro.utils.timer import LatencyStats, Timer
from repro.workloads import replay, zipfian_query_workload

N_NODES = 2_000
K = 10
N_REQUESTS = 400
HOT_FRACTION = 0.02  # ~40 hot queries carry the whole stream
BURST_SIZE = 64  # several bursts, so cross-burst cache hits fire too
MIN_SPEEDUP = 3.0

CONFIG = ServiceConfig(
    cache_capacity=512,
    max_batch_size=64,
    n_workers=2,
    backend="thread",
)

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "serving_throughput.json"


def test_serving_throughput():
    graph = copying_web_graph(N_NODES, out_degree=5, seed=3)
    matrix = transition_matrix(graph)
    params = IndexParams(capacity=50, hub_budget=8)
    index = build_index(graph, params, transition=matrix)
    engine = ReverseTopKEngine(matrix, index)

    workload = zipfian_query_workload(
        graph, N_REQUESTS, k=K, hot_fraction=HOT_FRACTION, seed=11
    )
    requests = [(int(query), K) for query in workload.queries]
    n_unique = len({query for query, _ in requests})

    # --- naive per-query loop (the seed's only entry point) -------------- #
    naive_latency = LatencyStats()
    with Timer() as naive_timer:
        naive_results = []
        for query, k in requests:
            result = engine.query(query, k, update_index=False)
            naive_latency.record(result.statistics.seconds)
            naive_results.append(result)
    naive_qps = len(requests) / naive_timer.elapsed

    # --- the serving pipeline ------------------------------------------- #
    with ReverseTopKService(engine, CONFIG) as service:
        report = replay(service, workload, burst_size=BURST_SIZE)
        metrics = report.metrics

    # Identical answers, request by request.
    for naive, served in zip(naive_results, report.results):
        np.testing.assert_array_equal(served.nodes, naive.nodes)
        np.testing.assert_array_equal(
            served.proximities_to_query, naive.proximities_to_query
        )

    speedup = report.throughput_qps / naive_qps
    record = {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "k": K,
        "n_requests": len(requests),
        "n_unique_queries": n_unique,
        "workload": workload.description,
        "capacity": params.capacity,
        "hub_budget": params.hub_budget,
        "config": {
            "cache_capacity": CONFIG.cache_capacity,
            "max_batch_size": CONFIG.max_batch_size,
            "n_workers": CONFIG.n_workers,
            "backend": CONFIG.backend,
        },
        "naive_seconds": naive_timer.elapsed,
        "naive_qps": naive_qps,
        "naive_latency": naive_latency.as_dict(),
        "service_seconds": report.seconds,
        "service_qps": report.throughput_qps,
        "service_metrics": metrics.as_dict(),
        "speedup": speedup,
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nserving {len(requests)} skewed requests ({n_unique} unique) on "
        f"{graph.n_nodes}-node graph: naive {naive_qps:.0f} qps, "
        f"service {report.throughput_qps:.0f} qps -> {speedup:.1f}x "
        f"(cache hit rate {metrics.cache.hit_rate:.0%}, "
        f"dedup saved {metrics.n_deduplicated})"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"service only {speedup:.1f}x faster than the naive per-query loop "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )
