"""Table 2 — index construction time and space versus the hub budget B.

Regenerates, for each evaluation graph: the construction time, the index size
with and without rounding, the Theorem-1 predicted size, and the cost of the
brute-force alternative (computing the full proximity matrix).
"""

import pytest

from repro.core import build_index
from repro.core.hubs import select_hubs_by_degree
from repro.evaluation import table2_index_construction

BENCH_DATASETS = ("web-stanford-cs", "epinions", "web-stanford", "web-google")
HUB_BUDGETS = (5, 10, 20, 40)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_table2_index_construction(benchmark, bench_graphs, bench_transitions, bench_params, write_result_file, dataset):
    """Benchmark one index build per graph and emit the full Table 2 rows."""
    graph = bench_graphs[dataset]
    matrix = bench_transitions[dataset]
    hubs = select_hubs_by_degree(graph, bench_params.hub_budget)

    index = benchmark.pedantic(
        lambda: build_index(graph, bench_params, transition=matrix, hubs=hubs),
        rounds=1,
        iterations=1,
    )

    result = table2_index_construction(
        graph,
        hub_budgets=HUB_BUDGETS,
        params=bench_params,
        graph_name=dataset,
        include_brute_force=True,
    )
    write_result_file(f"table2_{dataset}", result.text)
    print("\n" + result.text)

    # Shape checks mirroring the paper's conclusions:
    # (1) the index is far smaller than the dense proximity matrix;
    # (2) construction is cheaper than computing the full matrix.
    full_matrix_bytes = graph.n_nodes * graph.n_nodes * 8
    assert index.total_bytes() < full_matrix_bytes
    brute = result.data["brute_force"]
    fastest_build = min(row["seconds"] for row in result.data["rows"])
    assert fastest_build < brute["seconds"] * 1.5
