"""Figure 7 — per-query cost over a query sequence: index update vs. no-update.

The workload runs through the engine's batched ``query_many`` path, which
shares the columnar index views and the cached CSR transpose across queries;
update-mode refinements flow back into the columns between queries.
"""

import numpy as np
import pytest

from repro.evaluation import figure7_refinement_effect

BENCH_DATASETS = ("web-stanford-cs", "web-stanford")
N_QUERIES = 40
K = 20


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_fig7_refinement_effect(benchmark, bench_graphs, bench_params, write_result_file, dataset):
    graph = bench_graphs[dataset]

    result = benchmark.pedantic(
        lambda: figure7_refinement_effect(
            graph, k=K, n_queries=N_QUERIES, params=bench_params, graph_name=dataset
        ),
        rounds=1,
        iterations=1,
    )
    write_result_file(f"figure7_{dataset}", result.text)
    print("\n" + result.text)

    update_refinements = result.data["update_refinements"]
    no_update_refinements = result.data["no_update_refinements"]
    # The paper's observation: as the workload progresses, the updated index
    # needs no more (and typically less) refinement than the static one...
    assert sum(update_refinements) <= sum(no_update_refinements) + 1e-9
    # ...and the benefit shows up in the later part of the sequence, where the
    # update policy does no more refinement work than the static index on the
    # very same queries (individual hub-node queries can still be heavy, so
    # the comparison is against no-update, not against the first half).
    half = len(update_refinements) // 2
    assert (
        np.sum(update_refinements[half:])
        <= np.sum(no_update_refinements[half:]) + 1e-9
    )
