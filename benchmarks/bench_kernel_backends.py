"""Propagation/scan backend benchmark: buffer reuse, numba, float32 screening.

Three A/B comparisons on one 2,000-node copying-web graph, all answering
bit-identically:

1. blocked vectorized build with the :class:`KernelWorkspace` plane pool and
   the fused in-place product, versus the seed path (``reuse_buffers=False``:
   fresh planes per run, an allocating ``transition @ shares`` per iteration).
   The contract is on the **propagation stage** (``StageTimer``'s ``bca``
   bucket) because that is the only code the workspace touches — the
   materialize stage (spills, dict conversion) is byte-for-byte shared and
   would only dilute the ratio with identical work;
2. the compiled numba inner iteration versus the NumPy blocked build
   (measured only when the optional ``fast`` extra is installed; the
   contract there is ``MIN_NUMBA_SPEEDUP``);
3. the float32-screened scan versus the float64 scan, with the plane bytes
   each query touches during prune + staircase screening.

All configurations are timed interleaved (round-robin, best of
``N_REPEATS``) so machine-speed drift between passes cancels out of the
ratios.  Raw numbers land in ``benchmarks/results/kernel_backends.json``.
"""

import json
from pathlib import Path
import time

import numpy as np
import scipy.sparse as sp

from repro.core import (
    IndexParams,
    PropagationKernel,
    ReverseTopKEngine,
    build_index,
    numba_available,
)
from repro.core.lbi import _compute_hub_matrix, default_hub_selection
from repro.graph import copying_web_graph, transition_matrix
from repro.utils.timer import StageTimer

N_NODES = 2_000
OUT_DEGREE = 5
GRAPH_SEED = 3
CAPACITY = 50
HUB_BUDGET = 8
K = 10
N_QUERIES = 60
N_REPEATS = 3
#: Floor for the pooled-plane + fused-product propagation stage versus the
#: seed's allocating path.  The fused product replaces the per-iteration
#: ``arrivals`` allocation and its extra accumulation pass — roughly two of
#: the ~ten full-plane passes each BCA step performs — so the steady-state
#: gain measures 1.20–1.25x on this config; the floor sits below that
#: envelope to absorb machine noise.
MIN_REUSE_SPEEDUP = 1.15
MIN_NUMBA_SPEEDUP = 3.0

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "kernel_backends.json"


def _interleaved_best(tasks: dict, repeats: int = N_REPEATS) -> dict:
    """Best wall-clock seconds per task over round-robin repeats."""
    for run in tasks.values():  # warmup
        run()
    best = {}
    for _ in range(repeats):
        for name, run in tasks.items():
            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
    return best


def _interleaved_best_stages(kernels: dict, sources, repeats: int = N_REPEATS) -> dict:
    """Best per-stage and total build seconds per kernel, round-robin."""
    for kernel in kernels.values():  # warmup
        kernel.run(sources)
    best = {}
    for _ in range(repeats):
        for name, kernel in kernels.items():
            stages = StageTimer()
            start = time.perf_counter()
            kernel.run(sources, stages=stages)
            elapsed = time.perf_counter() - start
            cur = best.get(name)
            if cur is None or stages.stages["bca"] < cur["bca_seconds"]:
                best[name] = {
                    "bca_seconds": stages.stages["bca"],
                    "materialize_seconds": stages.stages["materialize"],
                    "total_seconds": elapsed,
                }
    return best


def test_kernel_backends_and_scan_precision():
    graph = copying_web_graph(N_NODES, out_degree=OUT_DEGREE, seed=GRAPH_SEED)
    matrix = sp.csc_matrix(transition_matrix(graph))
    # Paper-default eta/delta: many short BCA iterations, the regime the
    # plane pool targets (per-iteration allocation is the overhead there).
    params = IndexParams(capacity=CAPACITY, hub_budget=HUB_BUDGET)
    hubs = default_hub_selection(graph, params)
    hub_matrix, _, _ = _compute_hub_matrix(matrix, hubs, params)
    hub_mask = hubs.mask(graph.n_nodes)
    sources = [node for node in range(graph.n_nodes) if not hub_mask[node]]

    kernels = {
        "vectorized_no_reuse": PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            reuse_buffers=False,
        ),
        "vectorized_reuse": PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
        ),
    }
    if numba_available():
        kernels["numba"] = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            backend="numba",
        )

    # Identical outputs across configurations before anything is timed.
    reference = kernels["vectorized_reuse"].run(sources)
    for name, kernel in kernels.items():
        states = kernel.run(sources)
        atol = 0.0 if name.startswith("vectorized") else 1e-12
        for state, ref in zip(states, reference):
            np.testing.assert_allclose(
                state.lower_bounds, ref.lower_bounds, rtol=0, atol=atol
            )

    build_best = _interleaved_best_stages(kernels, sources)
    # The workspace/fused-product contract is on the propagation stage; the
    # numba contract compares the compiled inner iteration against the same
    # stage of the NumPy build.
    reuse_speedup = (
        build_best["vectorized_no_reuse"]["bca_seconds"]
        / build_best["vectorized_reuse"]["bca_seconds"]
    )
    numba_speedup = (
        build_best["vectorized_reuse"]["bca_seconds"]
        / build_best["numba"]["bca_seconds"]
        if "numba" in build_best
        else None
    )

    # ------------------------------------------------------------------ #
    # scan: float64 versus float32-screened, same index
    # ------------------------------------------------------------------ #
    index = build_index(graph, params, transition=matrix, hubs=hubs)
    engines = {
        "scan_float64": ReverseTopKEngine(matrix, index),
        "scan_float32": ReverseTopKEngine(matrix, index, scan_precision="float32"),
    }
    queries = list(range(0, N_NODES, max(1, N_NODES // N_QUERIES)))[:N_QUERIES]
    f64_results = engines["scan_float64"].query_many_readonly(queries, K)
    f32_results = engines["scan_float32"].query_many_readonly(queries, K)
    for a, b in zip(f64_results, f32_results):
        np.testing.assert_array_equal(a.nodes, b.nodes)

    scan_best = _interleaved_best(
        {
            name: (lambda engine=engine: engine.query_many_readonly(queries, K))
            for name, engine in engines.items()
        }
    )

    # Plane bytes per query: the prune stage reads the k-th threshold row
    # (n entries), the staircase stage gathers k rows for each surviving
    # candidate; screened scans additionally re-read float64 entries for the
    # (counted) borderline candidates — at these scales that term is zero.
    mean_candidates = float(
        np.mean([r.statistics.n_candidates + r.statistics.n_hits for r in f64_results])
    )
    bytes_per_query = {
        "scan_float64": (N_NODES + K * mean_candidates) * 8,
        "scan_float32": (N_NODES + K * mean_candidates) * 4,
    }

    record = {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "capacity": CAPACITY,
        "hub_budget": HUB_BUDGET,
        "propagation_threshold": params.propagation_threshold,
        "residue_threshold": params.residue_threshold,
        "n_sources": len(sources),
        "k": K,
        "n_queries": len(queries),
        "numba_available": numba_available(),
        "build_stages": build_best,
        "workspace_reuse_speedup": reuse_speedup,
        "workspace_reuse_speedup_total": (
            build_best["vectorized_no_reuse"]["total_seconds"]
            / build_best["vectorized_reuse"]["total_seconds"]
        ),
        "numba_speedup": numba_speedup,
        "scan_seconds": scan_best,
        "scan_plane_bytes_per_query": bytes_per_query,
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    numba_note = (
        f", numba bca {build_best['numba']['bca_seconds']:.3f} s "
        f"({numba_speedup:.1f}x vs reuse)"
        if numba_speedup is not None
        else ", numba unavailable"
    )
    print(
        f"\nbuild on {graph.n_nodes}-node graph ({len(sources)} sources), "
        f"propagation stage: no-reuse "
        f"{build_best['vectorized_no_reuse']['bca_seconds']:.3f} s, "
        f"reuse {build_best['vectorized_reuse']['bca_seconds']:.3f} s "
        f"({reuse_speedup:.2f}x){numba_note}; "
        f"scan f64 {scan_best['scan_float64'] * 1e3:.1f} ms vs "
        f"f32 {scan_best['scan_float32'] * 1e3:.1f} ms per {len(queries)} queries"
    )

    assert reuse_speedup >= MIN_REUSE_SPEEDUP, (
        f"pooled planes + fused product are only worth {reuse_speedup:.2f}x "
        f"on the propagation stage (required: {MIN_REUSE_SPEEDUP:.2f}x)"
    )
    if numba_speedup is not None:
        assert numba_speedup >= MIN_NUMBA_SPEEDUP, (
            f"compiled inner iteration is only {numba_speedup:.2f}x faster than "
            f"the NumPy propagation stage (required: {MIN_NUMBA_SPEEDUP:.1f}x)"
        )
