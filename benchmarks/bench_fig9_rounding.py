"""Figure 9 — effect of the hub-rounding threshold omega on result quality."""


from repro.evaluation import figure9_rounding_effect

DATASET = "epinions"  # the denser stand-in, where hub vectors have long tails
K_VALUES = (5, 10, 20)
OMEGAS = (1e-3, 1e-5, 1e-6)
N_QUERIES = 10


def test_fig9_rounding_effect(benchmark, bench_graphs, bench_params, write_result_file):
    graph = bench_graphs[DATASET]

    result = benchmark.pedantic(
        lambda: figure9_rounding_effect(
            graph,
            k_values=K_VALUES,
            rounding_thresholds=OMEGAS,
            n_queries=N_QUERIES,
            params=bench_params,
            graph_name=DATASET,
        ),
        rounds=1,
        iterations=1,
    )
    write_result_file("figure9_rounding", result.text)
    print("\n" + result.text)

    similarity = result.data["similarity"]
    # Paper's conclusion: omega <= 1e-5 loses essentially nothing; even the
    # coarser thresholds stay close to perfect similarity.
    assert min(similarity[1e-6]) >= 0.99
    assert min(similarity[1e-5]) >= 0.98
    assert min(similarity[1e-3]) >= 0.80
    # Similarity is (weakly) monotone in the rounding threshold.
    for k_position in range(len(result.data["k"])):
        per_omega = [similarity[omega][k_position] for omega in OMEGAS]
        assert per_omega == sorted(per_omega) or max(per_omega) - min(per_omega) < 0.05
