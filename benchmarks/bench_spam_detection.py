"""Section 5.4 — spam detection: composition of reverse top-5 sets of labelled hosts."""


from repro.core import IndexParams
from repro.evaluation import spam_detection_stats
from repro.graph import datasets

K = 5
MAX_QUERIES_PER_CLASS = 40


def test_spam_detection_stats(benchmark, write_result_file):
    graph, labels = datasets.webspam(scale=0.15, seed=4)
    params = IndexParams(capacity=50, hub_budget=12)

    result = benchmark.pedantic(
        lambda: spam_detection_stats(
            graph,
            labels,
            k=K,
            max_queries_per_class=MAX_QUERIES_PER_CLASS,
            params=params,
            graph_name="webspam",
        ),
        rounds=1,
        iterations=1,
    )
    write_result_file("spam_detection", result.text)
    print("\n" + result.text)

    spam_ratio = result.data["mean_spam_ratio_for_spam"]
    normal_ratio = result.data["mean_spam_ratio_for_normal"]
    # The paper reports 96.1% spam in spam hosts' reverse top-5 sets and 97.4%
    # normal (i.e. 2.6% spam) for normal hosts.  On the synthetic stand-in the
    # separation must be large and in the same direction.
    assert spam_ratio > 0.5
    assert normal_ratio < 0.3
    assert spam_ratio - normal_ratio > 0.4
