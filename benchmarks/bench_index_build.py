"""Scalar-vs-vectorized index construction benchmark, recorded to JSON.

The propagation-kernel layer replaces the seed's per-neighbour Python loop
with a blocked multi-source engine (dense ``(n, B)`` state, one sparse-dense
product per iteration).  This benchmark builds the LBI index over a
2,000-node copying-web graph with both backends under a tight-index
configuration (denser graph, ``eta = 1e-5``, ``delta = 0.05`` — the regime
where offline construction cost actually bites), checks the two indexes
answer queries identically, asserts the vectorized build is at least 5x
faster, and writes the raw numbers (including the per-phase build reports
and a parallel snapshot build) to ``benchmarks/results/index_build.json``.
"""

import json
from pathlib import Path
import time

import numpy as np

from repro.core import IndexParams, ReverseTopKEngine, build_index, build_index_parallel
from repro.graph import copying_web_graph, transition_matrix

N_NODES = 2_000
OUT_DEGREE = 10
K = 10
N_QUERIES = 10
MIN_SPEEDUP = 5.0

PARAMS = IndexParams(
    capacity=50,
    hub_budget=8,
    propagation_threshold=1e-5,
    residue_threshold=0.05,
)

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "index_build.json"


def _timed_build(graph, matrix, backend):
    start = time.perf_counter()
    index = build_index(graph, PARAMS, transition=matrix, backend=backend)
    return index, time.perf_counter() - start


def test_vectorized_build_speedup(benchmark):
    graph = copying_web_graph(N_NODES, out_degree=OUT_DEGREE, seed=3)
    matrix = transition_matrix(graph)

    # Best-of-two for the vectorized side so one scheduler hiccup cannot
    # inflate the ratio's denominator; the scalar side is slow enough that a
    # single run is stable.
    vectorized_index, first = _timed_build(graph, matrix, "vectorized")
    _, second = _timed_build(graph, matrix, "vectorized")
    vectorized_seconds = min(first, second)
    scalar_index, scalar_seconds = _timed_build(graph, matrix, "scalar")

    # Equivalence: reconstructed vectors within 1e-12 on a sample, and
    # identical answers on a query spread.
    for node in range(0, N_NODES, N_NODES // 20):
        np.testing.assert_allclose(
            vectorized_index.approximate_vector(node),
            scalar_index.approximate_vector(node),
            rtol=0,
            atol=1e-12,
        )
    vec_engine = ReverseTopKEngine(matrix, vectorized_index)
    sca_engine = ReverseTopKEngine(matrix, scalar_index)
    for query in range(0, N_NODES, N_NODES // N_QUERIES):
        a = vec_engine.query(query, K, update_index=False)
        b = sca_engine.query(query, K, update_index=False)
        np.testing.assert_array_equal(a.nodes, b.nodes)

    # A parallel sharded build for the trajectory record (its win shows on
    # the scalar backend / larger graphs; at this scale shipping the matrices
    # to workers dominates).
    start = time.perf_counter()
    build_index_parallel(graph, PARAMS, transition=matrix, n_workers=2)
    parallel_seconds = time.perf_counter() - start

    # pytest-benchmark trajectory on a small representative build.
    small = copying_web_graph(400, out_degree=OUT_DEGREE, seed=3)
    small_matrix = transition_matrix(small)
    benchmark(lambda: build_index(small, PARAMS, transition=small_matrix))

    speedup = scalar_seconds / vectorized_seconds
    record = {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "out_degree": OUT_DEGREE,
        "capacity": PARAMS.capacity,
        "hub_budget": PARAMS.hub_budget,
        "propagation_threshold": PARAMS.propagation_threshold,
        "residue_threshold": PARAMS.residue_threshold,
        "block_size": PARAMS.block_size,
        "scalar_build_seconds": scalar_seconds,
        "vectorized_build_seconds": vectorized_seconds,
        "parallel2_build_seconds": parallel_seconds,
        "speedup": speedup,
        "scalar_report": scalar_index.build_report.as_dict(),
        "vectorized_report": vectorized_index.build_report.as_dict(),
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nindex build on {graph.n_nodes}-node copying-web graph "
        f"({graph.n_edges} edges): scalar {scalar_seconds:.2f} s, "
        f"vectorized {vectorized_seconds:.2f} s -> {speedup:.1f}x "
        f"(parallel x2: {parallel_seconds:.2f} s)"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized build only {speedup:.1f}x faster than the scalar backend "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )
