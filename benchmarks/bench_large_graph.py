"""Large-graph trajectory: streamed ingest -> sharded build -> serve -> churn.

The paper's biggest evaluation graph (Web-google) has 875k nodes; this
benchmark exercises the same end-to-end pipeline at a configurable fraction
of a default 500k-node synthetic web crawl, with every stage built for
bounded memory:

1. **ingest** — a deterministic power-law edge list is generated on disk
   (or a cached real SNAP dataset is used) and streamed into CSR in chunks,
   never materialising per-edge Python objects.
2. **build** — a parallel sharded index build writes residual/retained/hub
   state straight into columnar arrays (zero per-node ``NodeState``
   materialisations, asserted) and spills each shard to a memmap layout.
3. **query** — the sharded engine serves a random reverse nearest-neighbor
   workload (``k=1``) through the float32-screened memmap scan.  At this
   index strength (coarse ``eta``/``delta``, no hubs — chosen so the build
   itself stays tractable at 500k nodes on one core) ``k=1`` is the depth
   the screen decides almost entirely on its own; deeper ``k`` would push
   hundreds of candidates per query into exact refinement, which costs a
   full power-method run each at this scale.  Growing ``k`` at bounded RSS
   by tightening ``eta`` is the documented next step of the trajectory.
4. **churn** — a batch of edge insertions flows through the dynamic
   maintainer's targeted (array-native) invalidation path.

Each phase records wall-clock seconds and the process peak RSS (``VmHWM``
from ``/proc/self/status``); results land in
``benchmarks/results/large_graph.json``.

Run directly (CI's ``scale-smoke`` lane uses a reduced ``--scale``)::

    PYTHONPATH=src python benchmarks/bench_large_graph.py --scale 0.1
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
import resource
import sys
import tempfile
import time

import numpy as np
import scipy.sparse as sp

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import IndexParams  # noqa: E402
from repro.core.sharding import (  # noqa: E402
    ShardedReverseTopKEngine,
    build_sharded_index,
)
from repro.core.statestore import (  # noqa: E402
    materialization_count,
    reset_materialization_count,
)
from repro.dynamic.maintainer import IndexMaintainer  # noqa: E402
from repro.graph import DiGraph, transition_matrix  # noqa: E402
from repro.graph.datasets import write_synthetic_edge_list  # noqa: E402
from repro.graph.download import REMOTE_DATASETS, dataset_cached, fetch_dataset  # noqa: E402
from repro.graph.io import stream_edge_list  # noqa: E402

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "large_graph.json"

#: Coarse, hub-free parameters: at web scale the bench exercises the *system*
#: (streaming, columnar state, memmap shards, maintainer), not rank quality.
CAPACITY = 16
HUB_BUDGET = 0
ETA = 5e-3  # propagation threshold
DELTA = 0.3  # residue threshold


def peak_rss_mb() -> float:
    """Process peak RSS in MiB (``VmHWM``; ``ru_maxrss`` fallback)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmHWM"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) / 1024.0


def _phase(record: dict, name: str, seconds: float, **extra) -> None:
    entry = {"seconds": round(seconds, 3), "peak_rss_mb": round(peak_rss_mb(), 1)}
    entry.update(extra)
    record["phases"][name] = entry
    detail = ", ".join(f"{key}={value}" for key, value in entry.items())
    print(f"[bench_large_graph] {name}: {detail}", flush=True)


def _ingest(args, workdir: Path, record: dict) -> DiGraph:
    started = time.perf_counter()
    if args.dataset:
        path = fetch_dataset(args.dataset)
        spec = REMOTE_DATASETS[args.dataset.strip().lower()]
        graph = stream_edge_list(path, weighted=spec.weighted)
        source = f"real:{args.dataset}"
    else:
        n_nodes = max(1_000, int(args.nodes * args.scale))
        path = workdir / f"synthetic-{n_nodes}.txt"
        write_synthetic_edge_list(
            path, n_nodes=n_nodes, avg_out_degree=args.avg_degree, seed=args.seed
        )
        graph = stream_edge_list(path, n_nodes=n_nodes)
        source = "synthetic"
    _phase(
        record,
        "ingest",
        time.perf_counter() - started,
        source=source,
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        file_mb=round(path.stat().st_size / 2**20, 1),
    )
    return graph


def _build(args, graph: DiGraph, matrix, workdir: Path, record: dict):
    params = IndexParams(
        capacity=CAPACITY,
        hub_budget=HUB_BUDGET,
        propagation_threshold=ETA,
        residue_threshold=DELTA,
        backend="sparse",
    ).for_graph(graph.n_nodes)
    reset_materialization_count()
    started = time.perf_counter()
    index = build_sharded_index(
        graph,
        params,
        transition=matrix,
        n_shards=args.shards,
        directory=workdir / "shards",
        memory_budget=0,  # stream every shard out to its memmap layout
        n_workers=args.workers if args.workers > 1 else None,
    )
    seconds = time.perf_counter() - started
    materialized = materialization_count()
    if materialized != 0:
        raise AssertionError(
            f"columnar build materialised {materialized} NodeState objects; "
            "the hot path must stay array-native"
        )
    _phase(
        record,
        "build",
        seconds,
        n_shards=index.n_shards,
        n_workers=args.workers,
        backend=params.backend,
        index_mb=round(index.total_bytes() / 2**20, 1),
        resident_mb=round(index.resident_bytes() / 2**20, 1),
        nodestate_materializations=materialized,
    )
    return index


def _query(args, engine, n_nodes: int, record: dict) -> None:
    rng = np.random.default_rng(args.seed + 1)
    queries = [int(q) for q in rng.integers(0, n_nodes, size=args.queries)]
    engine.query_many_readonly(queries[: min(8, len(queries))], args.k)  # warmup
    started = time.perf_counter()
    results = engine.query_many_readonly(queries, args.k)
    seconds = time.perf_counter() - started
    _phase(
        record,
        "query",
        seconds,
        n_queries=len(queries),
        k=args.k,
        qps=round(len(queries) / seconds, 1),
        mean_answer_size=round(
            float(np.mean([len(result.nodes) for result in results])), 2
        ),
    )


def _churn(args, graph: DiGraph, engine, record: dict) -> None:
    rng = np.random.default_rng(args.seed + 2)
    n = graph.n_nodes
    sources = rng.integers(0, n, size=args.churn_edges, dtype=np.int64)
    targets = rng.integers(0, n, size=args.churn_edges, dtype=np.int64)
    keep = sources != targets
    sources, targets = sources[keep], targets[keep]
    delta = sp.csr_matrix(
        (np.ones(sources.size), (sources, targets)), shape=(n, n)
    )
    # Fresh edges only (weight 1 where absent); existing weights unchanged.
    mutated = graph.adjacency.maximum(delta)
    new_graph = DiGraph(mutated)
    maintainer = IndexMaintainer(engine, rebuild_ratio=1.0)
    started = time.perf_counter()
    report = maintainer.apply(new_graph, sources.tolist())
    seconds = time.perf_counter() - started
    _phase(
        record,
        "churn",
        seconds,
        edges_added=int(sources.size),
        n_changed_columns=report.n_changed_columns,
        n_invalidated=report.n_invalidated,
        n_rematerialized=report.n_rematerialized,
        full_rebuild=report.full_rebuild,
    )


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=500_000,
                        help="synthetic graph size at --scale 1.0")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="fraction of --nodes to actually run")
    parser.add_argument("--avg-degree", type=float, default=6.0)
    parser.add_argument("--dataset", type=str, default=None,
                        help="use a real cached/downloadable dataset "
                             f"({', '.join(sorted(REMOTE_DATASETS))}) instead "
                             "of the synthetic edge list")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--workers", type=int,
                        default=max(1, min(4, os.cpu_count() or 1)))
    parser.add_argument("--queries", type=int, default=24)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--churn-edges", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default=str(RESULTS_JSON))
    args = parser.parse_args(argv)

    record: dict = {
        "config": {
            "nodes": args.nodes,
            "scale": args.scale,
            "avg_degree": args.avg_degree,
            "dataset": args.dataset,
            "capacity": CAPACITY,
            "hub_budget": HUB_BUDGET,
            "propagation_threshold": ETA,
            "residue_threshold": DELTA,
            "backend": "sparse",
            "n_shards": args.shards,
            "n_workers": args.workers,
            "memory_budget": 0,
            "seed": args.seed,
        },
        "phases": {},
    }
    with tempfile.TemporaryDirectory(prefix="bench-large-graph-") as tmp:
        workdir = Path(tmp)
        graph = _ingest(args, workdir, record)
        matrix = transition_matrix(graph)
        index = _build(args, graph, matrix, workdir, record)
        engine = ShardedReverseTopKEngine(matrix, index, scan_precision="float32")
        _query(args, engine, graph.n_nodes, record)
        _churn(args, graph, engine, record)
    record["peak_rss_mb"] = round(peak_rss_mb(), 1)

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"[bench_large_graph] wrote {output}", flush=True)
    return record


if __name__ == "__main__":
    main()
