"""Sharded-vs-monolithic serving: throughput and peak RSS.

The acceptance contract of the partitioned index layer: memmap-backed
sharded serving must answer **bit-identically** to the monolithic engine,
stay within ``MAX_SLOWDOWN`` of its throughput, and hold **measurably less
resident memory** — the whole point of the layout is that the ``(K, n)``
columnar state and the per-node BCA dicts no longer have to live in the
serving process.

Peak RSS is a high-water mark, so the two scenarios cannot share a process:
the benchmark builds both archives once (parent), then runs each scenario in
a **fresh subprocess** that only *loads* its archive, serves the identical
query workload through its engine, and reports throughput plus
``ru_maxrss``.  Results land in ``benchmarks/results/sharded_query.json``.
"""

import json
import os
from pathlib import Path
import subprocess
import sys

from repro.core import IndexParams
from repro.graph import copying_web_graph, transition_matrix
from repro.serving import SnapshotManager

N_NODES = 2_000
OUT_DEGREE = 5
GRAPH_SEED = 3
CAPACITY = 200
HUB_BUDGET = 8
ETA = 1e-5  # propagation threshold
DELTA = 0.005  # low residue threshold -> dense, realistic per-node states
K = 10
N_QUERIES = 120
N_SHARDS = 8
MAX_SLOWDOWN = 2.0
#: With the float32 ``.lower32.npy`` screening plane the scan touches half
#: the bytes, so memmap-backed serving must land much closer to monolithic.
MAX_SLOWDOWN_F32 = 1.15

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "sharded_query.json"
SRC = str(Path(__file__).resolve().parent.parent / "src")

_RSS_CHILD_TEMPLATE = """
import json, resource, sys
import numpy as np
from repro.core import IndexParams, ReverseTopKEngine, ReverseTopKIndex
from repro.core import ShardedReverseTopKEngine, ShardedReverseTopKIndex
from repro.graph import copying_web_graph, transition_matrix

mode = {mode!r}
graph = copying_web_graph({n_nodes}, out_degree={out_degree}, seed={graph_seed})
matrix = transition_matrix(graph)
if mode == "monolithic":
    index = ReverseTopKIndex.load({archive!r})
    engine = ReverseTopKEngine(matrix, index)
else:
    precision = "float32" if mode == "sharded_f32" else "float64"
    index = ShardedReverseTopKIndex.load({archive!r}, memory_budget=0)
    engine = ShardedReverseTopKEngine(matrix, index, scan_precision=precision)

queries = list(np.random.default_rng(11).integers(0, {n_nodes}, size={n_queries}))
results = engine.query_many_readonly(queries, {k})

def peak_rss_kb():
    # ru_maxrss survives execve, so a child forked from a fat parent would
    # report the parent's fork-time high-water mark; /proc VmHWM tracks the
    # post-exec address space and is the honest per-process peak on Linux.
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM"):
                    return float(line.split()[1])
    except OSError:
        pass
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

peak_kb = peak_rss_kb()
answers = {{str(int(q)): [int(n) for n in r.nodes] for q, r in zip(queries, results)}}
print("REPORT:" + json.dumps({{
    "mode": mode,
    "peak_rss_mb": peak_kb / 1024.0,
    "answers": answers,
}}))
"""

# Throughput is a *relative* contract (sharded vs monolithic), and the box
# running the benchmark may drift in speed between processes — so all the
# engines are timed in ONE child, interleaved round-robin, and each takes its
# best pass.  Peak RSS, in contrast, is a per-process high-water mark and
# keeps the isolated one-engine children above.
_THROUGHPUT_CHILD_TEMPLATE = """
import json, sys
import numpy as np
from repro.core import IndexParams, ReverseTopKEngine, ReverseTopKIndex
from repro.core import ShardedReverseTopKEngine, ShardedReverseTopKIndex
from repro.graph import copying_web_graph, transition_matrix
from repro.utils.timer import Timer

graph = copying_web_graph({n_nodes}, out_degree={out_degree}, seed={graph_seed})
matrix = transition_matrix(graph)
mono_index = ReverseTopKIndex.load({mono_archive!r})
shard_index = ShardedReverseTopKIndex.load({shard_archive!r}, memory_budget=0)
engines = {{
    "monolithic": ReverseTopKEngine(matrix, mono_index),
    "sharded": ShardedReverseTopKEngine(matrix, shard_index),
    "sharded_f32": ShardedReverseTopKEngine(
        matrix, shard_index, scan_precision="float32"
    ),
}}
queries = list(np.random.default_rng(11).integers(0, {n_nodes}, size={n_queries}))
for engine in engines.values():  # warmup: fault pages in, warm the allocator
    engine.query_many_readonly(queries, {k})
# Machine speed drifts on a seconds scale, so per-mode best-of-N can pair a
# fast monolithic round with a slow sharded one.  Each round times all the
# modes back-to-back (~sub-second apart); the parent compares modes *within*
# a round and keeps the round whose ratios are least drift-inflated.
rounds = []
for _ in range({n_repeats}):
    seconds = {{}}
    for mode, engine in engines.items():
        with Timer() as timer:
            engine.query_many_readonly(queries, {k})
        seconds[mode] = timer.elapsed
    rounds.append(seconds)
print("REPORT:" + json.dumps({{"rounds": rounds, "n_queries": len(queries)}}))
"""

N_REPEATS = 7


def _spawn(script: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, env=env
    )
    assert proc.returncode == 0, proc.stderr
    line = [l for l in proc.stdout.splitlines() if l.startswith("REPORT:")][0]
    return json.loads(line[len("REPORT:"):])


def _run_rss_child(mode: str, archive: str) -> dict:
    return _spawn(
        _RSS_CHILD_TEMPLATE.format(
            mode=mode,
            archive=archive,
            n_nodes=N_NODES,
            out_degree=OUT_DEGREE,
            graph_seed=GRAPH_SEED,
            n_queries=N_QUERIES,
            k=K,
        )
    )


def _run_throughput_child(mono_archive: str, shard_archive: str) -> dict:
    return _spawn(
        _THROUGHPUT_CHILD_TEMPLATE.format(
            mono_archive=mono_archive,
            shard_archive=shard_archive,
            n_nodes=N_NODES,
            out_degree=OUT_DEGREE,
            graph_seed=GRAPH_SEED,
            n_queries=N_QUERIES,
            k=K,
            n_repeats=N_REPEATS,
        )
    )


def test_sharded_query_throughput_and_rss(tmp_path):
    graph = copying_web_graph(N_NODES, out_degree=OUT_DEGREE, seed=GRAPH_SEED)
    matrix = transition_matrix(graph)
    params = IndexParams(
        capacity=CAPACITY,
        hub_budget=HUB_BUDGET,
        propagation_threshold=ETA,
        residue_threshold=DELTA,
    )
    manager = SnapshotManager(tmp_path)

    # Build both archives once in the parent; children only load.
    index, _ = manager.build_or_load(graph, params, transition=matrix)
    mono_archive = str(manager.path_for(graph, index.params, matrix))
    sharded, _ = manager.build_or_load_sharded(
        graph, params, transition=matrix, n_shards=N_SHARDS, memory_budget=0
    )
    layout = str(sharded.directory)

    mono = _run_rss_child("monolithic", mono_archive)
    shard = _run_rss_child("sharded", layout)
    shard_f32 = _run_rss_child("sharded_f32", layout)
    report = _run_throughput_child(mono_archive, layout)

    # Bit-identical answers, query by query — including the screened scan.
    assert mono["answers"] == shard["answers"]
    assert mono["answers"] == shard_f32["answers"]

    # Slowdowns are within-round ratios; keep the round least inflated by
    # machine-speed drift (the modes inside one round run back-to-back).
    def round_slowdowns(seconds):
        return (
            seconds["sharded"] / seconds["monolithic"],
            seconds["sharded_f32"] / seconds["monolithic"],
        )

    best_round = min(report["rounds"], key=lambda s: sum(round_slowdowns(s)))
    slowdown, slowdown_f32 = round_slowdowns(best_round)
    timings = {
        mode: {"seconds": seconds, "qps": report["n_queries"] / seconds}
        for mode, seconds in best_round.items()
    }
    rss_saved_mb = mono["peak_rss_mb"] - shard["peak_rss_mb"]
    record = {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "capacity": CAPACITY,
        "hub_budget": HUB_BUDGET,
        "propagation_threshold": ETA,
        "residue_threshold": DELTA,
        "k": K,
        "n_queries": N_QUERIES,
        "n_shards": N_SHARDS,
        "index_total_mb": sharded.total_bytes() / 2**20,
        "monolithic": dict(
            timings["monolithic"], peak_rss_mb=mono["peak_rss_mb"]
        ),
        "sharded_memmap": dict(
            timings["sharded"], peak_rss_mb=shard["peak_rss_mb"]
        ),
        "sharded_memmap_float32": dict(
            timings["sharded_f32"], peak_rss_mb=shard_f32["peak_rss_mb"]
        ),
        "slowdown": slowdown,
        "slowdown_float32": slowdown_f32,
        "rss_saved_mb": rss_saved_mb,
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nsharded ({N_SHARDS} shards, memmap) vs monolithic on "
        f"{graph.n_nodes}-node graph: {timings['sharded']['qps']:.0f} vs "
        f"{timings['monolithic']['qps']:.0f} qps ({slowdown:.2f}x slowdown), "
        f"peak RSS {shard['peak_rss_mb']:.1f} vs {mono['peak_rss_mb']:.1f} MB "
        f"({rss_saved_mb:.1f} MB saved); float32 layout "
        f"{timings['sharded_f32']['qps']:.0f} qps ({slowdown_f32:.2f}x)"
    )

    assert slowdown <= MAX_SLOWDOWN, (
        f"memmap-backed sharded serving is {slowdown:.2f}x slower than the "
        f"monolithic engine (allowed: {MAX_SLOWDOWN:.1f}x)"
    )
    assert slowdown_f32 <= MAX_SLOWDOWN_F32, (
        f"float32-screened memmap serving is {slowdown_f32:.2f}x slower than "
        f"the monolithic engine (allowed: {MAX_SLOWDOWN_F32:.2f}x)"
    )
    assert rss_saved_mb > 0, (
        f"sharded serving must hold measurably less memory; saved "
        f"{rss_saved_mb:.2f} MB"
    )
