"""Table 3 — author popularity by reverse top-5 list size in a co-authorship graph."""

import numpy as np

from repro.core import IndexParams
from repro.evaluation import table3_author_popularity
from repro.graph import datasets

K = 5
TOP = 10


def test_table3_author_popularity(benchmark, write_result_file):
    graph, paper_counts = datasets.dblp(scale=0.15, seed=5)
    params = IndexParams(capacity=50, hub_budget=10)

    result = benchmark.pedantic(
        lambda: table3_author_popularity(graph, k=K, top=TOP, params=params, graph_name="dblp"),
        rounds=1,
        iterations=1,
    )
    write_result_file("table3_author_popularity", result.text)
    print("\n" + result.text)

    rows = result.data["rows"]
    assert len(rows) == TOP
    sizes = [row["reverse_top_k_size"] for row in rows]
    assert sizes == sorted(sizes, reverse=True)

    # The Table 3 narrative: popular authors' reverse top-k lists reach beyond
    # their direct co-author lists.  On the full DBLP graph the gap is an
    # order of magnitude; on the scaled-down stand-in we require that the
    # majority of the ranked authors are in more top-5 lists than they have
    # co-authors, and that the paper's "prolific" authors appear in the table.
    beyond_coauthors = sum(
        1 for row in rows if row["reverse_top_k_size"] > row["n_coauthors"]
    )
    assert beyond_coauthors >= len(rows) // 2
    prolific = set(np.argsort(-paper_counts)[:3].tolist())
    assert prolific & {row["author"] for row in rows}
