"""Ablation — degree-based hub selection (§4.1.1) vs. Berkhin's greedy scheme.

The paper replaces the expensive greedy hub discovery with a degree heuristic
and claims the loss is negligible.  This ablation measures (a) hub selection
time, (b) index size, and (c) the average query cost with each hub set.
"""

import copy


from repro.core import ReverseTopKEngine, build_index
from repro.core.hubs import select_hubs_by_degree, select_hubs_greedy
from repro.evaluation.tables import format_table
from repro.utils.timer import Timer
from repro.workloads import uniform_query_workload

DATASET = "epinions"
N_HUBS = 10
N_QUERIES = 15
K = 10


def test_ablation_hub_selection(benchmark, bench_graphs, bench_transitions, bench_params,
                                write_result_file):
    graph = bench_graphs[DATASET]
    matrix = bench_transitions[DATASET]

    with Timer() as degree_timer:
        degree_hubs = select_hubs_by_degree(graph, N_HUBS // 2)
    with Timer() as greedy_timer:
        greedy_hubs = select_hubs_greedy(graph, matrix, len(degree_hubs), seed=0)

    benchmark.pedantic(
        lambda: select_hubs_by_degree(graph, N_HUBS // 2), rounds=3, iterations=1
    )

    workload = uniform_query_workload(graph, N_QUERIES, seed=3)
    rows = []
    query_costs = {}
    for name, hubs in (("degree", degree_hubs), ("greedy", greedy_hubs)):
        index = build_index(graph, bench_params, transition=matrix, hubs=hubs)
        engine = ReverseTopKEngine(matrix, copy.deepcopy(index))
        seconds = [engine.query(q, K).statistics.seconds for q in workload]
        mean_query = sum(seconds) / len(seconds)
        query_costs[name] = mean_query
        rows.append(
            [
                name,
                len(hubs),
                degree_timer.elapsed if name == "degree" else greedy_timer.elapsed,
                index.total_bytes() / 1024.0,
                mean_query,
            ]
        )
    text = format_table(
        ["strategy", "|H|", "selection (s)", "index (KB)", "mean query (s)"],
        rows,
        title=f"Ablation — hub selection strategy, {DATASET}",
    )
    write_result_file("ablation_hub_selection", text)
    print("\n" + text)

    # Degree selection must be far cheaper to compute...
    assert degree_timer.elapsed < greedy_timer.elapsed
    # ...while query performance stays in the same ballpark (within 5x).
    assert query_costs["degree"] < 5 * query_costs["greedy"] + 0.05
