"""Figure 8 — cumulative workload cost: our method vs. IBF vs. FBF."""


from repro.evaluation import figure8_cumulative_cost
from repro.workloads import uniform_query_workload

DATASET = "web-stanford-cs"
K = 10
N_QUERIES = 50


def test_fig8_cumulative_cost(benchmark, bench_graphs, bench_params, write_result_file):
    graph = bench_graphs[DATASET]
    workload = uniform_query_workload(graph, N_QUERIES, k=K, seed=7)

    result = benchmark.pedantic(
        lambda: figure8_cumulative_cost(
            graph, k=K, params=bench_params, workload=workload, graph_name=DATASET
        ),
        rounds=1,
        iterations=1,
    )
    write_result_file("figure8_cumulative", result.text)
    print("\n" + result.text)

    ours = result.data["ours"]
    ibf = result.data["ibf"]
    fbf = result.data["fbf"]
    offline = result.data["offline"]

    # Shape checks from the paper: our offline phase is much cheaper than
    # either brute-force variant, and early in the workload our cumulative
    # total is below IBF's (whose full-matrix precomputation dominates) —
    # the crossover story of Figure 8.  At this laptop scale (a few hundred
    # nodes) Python constant factors blur the late-workload ordering, so the
    # final totals are only required to stay within a small factor of the
    # brute-force curves; EXPERIMENTS.md discusses the scale effect.
    assert offline["ours"] < offline["ibf"]
    assert offline["ours"] < offline["fbf"]
    early = max(1, N_QUERIES // 10) - 1
    assert ours[early] < ibf[early]
    assert ours[early] < fbf[early]
    assert ours[-1] < 5 * (fbf[-1] + 1e-3)
