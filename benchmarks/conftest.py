"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper on the
scaled-down dataset stand-ins (see DESIGN.md).  The measured numbers are
written both to the pytest-benchmark report and to ``benchmarks/results/``,
so EXPERIMENTS.md can quote them.

Scale notes: the paper's graphs range from 10k to 875k nodes and its queries
run in 0.1-150 s on a 2014-era core.  The stand-ins here default to a few
hundred nodes so that the whole harness finishes in minutes; the *relative*
shapes (index ≪ full P, pruning ~O(k) candidates, update < no-update, ...)
are what the assertions check.
"""

from __future__ import annotations

from pathlib import Path
import sys

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import IndexParams  # noqa: E402
from repro.graph import datasets, transition_matrix  # noqa: E402

#: Where the formatted paper-style tables are written.
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Graph scale used across the harness (fraction of the stand-in default size).
BENCH_SCALE = 0.06

#: Index parameters shared by the benchmarks (capacity covers k up to 50,
#: scaled-down analogue of the paper's K = 200).
BENCH_PARAMS = IndexParams(capacity=50, hub_budget=8)

#: The four unlabeled evaluation graphs of Table 2 / Figures 5-8.
BENCH_DATASETS = ("web-stanford-cs", "epinions", "web-stanford", "web-google")


def write_result(name: str, text: str) -> Path:
    """Persist a formatted experiment table under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def write_result_file():
    """Fixture handle to :func:`write_result` for benchmark modules."""
    return write_result


@pytest.fixture(scope="session")
def bench_graphs():
    """The four unlabeled benchmark graphs, scaled down, keyed by dataset name."""
    return {
        name: datasets.load_dataset(name, scale=BENCH_SCALE) for name in BENCH_DATASETS
    }


@pytest.fixture(scope="session")
def bench_transitions(bench_graphs):
    """Transition matrices for the benchmark graphs."""
    return {name: transition_matrix(graph) for name, graph in bench_graphs.items()}


@pytest.fixture(scope="session")
def primary_graph(bench_graphs):
    """The graph used by single-graph benchmarks (web-stanford-cs stand-in)."""
    return bench_graphs["web-stanford-cs"]


@pytest.fixture(scope="session")
def primary_transition(bench_transitions):
    """Transition matrix of the primary benchmark graph."""
    return bench_transitions["web-stanford-cs"]


@pytest.fixture(scope="session")
def bench_params():
    """Index parameters shared by all benchmarks."""
    return BENCH_PARAMS
