"""Dynamic-update benchmark: delta maintenance vs. rebuild-per-batch.

An interleaved query/update churn stream runs twice against a 2,000-node
copying-web graph:

* **rebuild-per-batch** — the static system's only correct option: every
  update batch throws the index away and rebuilds it from scratch; queries
  run as naive direct engine calls against the latest rebuild;
* **maintained** — the dynamic subsystem: the
  :class:`DynamicReverseTopKService` applies each batch through the
  :class:`IndexMaintainer` (column splice + conservative invalidation +
  hub re-expansion, full rebuild only past the staleness ratio), while
  queries ride the serving pipeline whose version-keyed cache survives
  no-op batches and is retired exactly once per effective batch.

Both sides run the same pinned hub configuration — selected once on the
initial graph — so delta maintenance is the *only* difference between them
and bit-identity holds down to floating-point knife-edge ties.

The benchmark asserts every query answer (nodes *and* proximity vectors)
is bit-identical between the two sides — the maintained index plus the
serving cache path must be indistinguishable from a from-scratch engine on
the current graph — and that the maintained side is at least
``MIN_SPEEDUP`` faster end-to-end.  Raw numbers go to
``benchmarks/results/dynamic_updates.json`` for the perf trajectory.
"""

import json
from pathlib import Path

import numpy as np

from repro.core import IndexParams, ReverseTopKEngine, build_index
from repro.dynamic import DynamicGraph, DynamicReverseTopKService, IndexMaintainer
from repro.graph import copying_web_graph, transition_matrix
from repro.serving import ServiceConfig
from repro.utils.timer import Timer
from repro.workloads import QueryEvent, churn_workload

N_NODES = 2_000
K = 10
N_QUERIES = 240
N_UPDATE_BATCHES = 8
BATCH_SIZE = 4
HOT_FRACTION = 0.02
MIN_SPEEDUP = 3.0

PARAMS = IndexParams(capacity=50, hub_budget=8)
CONFIG = ServiceConfig(cache_capacity=512, max_batch_size=64, n_workers=0)

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "dynamic_updates.json"


def test_dynamic_update_speedup():
    graph = copying_web_graph(N_NODES, out_degree=5, seed=3)
    workload = churn_workload(
        graph,
        N_QUERIES,
        N_UPDATE_BATCHES,
        k=K,
        batch_size=BATCH_SIZE,
        hot_fraction=HOT_FRACTION,
        seed=11,
    )

    # The hub configuration both sides run: selected once, on day zero.
    hubs = ReverseTopKEngine.build(graph, PARAMS).index.hubs

    # --- rebuild-per-batch baseline ------------------------------------- #
    baseline_results = []
    rebuild_seconds = []
    with Timer() as baseline_timer:
        shadow = DynamicGraph(graph)
        engine = ReverseTopKEngine.build(graph, PARAMS, hubs=hubs)
        for event in workload:
            if isinstance(event, QueryEvent):
                baseline_results.append(
                    engine.query(event.query, event.k, update_index=False)
                )
            else:
                shadow.apply_updates(event.updates)
                current, _ = shadow.drain()
                with Timer() as rebuild_timer:
                    engine = ReverseTopKEngine.build(current, PARAMS, hubs=hubs)
                rebuild_seconds.append(rebuild_timer.elapsed)

    # --- the maintained dynamic service --------------------------------- #
    matrix = transition_matrix(graph)
    index = build_index(
        graph, PARAMS.for_graph(N_NODES), transition=matrix, hubs=hubs
    )
    maintained_engine = ReverseTopKEngine(matrix, index)
    # Measured on this graph, incremental cost stays below a full rebuild
    # well past the conservative default staleness ratio; 0.5 keeps heavy
    # batches on the incremental path.
    maintainer = IndexMaintainer(
        maintained_engine, hub_policy="pinned", rebuild_ratio=0.5
    )
    maintained_results = []
    reports = []
    with DynamicReverseTopKService(
        maintained_engine, CONFIG, graph=graph, maintainer=maintainer
    ) as service:
        with Timer() as maintained_timer:
            for event in workload:
                if isinstance(event, QueryEvent):
                    maintained_results.append(service.query(event.query, event.k))
                else:
                    reports.append(service.apply_updates(event.updates))
        metrics = service.metrics()
        update_metrics = service.update_metrics()

    # Bit-identical answers, query by query, across every update boundary.
    assert len(baseline_results) == len(maintained_results) == workload.n_queries
    for direct, served in zip(baseline_results, maintained_results):
        np.testing.assert_array_equal(served.nodes, direct.nodes)
        np.testing.assert_array_equal(
            served.proximities_to_query, direct.proximities_to_query
        )

    speedup = baseline_timer.elapsed / maintained_timer.elapsed
    record = {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "k": K,
        "workload": workload.description,
        "n_queries": workload.n_queries,
        "n_update_batches": workload.n_update_batches,
        "n_updates": workload.n_updates,
        "capacity": PARAMS.capacity,
        "hub_budget": PARAMS.hub_budget,
        "rebuild_per_batch_seconds": baseline_timer.elapsed,
        "rebuild_seconds_per_batch": rebuild_seconds,
        "maintained_seconds": maintained_timer.elapsed,
        "speedup": speedup,
        "maintenance_reports": [report.as_dict() for report in reports],
        "update_metrics": update_metrics.as_dict(),
        "service_metrics": metrics.as_dict(),
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    n_full = sum(report.full_rebuild for report in reports)
    print(
        f"\n{workload.n_queries} queries / {workload.n_update_batches} update "
        f"batches on {graph.n_nodes}-node graph: rebuild-per-batch "
        f"{baseline_timer.elapsed:.2f}s, maintained {maintained_timer.elapsed:.2f}s "
        f"-> {speedup:.1f}x (invalidated {update_metrics.n_invalidated} states, "
        f"{n_full} full rebuilds, cache hit rate {metrics.cache.hit_rate:.0%})"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"delta maintenance only {speedup:.1f}x faster than rebuild-per-batch "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )
