"""Side contribution — PMPN (Algorithm 2) costs the same as one forward column.

Theorem 2 claims computing the proximities from *all* nodes to a query costs
no more than computing one ordinary proximity vector.  This benchmark times
both on every evaluation graph and also compares against the naive approach
(computing every column to read off one row).
"""

import numpy as np
import pytest

from repro.core.pmpn import proximity_to_node
from repro.evaluation.tables import format_table
from repro.rwr import proximity_vector
from repro.utils.timer import Timer

BENCH_DATASETS = ("web-stanford-cs", "epinions", "web-stanford", "web-google")
N_PROBES = 5


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_pmpn_cost_matches_single_column(benchmark, bench_graphs, bench_transitions,
                                         write_result_file, dataset):
    graph = bench_graphs[dataset]
    matrix = bench_transitions[dataset]
    rng = np.random.default_rng(1)
    probes = rng.integers(0, graph.n_nodes, size=N_PROBES)

    benchmark(lambda: proximity_to_node(matrix, int(probes[0]), tolerance=1e-8))

    with Timer() as row_timer:
        row_iterations = [
            proximity_to_node(matrix, int(node), tolerance=1e-8).iterations
            for node in probes
        ]
    with Timer() as column_timer:
        column_iterations = [
            proximity_vector(matrix, int(node), tolerance=1e-8).iterations
            for node in probes
        ]

    text = format_table(
        ["method", "mean iterations", "total time (s)"],
        [
            ["PMPN (row of P)", float(np.mean(row_iterations)), row_timer.elapsed],
            ["power method (column of P)", float(np.mean(column_iterations)), column_timer.elapsed],
        ],
        title=f"PMPN vs single-column cost, {dataset} (n={graph.n_nodes})",
    )
    write_result_file(f"pmpn_cost_{dataset}", text)
    print("\n" + text)

    # Theorem 2: same iteration bound, so within a small constant factor.
    assert np.mean(row_iterations) <= 2 * np.mean(column_iterations) + 5
    assert row_timer.elapsed < 5 * column_timer.elapsed + 0.5
