"""Ablation — value of the staircase upper bound (Algorithm 3).

Without the upper bound, every candidate that survives the lower-bound filter
must be refined until its lower bound alone decides membership.  This ablation
counts the refinement iterations saved by the upper-bound confirmation step.
"""

import copy

import numpy as np

from repro.core import ReverseTopKEngine, build_index
from repro.evaluation.tables import format_table
from repro.workloads import uniform_query_workload

DATASET = "web-stanford-cs"
K = 20
N_QUERIES = 20


def _query_without_upper_bound(engine, query, k):
    """Replicate Algorithm 4 but never confirm via the upper bound."""
    from repro.core.lbi import refine_node_state
    from repro.core.pmpn import proximity_to_node

    proximities = proximity_to_node(
        engine.transition, query, alpha=engine.index.params.alpha
    ).proximities
    hub_mask = engine.index.hubs.mask(engine.n_nodes)
    refinements = 0
    results = []
    for node in range(engine.n_nodes):
        state = engine.index.state(node).copy()
        value = float(proximities[node])
        while value >= state.kth_lower_bound(k):
            if state.is_exact:
                results.append(node)
                break
            if not refine_node_state(state, engine.index, engine.transition, hub_mask):
                results.append(node)
                break
            refinements += 1
    return results, refinements


def test_ablation_upper_bound(benchmark, bench_graphs, bench_transitions, bench_params,
                              write_result_file):
    graph = bench_graphs[DATASET]
    matrix = bench_transitions[DATASET]
    index = build_index(graph, bench_params, transition=matrix)
    workload = uniform_query_workload(graph, N_QUERIES, seed=11)

    engine_with = ReverseTopKEngine(matrix, copy.deepcopy(index))
    benchmark(lambda: engine_with.query(int(workload.queries[0]), K, update_index=False))

    with_ub_refinements = []
    with_ub_results = []
    for query in workload:
        stats = engine_with.query(query, K, update_index=False).statistics
        with_ub_refinements.append(stats.n_refinement_iterations)
        with_ub_results.append(stats.n_results)

    engine_without = ReverseTopKEngine(matrix, copy.deepcopy(index))
    without_ub_refinements = []
    without_ub_results = []
    for query in workload:
        results, refinements = _query_without_upper_bound(engine_without, query, K)
        without_ub_refinements.append(refinements)
        without_ub_results.append(len(results))

    text = format_table(
        ["variant", "mean refinements / query", "mean results / query"],
        [
            ["with upper bound (Alg. 3)", float(np.mean(with_ub_refinements)),
             float(np.mean(with_ub_results))],
            ["without upper bound", float(np.mean(without_ub_refinements)),
             float(np.mean(without_ub_results))],
        ],
        title=f"Ablation — staircase upper bound, {DATASET} (k={K})",
    )
    write_result_file("ablation_upper_bound", text)
    print("\n" + text)

    # The upper bound can only reduce refinement work.
    assert np.mean(with_ub_refinements) <= np.mean(without_ub_refinements) + 1e-9
