"""Network serving benchmark: zipfian + churn at >= 1k concurrent connections.

A :class:`ReverseTopKServer` fronts a **sharded memory-mapped** dynamic
service (the deployment shape: partitioned index, out-of-core backing) and
is slammed over real sockets:

* **main phase** — a churn workload (Zipf-skewed queries interleaved with
  update batches) replayed over ~1,100 prewarmed concurrent connections
  against an admission bound of 256: the excess **must** shed with 429 +
  ``Retry-After`` and the well-behaved client retries until every query is
  answered.  Update batches ride the zero-downtime rollover path.
* **overload probe** — a no-retry burst, recording the raw shed rate.

Assertions (the PR's acceptance criteria):

1. every admitted response is **bit-identical** to ``engine.query`` on a
   local mirror service at the served index version — the wire adds
   scheduling, never approximation, even across rollovers;
2. backpressure engaged (shed counter > 0) and the pending queue stayed
   **bounded**: ``peak_pending <= max_pending``;
3. at least 1,000 connections were actually opened against the server.

Latency percentiles and every layer's counters are recorded to
``benchmarks/results/network_serving.json``.
"""

import asyncio
import json
from pathlib import Path
import tempfile

import numpy as np

from repro.core import IndexParams
from repro.dynamic import DynamicReverseTopKService
from repro.net import AdmissionPolicy, ServerConfig, start_in_thread
from repro.workloads import (
    QueryEvent,
    UpdateEvent,
    churn_workload,
    replay_over_network,
)

N_NODES = 600
K = 10
N_QUERIES = 1_400
N_UPDATE_BATCHES = 3
CONCURRENCY = 1_100  # in-flight requests == prewarmed open sockets
MAX_PENDING = 256  # < CONCURRENCY: overload is guaranteed, sheds must fire
MIN_CONNECTIONS = 1_000
N_SHARDS = 4

PARAMS = IndexParams(capacity=20, hub_budget=8)

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "network_serving.json"


def _verify_bit_identity(graph, events, responses, update_acks):
    """Replay the stream against a local mirror, epoch by epoch.

    Update events are barriers in the replay, so every response between two
    barriers was served by the generation current in that epoch; the mirror
    applies the same batches in the same order, and the maintained index is
    bit-identical to the server's (same initial build, same maintainer
    arithmetic).  Returns the number of responses verified.
    """
    mirror = DynamicReverseTopKService.from_graph(graph, PARAMS)
    try:
        verified = 0
        slot = 0
        batch_index = 0
        reference = {}  # (query, k) -> direct engine result, per epoch
        for event in events:
            if isinstance(event, QueryEvent):
                response = responses[slot]
                slot += 1
                assert response is not None, "no deadlines set: all must answer"
                key = (event.query, event.k)
                if key not in reference:
                    reference[key] = mirror.engine.query(
                        event.query, event.k, update_index=False
                    )
                direct = reference[key]
                np.testing.assert_array_equal(response["nodes"], direct.nodes)
                assert np.array_equal(
                    np.asarray(response["proximities"], dtype=np.float64),
                    direct.proximities_to_query,
                ), f"proximities not bit-identical for {key}"
                assert response["index_version"] == mirror.engine.index.version
                verified += 1
            elif isinstance(event, UpdateEvent):
                ack = update_acks[batch_index]
                batch_index += 1
                mirror.apply_updates(list(event.updates))
                assert ack["index_version"] == mirror.engine.index.version
                reference.clear()  # new epoch, new answers
        return verified
    finally:
        mirror.close()


def _overload_probe(host, port, n_requests):
    """One no-retry burst: count served vs shed (the raw shed rate)."""
    from repro.net import ReverseTopKClient, ServerRejected

    async def slam():
        async with ReverseTopKClient(
            host, port, max_connections=n_requests
        ) as client:
            outcomes = await asyncio.gather(
                *[client.query(q % N_NODES, K) for q in range(n_requests)],
                return_exceptions=True,
            )
        served = sum(1 for o in outcomes if isinstance(o, dict))
        shed = sum(
            1
            for o in outcomes
            if isinstance(o, ServerRejected) and o.status == 429
        )
        unexpected = [
            o
            for o in outcomes
            if not isinstance(o, dict)
            and not (isinstance(o, ServerRejected) and o.status == 429)
        ]
        assert not unexpected, f"unexpected outcomes: {unexpected[:3]}"
        return {"n_requests": n_requests, "served": served, "shed": shed}

    return asyncio.run(slam())


def test_network_serving_under_churn():
    from repro.graph import copying_web_graph

    graph = copying_web_graph(N_NODES, out_degree=5, seed=3)
    workload = churn_workload(
        graph,
        N_QUERIES,
        N_UPDATE_BATCHES,
        k=K,
        batch_size=4,
        # Enough distinct hot queries that the scan executor (not the
        # event loop) is the bottleneck: the pending queue genuinely fills
        # and the admission bound is exercised, not just configured.
        hot_fraction=0.4,
        seed=17,
    )

    with tempfile.TemporaryDirectory() as snapshot_dir:
        service = DynamicReverseTopKService.from_graph(
            graph,
            PARAMS,
            snapshot_dir=snapshot_dir,
            n_shards=N_SHARDS,
            memory_budget=0,  # out-of-core: shards memmap the archived layout
        )
        index = service.engine.index
        assert index.n_shards == N_SHARDS
        backing = index.shards[0].backing

        handle = start_in_thread(
            service,
            ServerConfig(
                admission=AdmissionPolicy(
                    max_pending=MAX_PENDING, retry_after_s=0.02
                ),
                batch_window=0.002,
                max_batch=256,
            ),
        )
        try:
            # --- main phase: churn stream at >= 1k concurrent connections - #
            report = replay_over_network(
                workload,
                handle.host,
                handle.port,
                concurrency=CONCURRENCY,
                max_connections=CONCURRENCY,
                prewarm=CONCURRENCY,
            )
            metrics = handle.metrics()

            # --- overload probe: raw shed rate without client retries ----- #
            probe = _overload_probe(handle.host, handle.port, CONCURRENCY)
        finally:
            handle.stop()

    # 1. Everything answered, through explicit backpressure.
    assert report.n_answered == N_QUERIES
    assert report.n_deadline_failures == 0
    assert report.n_shed_retries > 0, (
        f"{CONCURRENCY} in-flight vs max_pending={MAX_PENDING}: "
        "backpressure must have engaged"
    )
    tenant = metrics["tenants"]["default"]["counters"]
    assert tenant["shed_queue_full"] == report.n_shed_retries

    # 2. The queue stayed bounded (the explicit-backpressure contract).
    assert metrics["admission"]["peak_pending"] <= MAX_PENDING

    # 3. The load was genuinely concurrent at network level.
    n_connections = metrics["server"]["n_connections"]
    assert n_connections >= MIN_CONNECTIONS, (
        f"only {n_connections} connections opened; "
        f"need >= {MIN_CONNECTIONS} for the concurrency claim"
    )

    # 4. Rollovers happened and every answer is bit-identical to a direct
    #    engine call at the served index version.
    assert report.n_update_batches == N_UPDATE_BATCHES
    assert metrics["rollover"]["n_rollovers"] >= 1
    verified = _verify_bit_identity(
        graph, list(workload.events), report.responses, report.update_acks
    )
    assert verified == N_QUERIES

    record = {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "k": K,
        "workload": workload.description,
        "n_queries": N_QUERIES,
        "n_update_batches": N_UPDATE_BATCHES,
        "concurrency": CONCURRENCY,
        "max_pending": MAX_PENDING,
        "n_shards": N_SHARDS,
        "shard_backing": backing,
        "seconds": report.seconds,
        "throughput_qps": report.throughput_qps,
        "n_answered": report.n_answered,
        "n_shed_retries": report.n_shed_retries,
        "n_connections": n_connections,
        "client_latency": report.latency,
        "server_tenant_latency": metrics["tenants"]["default"]["latency"],
        "admission": metrics["admission"],
        "tenant_counters": tenant,
        "coalesce": metrics["coalesce"],
        "overload_probe": probe,
        "rollover": {
            "n_rollovers": metrics["rollover"]["n_rollovers"],
            "n_noop_batches": metrics["rollover"]["n_noop_batches"],
        },
        "n_verified_bit_identical": verified,
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    latency = report.latency
    print(
        f"\nnetwork serving: {N_QUERIES} queries + {N_UPDATE_BATCHES} churn "
        f"batches over {n_connections} connections "
        f"({CONCURRENCY} concurrent, queue bound {MAX_PENDING}): "
        f"{report.throughput_qps:.0f} qps, "
        f"{report.n_shed_retries} sheds retried, "
        f"p50/p95/p99 {latency['p50_seconds'] * 1e3:.1f}/"
        f"{latency['p95_seconds'] * 1e3:.1f}/"
        f"{latency['p99_seconds'] * 1e3:.1f} ms, "
        f"peak queue {metrics['admission']['peak_pending']}, "
        f"{verified} answers verified bit-identical across "
        f"{metrics['rollover']['n_rollovers']} rollovers"
    )
