"""Figure 5 — average reverse top-k query time vs. k, update vs. no-update."""

import copy

import pytest

from repro.core import ReverseTopKEngine, build_index
from repro.evaluation import figure5_query_time

BENCH_DATASETS = ("web-stanford-cs", "epinions", "web-stanford", "web-google")
K_VALUES = (5, 10, 20, 50)
N_QUERIES = 15


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_fig5_query_time(benchmark, bench_graphs, bench_transitions, bench_params, write_result_file, dataset):
    """Benchmark a single k=10 query and emit the full Figure 5 series."""
    graph = bench_graphs[dataset]
    matrix = bench_transitions[dataset]
    index = build_index(graph, bench_params, transition=matrix)
    engine = ReverseTopKEngine(matrix, copy.deepcopy(index))

    benchmark(lambda: engine.query(0, 10, update_index=True))

    # The vectorized scan must agree with the seed per-node loop at bench
    # scale (fresh index copies on both sides: the benchmark rounds above
    # refined the engine's own index).
    vectorized_engine = ReverseTopKEngine(matrix, copy.deepcopy(index))
    scalar_engine = ReverseTopKEngine(matrix, copy.deepcopy(index))
    vec = vectorized_engine.query(1, 10, update_index=False, scan_mode="vectorized")
    sca = scalar_engine.query(1, 10, update_index=False, scan_mode="scalar")
    assert set(vec.nodes.tolist()) == set(sca.nodes.tolist())
    assert vec.statistics.n_candidates == sca.statistics.n_candidates
    assert "refine" in vec.statistics.stage_seconds

    result = figure5_query_time(
        graph,
        k_values=K_VALUES,
        n_queries=N_QUERIES,
        params=bench_params,
        graph_name=dataset,
    )
    write_result_file(f"figure5_{dataset}", result.text)
    print("\n" + result.text)

    # Shape check: queries stay usable across the whole k range (the paper's
    # figures stay within the same order of magnitude from k=5 to k=100).
    series = result.data["update_seconds"] + result.data["no_update_seconds"]
    assert max(series) < 100 * min(series) + 1.0
