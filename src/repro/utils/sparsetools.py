"""Sparse-vector helpers used by the BCA index and the query engine.

The reverse top-k index stores per-node state (residue ink, retained ink,
hub-accumulated ink, top-K lower bounds) as *sparse* vectors because for
realistic graphs only a tiny fraction of entries is non-zero.  These helpers
centralise the conversions and top-k extraction so the core algorithms stay
readable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np
import scipy.sparse as sp


def l1_norm(vector: np.ndarray | sp.spmatrix) -> float:
    """Return the L1 norm of a dense or sparse vector."""
    if sp.issparse(vector):
        return float(np.abs(vector.data).sum()) if vector.nnz else 0.0
    return float(np.abs(np.asarray(vector)).sum())


def sparse_vector_from_dict(entries: Dict[int, float], size: int) -> sp.csc_matrix:
    """Build an ``size x 1`` CSC column vector from a ``{index: value}`` dict."""
    if not entries:
        return sp.csc_matrix((size, 1), dtype=np.float64)
    indices = np.fromiter(entries.keys(), dtype=np.int64, count=len(entries))
    values = np.fromiter(entries.values(), dtype=np.float64, count=len(entries))
    order = np.argsort(indices)
    indices, values = indices[order], values[order]
    indptr = np.array([0, len(indices)], dtype=np.int64)
    return sp.csc_matrix((values, indices, indptr), shape=(size, 1))


def sparse_column_to_dense(column: sp.spmatrix | np.ndarray, size: int | None = None) -> np.ndarray:
    """Return a flat dense ``float64`` array for a (possibly sparse) column."""
    if sp.issparse(column):
        return np.asarray(column.todense(), dtype=np.float64).ravel()
    dense = np.asarray(column, dtype=np.float64).ravel()
    if size is not None and dense.size != size:
        raise ValueError(f"expected a vector of length {size}, got {dense.size}")
    return dense


def dense_top_k(values: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return the indices and values of the ``k`` largest entries, descending.

    Ties are broken by ascending index so the result is deterministic.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    k = min(int(k), values.size)
    if k <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    # argpartition gives the k largest in O(n); a final sort orders them.
    candidate = np.argpartition(-values, k - 1)[:k]
    # Sort by (-value, index) for deterministic tie-breaking.
    order = np.lexsort((candidate, -values[candidate]))
    top = candidate[order]
    return top.astype(np.int64), values[top]


def sparse_top_k(column: sp.spmatrix, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k of a sparse column without densifying the full vector.

    Entries absent from the sparse structure are treated as zero; if fewer
    than ``k`` stored entries exist, zeros pad the value array (with index -1)
    only when the column genuinely has fewer than ``k`` non-zero entries but
    the caller asked for more — callers that need exactly ``k`` physical slots
    should handle padding themselves.
    """
    if not sp.issparse(column):
        return dense_top_k(np.asarray(column), k)
    column = column.tocoo()
    if column.nnz == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    rows = column.row if column.shape[1] == 1 else column.col
    values = column.data
    k_eff = min(int(k), values.size)
    candidate = np.argpartition(-values, k_eff - 1)[:k_eff]
    order = np.lexsort((rows[candidate], -values[candidate]))
    chosen = candidate[order]
    return rows[chosen].astype(np.int64), values[chosen].astype(np.float64)


def top_k_descending(values: np.ndarray, k: int) -> np.ndarray:
    """Return just the ``k`` largest values in descending order (padded with 0).

    The lower-bound matrix of the index stores exactly ``K`` slots per node;
    when a node has fewer than ``K`` positive proximity estimates the tail is
    zero, which is a valid (trivial) lower bound.
    """
    _, top_values = dense_top_k(values, k)
    if top_values.size < k:
        top_values = np.pad(top_values, (0, k - top_values.size))
    return top_values


def iter_sparse_entries(column: sp.spmatrix) -> Iterable[Tuple[int, float]]:
    """Yield ``(index, value)`` pairs of a sparse column vector."""
    coo = column.tocoo()
    rows = coo.row if coo.shape[1] == 1 else coo.col
    for index, value in zip(rows.tolist(), coo.data.tolist()):
        yield int(index), float(value)
