"""Wall-clock timers and latency accumulators for the harness and the service.

:class:`Timer` and :class:`StageTimer` measure individual code sections;
:class:`LatencyStats` aggregates many per-request measurements into the
summary statistics (count, mean, tail percentiles) that the serving layer's
metrics endpoint and the throughput benchmarks report.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
import math
import threading
import time
from typing import Dict, Iterable, List, Sequence, Tuple


class Timer:
    """Context-manager stopwatch measuring wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None

    def restart(self) -> None:
        """Reset the timer and start measuring again."""
        self.elapsed = 0.0
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop measuring and return the elapsed time in seconds."""
        self.__exit__(None, None, None)
        return self.elapsed


@dataclass
class StageTimer:
    """Accumulates named timing stages, e.g. ``pmpn``, ``prune``, ``refine``.

    The online query engine uses this to report where query time is spent,
    mirroring the per-stage discussion in Section 5.3 of the paper.

    Stages opened *inside* another :meth:`time` block attribute only their
    **exclusive** time to the enclosing stage: a child's wall time is
    subtracted from its parent's contribution, so :attr:`total` equals true
    wall time instead of double-counting every nesting level.
    """

    stages: Dict[str, float] = field(default_factory=dict)
    _order: List[str] = field(default_factory=list)
    _active: List["_StageContext"] = field(default_factory=list, repr=False)

    def add(self, stage: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated total of ``stage``."""
        if stage not in self.stages:
            self.stages[stage] = 0.0
            self._order.append(stage)
        self.stages[stage] += float(seconds)

    def time(self, stage: str) -> "_StageContext":
        """Return a context manager that records its duration under ``stage``."""
        return _StageContext(self, stage)

    @property
    def total(self) -> float:
        """Total seconds across every stage."""
        return sum(self.stages.values())

    def as_dict(self) -> Dict[str, float]:
        """Return stage totals in insertion order."""
        return {name: self.stages[name] for name in self._order}


class LatencyStats:
    """Accumulator for per-request latencies: count, mean and tail percentiles.

    Samples are kept (as float seconds) so percentiles are exact under the
    nearest-rank definition; at serving-benchmark scale (thousands of
    requests) the memory cost is negligible.

    Every operation is **thread-safe**: the network serving layer records
    samples from the event-loop thread and from executor workers into the
    same accumulator, and the service merges per-burst accumulators from
    concurrent ``serve`` calls.  A single internal lock guards the sample
    list and the sorted-percentile cache; reads take a consistent snapshot.
    Deadlock-free cross-merging (``a.merge(b)`` racing ``b.merge(a)``) is
    guaranteed by acquiring the two locks in a global (id-based) order.

    Examples
    --------
    >>> stats = LatencyStats()
    >>> for ms in (1, 2, 3, 4, 100):
    ...     stats.record(ms / 1000)
    >>> stats.count
    5
    >>> stats.p50
    0.003
    """

    def __init__(self, samples: Iterable[float] = ()) -> None:
        self._samples: List[float] = [float(s) for s in samples]
        self._sorted: List[float] | None = None
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one latency sample (in seconds)."""
        with self._lock:
            self._samples.append(float(seconds))
            self._sorted = None

    def observe(self, value: float) -> None:
        """Alias of :meth:`record` (registry-histogram observer protocol)."""
        self.record(value)

    def summary(
        self, buckets: Sequence[float]
    ) -> Dict[str, object]:
        """Cumulative histogram-bucket counts over the recorded samples.

        Returns ``{"buckets": [(le, count), ...], "count": n, "sum": total}``
        with cumulative counts per upper bound — the exact shape a registry
        :class:`~repro.obs.registry.Histogram` exports, so one accumulator
        can back both the service's nearest-rank percentiles (JSON) and a
        Prometheus exposition without duplicating samples.
        """
        with self._lock:
            if self._sorted is None:
                self._sorted = sorted(self._samples)
            ordered = self._sorted
            cumulative: List[Tuple[float, int]] = [
                (float(edge), bisect.bisect_right(ordered, edge))
                for edge in buckets
            ]
            return {
                "buckets": cumulative,
                "count": len(ordered),
                "sum": sum(ordered),
            }

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Fold another accumulator's samples into this one (returns self).

        Edge cases (pinned by tests — the sharded query router merges
        per-shard timing accumulators constantly):

        * merging an **empty** accumulator is a no-op and keeps the sorted
          cache warm (percentile queries between merges stay O(1));
        * merging an accumulator **into itself** is a no-op rather than a
          silent sample-doubling;
        * merging disjoint counts is order-independent for every reported
          statistic (count, mean, min/max, nearest-rank percentiles).
        """
        if other is self:
            return self
        # Lock both sides in a global order so two threads cross-merging the
        # same pair (a.merge(b) vs b.merge(a)) cannot deadlock, and `other`
        # cannot gain samples between the emptiness check and the extend.
        first, second = sorted((self, other), key=id)
        # The analyzer cannot see that {first, second} == {self, other}, so
        # it reports the guarded accesses below as unlocked and the two-lock
        # acquisition as a same-class cycle; the id-ordering above is exactly
        # the canonical-sequence fix RL002 asks for.
        with first._lock, second._lock:  # reprolint: disable=RL001(first/second are id-ordered aliases of self/other so both locks are held), RL002(same-class pair is acquired in id order everywhere)
            if other._samples:
                self._samples.extend(other._samples)
                self._sorted = None
        return self

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        with self._lock:
            return len(self._samples)

    @property
    def total(self) -> float:
        """Sum of all samples, in seconds."""
        with self._lock:
            return sum(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean latency (0.0 when empty)."""
        with self._lock:
            if not self._samples:
                return 0.0
            return sum(self._samples) / len(self._samples)

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        with self._lock:
            return min(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        with self._lock:
            return max(self._samples) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100] (0.0 when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._samples:
                return 0.0
            if self._sorted is None:
                self._sorted = sorted(self._samples)
            rank = min(
                len(self._sorted), max(1, math.ceil(p / 100.0 * len(self._sorted)))
            )
            return self._sorted[rank - 1]

    def __getstate__(self) -> Dict[str, List[float]]:
        # Locks don't pickle; ship a consistent snapshot of the samples.
        with self._lock:
            return {"samples": list(self._samples)}

    def __setstate__(self, state: Dict[str, List[float]]) -> None:
        self._samples = list(state["samples"])
        self._sorted = None
        self._lock = threading.Lock()

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(99)

    def as_dict(self) -> Dict[str, float]:
        """Summary suitable for JSON metrics output (one consistent snapshot)."""
        with self._lock:
            samples = self._samples
            if not samples:
                ordered: List[float] = []
                total = 0.0
            else:
                if self._sorted is None:
                    self._sorted = sorted(samples)
                ordered = self._sorted
                total = sum(samples)

        def rank(p: float) -> float:
            if not ordered:
                return 0.0
            position = min(len(ordered), max(1, math.ceil(p / 100.0 * len(ordered))))
            return ordered[position - 1]

        return {
            "count": float(len(ordered)),
            "total_seconds": total,
            "mean_seconds": total / len(ordered) if ordered else 0.0,
            "min_seconds": ordered[0] if ordered else 0.0,
            "max_seconds": ordered[-1] if ordered else 0.0,
            "p50_seconds": rank(50),
            "p95_seconds": rank(95),
            "p99_seconds": rank(99),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def __repr__(self) -> str:
        return (
            f"LatencyStats(count={self.count}, mean={self.mean:.6f}s, "
            f"p50={self.p50:.6f}s, p95={self.p95:.6f}s, p99={self.p99:.6f}s)"
        )


class _StageContext:
    def __init__(self, parent: StageTimer, stage: str) -> None:
        self._parent = parent
        self._stage = stage
        self._timer = Timer()
        self._child_seconds = 0.0

    def __enter__(self) -> "_StageContext":
        self._parent._active.append(self)
        self._timer.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.__exit__(*exc_info)
        active = self._parent._active
        if active and active[-1] is self:
            active.pop()
        # Exclusive attribution: this stage keeps only the time not already
        # claimed by stages nested inside it, and hands its full wall time
        # up to the enclosing stage (if any) to subtract in turn.
        elapsed = self._timer.elapsed
        self._parent.add(self._stage, max(0.0, elapsed - self._child_seconds))
        if active:
            active[-1]._child_seconds += elapsed
