"""A tiny wall-clock timer used by the evaluation harness and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


class Timer:
    """Context-manager stopwatch measuring wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None

    def restart(self) -> None:
        """Reset the timer and start measuring again."""
        self.elapsed = 0.0
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop measuring and return the elapsed time in seconds."""
        self.__exit__(None, None, None)
        return self.elapsed


@dataclass
class StageTimer:
    """Accumulates named timing stages, e.g. ``pmpn``, ``prune``, ``refine``.

    The online query engine uses this to report where query time is spent,
    mirroring the per-stage discussion in Section 5.3 of the paper.
    """

    stages: Dict[str, float] = field(default_factory=dict)
    _order: List[str] = field(default_factory=list)

    def add(self, stage: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated total of ``stage``."""
        if stage not in self.stages:
            self.stages[stage] = 0.0
            self._order.append(stage)
        self.stages[stage] += float(seconds)

    def time(self, stage: str) -> "_StageContext":
        """Return a context manager that records its duration under ``stage``."""
        return _StageContext(self, stage)

    @property
    def total(self) -> float:
        """Total seconds across every stage."""
        return sum(self.stages.values())

    def as_dict(self) -> Dict[str, float]:
        """Return stage totals in insertion order."""
        return {name: self.stages[name] for name in self._order}


class _StageContext:
    def __init__(self, parent: StageTimer, stage: str) -> None:
        self._parent = parent
        self._stage = stage
        self._timer = Timer()

    def __enter__(self) -> "_StageContext":
        self._timer.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.__exit__(*exc_info)
        self._parent.add(self._stage, self._timer.elapsed)
