"""Reusable scratch-array pools for the hot numeric paths.

The blocked BCA engine and the columnar scan both cycle through the same
dense work arrays thousands of times per build or query workload; allocating
them per pass makes the allocator — not the arithmetic — the bottleneck.
:class:`ArrayWorkspace` is a tiny name-keyed pool that hands out preallocated
arrays and grows them monotonically, so steady-state passes allocate nothing.

Thread safety: the pool is **thread-local** — every thread that calls
:meth:`ArrayWorkspace.take` sees its own private arrays, so one workspace
object may safely be shared by an engine that serves concurrent read-only
queries from a thread pool.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np


class ArrayWorkspace:
    """Name-keyed pool of reusable numpy scratch arrays (thread-local).

    :meth:`take` returns an **uninitialised** array of exactly the requested
    shape, carved out of a flat buffer that only grows; :meth:`zeros` returns
    the same array cleared.  Callers must treat a taken array as garbage
    until they have written it — reused buffers may contain arbitrary bits
    (including inf/nan patterns) from earlier passes.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._all_stats: list = []

    def __getstate__(self):
        # Scratch contents are disposable and thread-local storage is not
        # picklable: a copied workspace starts empty.
        return {}

    def __setstate__(self, state):
        self.__init__()

    def _pool(self) -> Dict[Tuple[str, str], np.ndarray]:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = {}
            self._local.pool = pool
            # Per-thread reuse counters, mutated lock-free on the hot path
            # (each dict belongs to exactly one thread) and aggregated
            # under the lock by stats().
            counters = {"hits": 0, "misses": 0, "grown_bytes": 0}
            self._local.stats = counters
            with self._stats_lock:
                self._all_stats.append(counters)
        return pool

    def take(
        self, name: str, shape: Tuple[int, ...] | int, dtype=np.float64
    ) -> np.ndarray:
        """Return an uninitialised C-contiguous array of ``shape`` (reused)."""
        if isinstance(shape, int):
            shape = (shape,)
        dtype = np.dtype(dtype)
        size = 1
        for extent in shape:
            size *= int(extent)
        pool = self._pool()
        key = (name, dtype.str)
        buffer = pool.get(key)
        if buffer is None or buffer.size < size:
            buffer = np.empty(max(size, 1), dtype=dtype)
            pool[key] = buffer
            stats = self._local.stats
            stats["misses"] += 1
            stats["grown_bytes"] += buffer.nbytes
        else:
            self._local.stats["hits"] += 1
        return buffer[:size].reshape(shape)

    def zeros(
        self, name: str, shape: Tuple[int, ...] | int, dtype=np.float64
    ) -> np.ndarray:
        """Like :meth:`take`, but cleared to zero (``False`` for bool)."""
        array = self.take(name, shape, dtype)
        array.fill(0)
        return array

    def arange(self, name: str, size: int) -> np.ndarray:
        """Return ``[0, 1, ..., size - 1]`` as int64 without reallocating.

        The backing buffer is filled with its full ``arange`` once at
        (re)allocation time, so any prefix slice is already correct.
        """
        pool = self._pool()
        key = (name, "<arange>")
        buffer = pool.get(key)
        if buffer is None or buffer.size < size:
            buffer = np.arange(max(size, 1), dtype=np.int64)
            pool[key] = buffer
            stats = self._local.stats
            stats["misses"] += 1
            stats["grown_bytes"] += buffer.nbytes
        else:
            self._local.stats["hits"] += 1
        return buffer[:size]

    def stats(self) -> Dict[str, int]:
        """Aggregate reuse counters across every thread that used the pool.

        ``hits`` are requests served from an existing (large enough) buffer,
        ``misses`` are (re)allocations, ``grown_bytes`` the total bytes ever
        allocated.  The profiler reports these as workspace reuse hit rates.
        """
        totals = {"hits": 0, "misses": 0, "grown_bytes": 0}
        with self._stats_lock:
            for counters in self._all_stats:
                for field in totals:
                    totals[field] += counters[field]
        return totals
