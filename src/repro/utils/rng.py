"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an already-constructed :class:`numpy.random.Generator`.
Centralising the conversion keeps behaviour consistent and testable.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for non-deterministic behaviour, an integer for a fixed
        seed, a :class:`~numpy.random.SeedSequence`, or an existing
        :class:`~numpy.random.Generator` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``count`` independent generators.

    Useful for embarrassingly-parallel work (e.g. per-node index construction
    or Monte Carlo walkers) where each chunk must have an independent stream
    while the overall run remains reproducible.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
