"""Shared utilities: sparse helpers, timers, RNG plumbing."""

from .rng import ensure_rng
from .sparsetools import (
    dense_top_k,
    sparse_column_to_dense,
    sparse_top_k,
    sparse_vector_from_dict,
    l1_norm,
)
from .timer import LatencyStats, StageTimer, Timer

__all__ = [
    "ensure_rng",
    "dense_top_k",
    "sparse_column_to_dense",
    "sparse_top_k",
    "sparse_vector_from_dict",
    "l1_norm",
    "LatencyStats",
    "StageTimer",
    "Timer",
]
