"""Bounded in-memory slow-query log: a threshold-gated ring buffer.

Percentiles say *that* the tail is slow; the slow-query log says *which*
queries were slow and, when the request was traced, *where* they spent the
time.  The server records every completed query's latency into a
:class:`SlowQueryLog`; entries at or above the threshold land in a ring
buffer of fixed capacity (oldest evicted first), queryable at
``GET /debug/slow``.

Memory is strictly bounded: ``capacity`` entries, each a small JSON-ready
dict (plus the span tree for traced requests).  The log is thread-safe —
the server appends from the event loop but tests and embedding callers may
record from anywhere.
"""

from __future__ import annotations

from collections import deque
import threading
from typing import Any, Dict, List, Optional

from .._validation import check_positive_int

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Ring buffer of the slowest recent queries (threshold-gated).

    Parameters
    ----------
    capacity:
        Maximum retained entries; older entries are evicted FIFO.
    threshold_seconds:
        Minimum latency for an entry to be recorded.  ``None`` disables the
        log entirely (every :meth:`record` is a cheap no-op); ``0.0``
        records every query (useful in tests and demos).
    """

    def __init__(
        self, capacity: int = 128, threshold_seconds: Optional[float] = 0.1
    ) -> None:
        check_positive_int(capacity, "capacity")
        if threshold_seconds is not None and threshold_seconds < 0:
            raise ValueError(
                f"threshold_seconds must be >= 0 or None, got {threshold_seconds}"
            )
        self.capacity = int(capacity)
        self.threshold_seconds = threshold_seconds
        self._entries: "deque[Dict[str, Any]]" = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._n_recorded = 0

    def record(self, seconds: float, **fields: Any) -> bool:
        """Record one completed query; returns whether it entered the log.

        ``fields`` become the entry verbatim (tenant, query, k, generation,
        trace tree, ...) alongside the mandatory ``seconds``.
        """
        if self.threshold_seconds is None or seconds < self.threshold_seconds:
            return False
        entry = {"seconds": float(seconds), **fields}
        with self._lock:
            self._entries.append(entry)
            self._n_recorded += 1
        return True

    @property
    def n_recorded(self) -> int:
        """Entries ever recorded (including ones the ring has evicted)."""
        with self._lock:
            return self._n_recorded

    def entries(self) -> List[Dict[str, Any]]:
        """Retained entries, most recent first."""
        with self._lock:
            return [dict(entry) for entry in reversed(self._entries)]

    def clear(self) -> None:
        """Drop every retained entry (the recorded total is kept)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state for the ``/debug/slow`` endpoint."""
        with self._lock:
            return {
                "threshold_seconds": self.threshold_seconds,
                "capacity": self.capacity,
                "n_recorded": self._n_recorded,
                "n_retained": len(self._entries),
                "entries": [dict(entry) for entry in reversed(self._entries)],
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SlowQueryLog(size={len(self._entries)}/{self.capacity}, "
                f"threshold={self.threshold_seconds})"
            )
