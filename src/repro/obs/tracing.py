"""Request tracing: a contextvar-propagated ``Trace``/``Span`` tree.

A :class:`Trace` records where one request spent its time as a tree of
:class:`Span` nodes — admission wait, coalesce fan-in, batch assembly,
per-shard scan, refinement — each with wall-clock seconds and free-form
annotations.  Propagation is by :mod:`contextvars`:

* inside **asyncio**, every task runs in a copied context, so concurrent
  requests' traces never bleed into each other;
* across the **thread-pool boundary** (the coalescer's
  ``loop.run_in_executor``), the batch runner *activates* a trace inside
  the worker thread (``with trace: service.serve(...)``), so the engine's
  spans attach to the batch even though the thread has no asyncio context.

The instrumentation contract is **pay-as-you-go**: with no active trace,
:func:`trace_span` is one contextvar read returning a shared no-op context
manager — no ``Span`` is allocated, no clock is read.  Hot code therefore
instruments unconditionally::

    with trace_span("scan") as span:
        ...                      # span is None when tracing is off
    if span is not None:
        span.annotate(n_pruned=n_pruned)

Spans also support **synthetic children** (:meth:`Span.record`): when a
phase already measured itself (e.g. the engine's :class:`StageTimer`
buckets, or per-shard scan seconds), the completed timing is attached as a
child without any double measurement.  The coalescer uses :meth:`Span.graft`
to attach one shared batch subtree under every waiter's request trace.
"""

from __future__ import annotations

from contextvars import ContextVar
import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Trace", "current_span", "trace_span"]

_ACTIVE_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro_active_span", default=None
)


class Span:
    """One node of a trace tree: name, seconds, annotations, children."""

    __slots__ = ("name", "seconds", "annotations", "children")

    def __init__(self, name: str, **annotations: Any) -> None:
        self.name = name
        self.seconds = 0.0
        self.annotations: Dict[str, Any] = dict(annotations)
        self.children: List["Span"] = []

    def annotate(self, **annotations: Any) -> "Span":
        """Attach key/value annotations (counts, flags, identifiers)."""
        self.annotations.update(annotations)
        return self

    def record(self, name: str, seconds: float = 0.0, **annotations: Any) -> "Span":
        """Append a completed (synthetic) child with a known duration."""
        child = Span(name, **annotations)
        child.seconds = float(seconds)
        self.children.append(child)
        return child

    def graft(self, span: "Span") -> None:
        """Attach an externally built (completed) subtree as a child.

        The subtree may be shared by several parents (the coalescer grafts
        one batch tree under every waiter); it must be complete — grafted
        trees are read, never mutated, through this parent.
        """
        self.children.append(span)

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready span tree (the ``"trace"`` field of a response)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "annotations": dict(self.annotations),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, seconds={self.seconds:.6f}, "
            f"children={len(self.children)})"
        )


class _ActiveSpan:
    """Context manager that times a span and makes it the current one."""

    __slots__ = ("span", "_token", "_start")

    def __init__(self, span: Span) -> None:
        self.span = span
        self._token = None
        self._start = 0.0

    def __enter__(self) -> Span:
        self._start = time.perf_counter()
        self._token = _ACTIVE_SPAN.set(self.span)
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        _ACTIVE_SPAN.reset(self._token)
        self.span.seconds = time.perf_counter() - self._start


class _NoopSpanContext:
    """Shared do-nothing context: the entire cost of tracing-off paths."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_CONTEXT = _NoopSpanContext()


def current_span() -> Optional[Span]:
    """The innermost active span of this context, or ``None``."""
    return _ACTIVE_SPAN.get()


def trace_span(name: str, **annotations: Any):
    """Open a child span under the current one (no-op when tracing is off).

    Returns a context manager whose ``as`` target is the new :class:`Span`,
    or ``None`` when no trace is active — guard annotation code on that.
    """
    parent = _ACTIVE_SPAN.get()
    if parent is None:
        return _NOOP_CONTEXT
    child = Span(name, **annotations)
    parent.children.append(child)
    return _ActiveSpan(child)


class Trace:
    """One request's trace: owns the root span and its context activation.

    Use either as a context manager (``with trace: ...``) or through the
    explicit :meth:`activate`/:meth:`deactivate` pair when entry and exit
    live in different scopes (the server activates before admission and
    deactivates in a ``finally`` after the response is built).
    """

    __slots__ = ("root", "_token", "_start")

    def __init__(self, name: str = "request", **annotations: Any) -> None:
        self.root = Span(name, **annotations)
        self._token = None
        self._start: Optional[float] = None

    def activate(self) -> "Trace":
        """Start the root clock and make the root the current span."""
        if self._token is None:
            self._start = time.perf_counter()
            self._token = _ACTIVE_SPAN.set(self.root)
        return self

    def deactivate(self) -> None:
        """Stop the root clock and restore the previous span (idempotent)."""
        if self._token is not None:
            _ACTIVE_SPAN.reset(self._token)
            self._token = None
        if self._start is not None:
            self.root.seconds = time.perf_counter() - self._start
            self._start = None

    def __enter__(self) -> "Trace":
        return self.activate()

    def __exit__(self, *exc_info: object) -> None:
        self.deactivate()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready span tree."""
        return self.root.to_dict()

    def __repr__(self) -> str:
        return f"Trace(root={self.root!r})"
