"""Unified observability: metrics registry, request tracing, profiling.

Three pillars, one philosophy (pay-as-you-go — instrumentation that is not
switched on must cost almost nothing):

* :mod:`repro.obs.registry` — process-wide named counters / gauges /
  fixed-bucket histograms with labels, exported as JSON and as Prometheus
  text from one snapshot-consistent cut;
* :mod:`repro.obs.tracing` — contextvar-propagated ``Trace``/``Span``
  trees recording where a request spent its time across the asyncio /
  thread-pool boundary, plus the :class:`SlowQueryLog` ring buffer;
* :mod:`repro.obs.profiler` — optional kernel profiling sinks for the
  blocked BCA engine (block iterations, plane bytes, product timings,
  workspace reuse).
"""

from .profiler import NULL_PROFILER, KernelProfiler, NullProfiler
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
)
from .slowlog import SlowQueryLog
from .tracing import Span, Trace, current_span, trace_span

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NullProfiler",
    "SlowQueryLog",
    "Span",
    "Trace",
    "current_span",
    "get_registry",
    "trace_span",
]
