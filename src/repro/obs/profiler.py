"""Kernel profiling sinks: per-block iteration, spill and product accounting.

The blocked BCA engine (:class:`~repro.core.propagation.PropagationKernel`)
is the cost center of index construction and query refinement, but its
inner loop is exactly the place where instrumentation must cost nothing
when unused.  The contract:

* every kernel carries a ``profiler`` attribute, defaulting to the shared
  module-level :data:`NULL_PROFILER` whose ``enabled`` flag is ``False``;
* hot paths hoist one check — ``prof = kernel.profiler if
  kernel.profiler.enabled else None`` — and only read clocks / call hooks
  when a real sink is attached, so the disabled overhead is a single
  attribute load per run (asserted by
  ``benchmarks/bench_observability_overhead.py``);
* :class:`KernelProfiler` is the reference sink: thread-safe aggregate
  counters (block iterations, live-column totals, fused-product and spill
  seconds, plane bytes high-water, workspace reuse hits/misses), optionally
  mirrored into a :class:`~repro.obs.registry.MetricsRegistry` so kernel
  internals appear in the same exposition as serving metrics.

Custom sinks only need the four ``on_*`` methods and ``enabled = True``;
they are called from whichever thread runs the kernel, so they must be
thread-safe if one kernel is shared across threads.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["KernelProfiler", "NullProfiler", "NULL_PROFILER"]


class NullProfiler:
    """The default do-nothing sink; ``enabled`` is ``False``.

    Stateless and picklable, so kernels (and the engines that own them)
    can be shipped to process-pool workers with the default sink attached.
    """

    enabled = False

    def on_block_iteration(self, **kwargs: object) -> None:
        """One blocked BCA step advanced (never called when disabled)."""

    def on_spill(self, **kwargs: object) -> None:
        """A batch of converged columns was spilled to node states."""

    def on_step(self, **kwargs: object) -> None:
        """One single-source refinement step ran."""

    def on_run(self, **kwargs: object) -> None:
        """One multi-source run completed."""


#: Shared default sink — the entire cost of profiling-off code paths is
#: reading its ``enabled`` flag.
NULL_PROFILER = NullProfiler()


class KernelProfiler:
    """Aggregating profiler sink, optionally mirrored into a registry.

    Parameters
    ----------
    registry:
        When given, the aggregates are also emitted as registry metrics
        (``repro_kernel_*``, labeled by ``backend``), so kernel internals
        share an exposition with the serving layer.
    """

    enabled = True

    def __init__(self, registry=None) -> None:
        self._lock = threading.Lock()
        self.n_runs = 0
        self.n_sources = 0
        self.n_block_iterations = 0
        self.n_live_columns = 0
        self.n_steps = 0
        self.n_spills = 0
        self.n_spilled_sources = 0
        self.product_seconds = 0.0
        self.spill_seconds = 0.0
        self.peak_plane_bytes = 0
        self.workspace_hits = 0
        self.workspace_misses = 0
        self._m: Optional[Dict[str, object]] = None
        if registry is not None:
            self._m = {
                "iterations": registry.counter(
                    "repro_kernel_block_iterations_total",
                    "Blocked BCA iterations advanced",
                    labels=("backend",),
                ),
                "live": registry.counter(
                    "repro_kernel_live_columns_total",
                    "Live columns summed across blocked iterations",
                    labels=("backend",),
                ),
                "product": registry.counter(
                    "repro_kernel_product_seconds_total",
                    "Seconds inside the per-iteration propagation product",
                    labels=("backend",),
                ),
                "spill": registry.counter(
                    "repro_kernel_spill_seconds_total",
                    "Seconds spilling converged columns to node states",
                ),
                "runs": registry.counter(
                    "repro_kernel_runs_total",
                    "Multi-source kernel runs completed",
                    labels=("backend",),
                ),
                "steps": registry.counter(
                    "repro_kernel_steps_total",
                    "Single-source refinement steps",
                ),
                "plane_bytes": registry.gauge(
                    "repro_kernel_plane_bytes",
                    "High-water bytes across the kernel's dense work planes",
                ),
                "ws_hits": registry.counter(
                    "repro_kernel_workspace_hits_total",
                    "Workspace buffer requests served without reallocation",
                ),
                "ws_misses": registry.counter(
                    "repro_kernel_workspace_misses_total",
                    "Workspace buffer requests that (re)allocated",
                ),
            }

    # ------------------------------------------------------------------ #
    # sink interface
    # ------------------------------------------------------------------ #
    def on_block_iteration(
        self, *, backend: str, n_live: int, seconds: float
    ) -> None:
        with self._lock:
            self.n_block_iterations += 1
            self.n_live_columns += int(n_live)
            self.product_seconds += float(seconds)
        if self._m is not None:
            self._m["iterations"].labels(backend=backend).inc()
            self._m["live"].labels(backend=backend).inc(int(n_live))
            self._m["product"].labels(backend=backend).inc(float(seconds))

    def on_spill(self, *, n_sources: int, seconds: float) -> None:
        with self._lock:
            self.n_spills += 1
            self.n_spilled_sources += int(n_sources)
            self.spill_seconds += float(seconds)
        if self._m is not None:
            self._m["spill"].inc(float(seconds))

    def on_step(self, *, dense: bool) -> None:
        with self._lock:
            self.n_steps += 1
        if self._m is not None:
            self._m["steps"].inc()

    def on_run(
        self,
        *,
        backend: str,
        n_sources: int,
        plane_bytes: int,
        workspace: Optional[Dict[str, int]] = None,
    ) -> None:
        with self._lock:
            self.n_runs += 1
            self.n_sources += int(n_sources)
            if plane_bytes > self.peak_plane_bytes:
                self.peak_plane_bytes = int(plane_bytes)
            if workspace is not None:
                # Cumulative per-workspace totals: keep the latest snapshot
                # rather than summing snapshots of the same counters.
                self.workspace_hits = int(workspace.get("hits", 0))
                self.workspace_misses = int(workspace.get("misses", 0))
        if self._m is not None:
            self._m["runs"].labels(backend=backend).inc()
            self._m["plane_bytes"].set(self.peak_plane_bytes)
            if workspace is not None:
                # Registry counters are monotonic; re-derive the delta from
                # the cumulative workspace snapshot.
                hits = float(workspace.get("hits", 0))
                misses = float(workspace.get("misses", 0))
                delta_hits = hits - self._m["ws_hits"].value
                delta_misses = misses - self._m["ws_misses"].value
                if delta_hits > 0:
                    self._m["ws_hits"].inc(delta_hits)
                if delta_misses > 0:
                    self._m["ws_misses"].inc(delta_misses)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    @property
    def workspace_hit_rate(self) -> float:
        """Fraction of workspace requests served without reallocation."""
        with self._lock:
            total = self.workspace_hits + self.workspace_misses
            return self.workspace_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of the aggregates."""
        with self._lock:
            total = self.workspace_hits + self.workspace_misses
            return {
                "n_runs": self.n_runs,
                "n_sources": self.n_sources,
                "n_block_iterations": self.n_block_iterations,
                "n_live_columns": self.n_live_columns,
                "n_steps": self.n_steps,
                "n_spills": self.n_spills,
                "n_spilled_sources": self.n_spilled_sources,
                "product_seconds": self.product_seconds,
                "spill_seconds": self.spill_seconds,
                "peak_plane_bytes": self.peak_plane_bytes,
                "workspace_hits": self.workspace_hits,
                "workspace_misses": self.workspace_misses,
                "workspace_hit_rate": (
                    self.workspace_hits / total if total else 0.0
                ),
            }

    def __repr__(self) -> str:
        return (
            f"KernelProfiler(runs={self.n_runs}, "
            f"iterations={self.n_block_iterations}, "
            f"product={self.product_seconds:.4f}s)"
        )
