"""Process-wide metrics registry: named counters, gauges, and histograms.

One :class:`MetricsRegistry` holds every instrument of one serving process
(or, for isolation, of one server instance): monotonic **counters**,
settable **gauges**, and fixed-bucket **histograms**, each optionally
dimensioned by a small set of labels (``tenant``, ``shard``, ``backend``,
``stage``).  The design goals, in order:

1. **snapshot consistency** — every mutation and every export pass takes
   the *same* registry lock, so a rendered exposition is one atomic cut
   through all instruments (no counter can advance between two lines of
   the same scrape);
2. **get-or-create registration** — registering an existing family (same
   name, same kind, same labels) returns the existing one, so rollover
   clones, retried builds and library helpers can all bind by name without
   coordination; a *conflicting* re-registration (kind or label-name
   mismatch) fails loudly;
3. **two exports, one state** — :meth:`MetricsRegistry.as_dict` for the
   JSON endpoints and :meth:`MetricsRegistry.render_prometheus` for the
   Prometheus text exposition are projections of the same child values.

Histograms can additionally be **backed** by an existing
:class:`~repro.utils.timer.LatencyStats` accumulator
(:meth:`Histogram.bind`): observations delegate to ``stats.record`` and
exports read ``stats.summary(buckets)``, so the serving layer's exact
nearest-rank percentiles and the exposition's bucket counts come from one
sample list instead of two drifting copies.

A module-level default registry (:func:`get_registry`) gives library code —
index builds, standalone services — a process-wide place to emit without
plumbing; components that need isolation (each network server, tests)
construct their own registry and pass it down.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
]

#: Default histogram bucket upper bounds (seconds): sub-millisecond to 10s,
#: roughly geometric — wide enough for both engine scans and request RTTs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_metric_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(
            f"invalid metric name {name!r}: use [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render without a fraction."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class Counter:
    """A monotonically increasing value (one labeled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        amount = float(amount)
        if amount < 0:
            raise ValueError(f"counters only increase, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one labeled child of a family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram child: cumulative ``le`` counts, sum, count.

    Either self-contained (observations update internal bucket counts) or
    **backed** by a :class:`~repro.utils.timer.LatencyStats` via
    :meth:`bind` — then observations delegate to ``stats.record`` and the
    snapshot is computed from ``stats.summary(buckets)``, so exact
    percentiles (service JSON) and bucket counts (Prometheus) share one
    sample list.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count", "_backing")

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]) -> None:
        edges = tuple(float(edge) for edge in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"buckets must be a non-empty strictly increasing sequence, "
                f"got {buckets!r}"
            )
        self._lock = lock
        self.buckets = edges
        self._counts = [0] * len(edges)
        self._sum = 0.0
        self._count = 0
        self._backing = None

    def bind(self, stats) -> "Histogram":
        """Back this histogram by a ``LatencyStats``-compatible accumulator.

        ``stats`` must expose ``record(seconds)`` and
        ``summary(buckets) -> {"buckets": [(le, n)], "count": int, "sum": float}``.
        Re-binding replaces the previous backing (last binder wins — the
        network server re-binds per-tenant accumulators it owns).
        """
        with self._lock:
            self._backing = stats
        return self

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            backing = self._backing
            if backing is None:
                position = bisect.bisect_left(self.buckets, value)
                if position < len(self._counts):
                    self._counts[position] += 1
                self._sum += value
                self._count += 1
                return
        backing.record(value)

    def snapshot(self) -> Dict[str, object]:
        """Cumulative ``(le, count)`` pairs plus total count and sum."""
        with self._lock:
            backing = self._backing
            if backing is None:
                cumulative = []
                running = 0
                for edge, count in zip(self.buckets, self._counts):
                    running += count
                    cumulative.append((edge, running))
                return {
                    "buckets": cumulative,
                    "count": self._count,
                    "sum": self._sum,
                }
        return backing.summary(self.buckets)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one named metric, keyed by their label values.

    A family with no labels proxies its single anonymous child, so
    ``registry.counter("x_total").inc()`` works without a ``labels()`` hop.
    """

    __slots__ = (
        "kind", "name", "help", "label_names", "buckets", "_lock", "_children"
    )

    def __init__(
        self,
        kind: str,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.kind = kind
        self.name = _check_metric_name(name)
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._lock = lock
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: object):
        """Get-or-create the child for one label-value combination."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self._lock, self.buckets)
                else:
                    child = _KINDS[self.kind](self._lock)
                self._children[key] = child
            return child

    # -- no-label convenience proxies ---------------------------------- #
    def _solo(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "call .labels(...) first"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def bind(self, stats):
        return self._solo().bind(stats)

    @property
    def value(self) -> float:
        return self._solo().value

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Children sorted by label values (stable export order)."""
        with self._lock:
            return sorted(self._children.items())

    def __repr__(self) -> str:
        return (
            f"MetricFamily({self.kind} {self.name!r}, "
            f"labels={self.label_names}, children={len(self._children)})"
        )


class MetricsRegistry:
    """Thread-safe home of every metric family; one lock, consistent cuts.

    All children of all families share the registry's single lock: a
    mutation anywhere and a snapshot/exposition pass are mutually exclusive,
    which is what makes every export an atomic cut.  The instruments are a
    few dict/float operations under that lock — far cheaper than the engine
    work they count — so the shared lock is not a throughput concern at
    serving scale.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------ #
    # registration (get-or-create)
    # ------------------------------------------------------------------ #
    def _family(
        self,
        kind: str,
        name: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        label_names = tuple(str(label) for label in labels)
        bucket_edges = tuple(float(b) for b in buckets) if buckets else None
        if kind == "histogram" and (
            not bucket_edges or list(bucket_edges) != sorted(set(bucket_edges))
        ):
            # Children are created lazily on labels(); validate here so a
            # bad registration fails at the registration site, not later.
            raise ValueError(
                f"buckets must be a non-empty strictly increasing sequence, "
                f"got {buckets!r}"
            )
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.label_names}; "
                        f"conflicting re-registration as {kind} "
                        f"with labels {label_names}"
                    )
                if kind == "histogram" and bucket_edges != family.buckets:
                    raise ValueError(
                        f"histogram {name!r} already registered with buckets "
                        f"{family.buckets}; conflicting buckets {bucket_edges}"
                    )
                return family
            family = MetricFamily(
                kind, name, help, label_names, self._lock, bucket_edges
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._family("counter", name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._family("histogram", name, help, labels, buckets)

    def families(self) -> List[MetricFamily]:
        """All registered families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every family (one consistent cut)."""
        payload: Dict[str, object] = {}
        for family in self.families():
            samples = []
            for key, child in family.children():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    snap = child.snapshot()
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": [list(pair) for pair in snap["buckets"]],
                            "count": snap["count"],
                            "sum": snap["sum"],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            payload[family.name] = {
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": samples,
            }
        return payload

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4) of the whole registry."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                pairs = [
                    f'{name}="{_escape_label_value(value)}"'
                    for name, value in zip(family.label_names, key)
                ]
                if family.kind == "histogram":
                    snap = child.snapshot()
                    for edge, count in snap["buckets"]:
                        bucket_pairs = pairs + [f'le="{_format_value(edge)}"']
                        lines.append(
                            f"{family.name}_bucket"
                            f"{{{','.join(bucket_pairs)}}} {count}"
                        )
                    inf_pairs = pairs + ['le="+Inf"']
                    lines.append(
                        f"{family.name}_bucket"
                        f"{{{','.join(inf_pairs)}}} {snap['count']}"
                    )
                    suffix = f"{{{','.join(pairs)}}}" if pairs else ""
                    lines.append(
                        f"{family.name}_sum{suffix} "
                        f"{_format_value(snap['sum'])}"
                    )
                    lines.append(f"{family.name}_count{suffix} {snap['count']}")
                else:
                    suffix = f"{{{','.join(pairs)}}}" if pairs else ""
                    lines.append(
                        f"{family.name}{suffix} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        with self._lock:
            return f"MetricsRegistry(n_families={len(self._families)})"


#: The process-wide default registry: library-level emissions (index builds,
#: standalone services) land here unless an explicit registry is passed.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY
