"""Power-method computation of RWR proximity vectors (Section 2.1, Eq. 1-2).

The proximity vector of node ``u`` solves the linear system

    p_u = (1 - alpha) * A @ p_u + alpha * e_u

whose fixed point is approached by iterating the right-hand side.  Because
``A`` is column-stochastic and ``alpha > 0``, the iteration contracts with
rate ``1 - alpha`` in L1 (same argument as Theorem 2(b) of the paper), so the
number of iterations needed for tolerance ``eps`` is ``log(eps/alpha) /
log(1-alpha)``.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Optional

import numpy as np
import scipy.sparse as sp

from .._validation import check_node_index, check_positive_float, check_probability
from ..exceptions import ConvergenceError

#: The paper's default restart probability.
DEFAULT_ALPHA = 0.15
#: The paper's default convergence tolerance for exact computations.
DEFAULT_TOLERANCE = 1e-10


@dataclass(frozen=True)
class PowerMethodResult:
    """Outcome of a power-method run.

    Attributes
    ----------
    vector:
        The converged proximity vector.
    iterations:
        Number of iterations performed.
    residual:
        L1 difference between the last two iterates.
    converged:
        Whether ``residual`` dropped below the requested tolerance.
    """

    vector: np.ndarray
    iterations: int
    residual: float
    converged: bool


def expected_iterations(alpha: float, tolerance: float) -> int:
    """Iteration bound ``log(eps/alpha) / log(1-alpha)`` from Theorem 2(c)."""
    alpha = check_probability(alpha, "alpha")
    tolerance = check_positive_float(tolerance, "tolerance")
    if tolerance >= alpha:
        return 1
    return int(math.ceil(math.log(tolerance / alpha) / math.log(1.0 - alpha)))


def proximity_vector(
    transition: sp.spmatrix,
    source: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: Optional[int] = None,
    raise_on_failure: bool = True,
) -> PowerMethodResult:
    """Compute ``p_source`` — proximities *from* ``source`` to every node.

    Parameters
    ----------
    transition:
        Column-stochastic transition matrix ``A``.
    source:
        The restart node ``u``.
    alpha:
        Restart probability (paper default 0.15).
    tolerance:
        L1 convergence threshold between successive iterates.
    max_iterations:
        Hard iteration cap; defaults to twice the theoretical bound.
    raise_on_failure:
        When ``True`` a :class:`ConvergenceError` is raised if the cap is hit
        before convergence; otherwise the non-converged result is returned.
    """
    alpha = check_probability(alpha, "alpha")
    tolerance = check_positive_float(tolerance, "tolerance")
    n = transition.shape[0]
    source = check_node_index(source, n, "source")
    if max_iterations is None:
        max_iterations = 2 * expected_iterations(alpha, tolerance) + 10

    restart = np.zeros(n, dtype=np.float64)
    restart[source] = alpha
    current = restart / alpha  # start from e_u, any stochastic start works
    matrix = transition.tocsr()
    residual = math.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        nxt = (1.0 - alpha) * (matrix @ current) + restart
        residual = float(np.abs(nxt - current).sum())
        current = nxt
        if residual < tolerance:
            return PowerMethodResult(current, iterations, residual, True)
    if raise_on_failure:
        raise ConvergenceError(
            f"power method did not converge in {max_iterations} iterations "
            f"(residual {residual:.3e} > tolerance {tolerance:.3e})",
            iterations,
            residual,
        )
    return PowerMethodResult(current, iterations, residual, False)


def proximity_column(
    transition: sp.spmatrix,
    source: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """Convenience wrapper returning just the converged vector ``p_source``."""
    return proximity_vector(transition, source, alpha=alpha, tolerance=tolerance).vector


def proximity_matrix(
    transition: sp.spmatrix,
    *,
    alpha: float = DEFAULT_ALPHA,
    tolerance: float = DEFAULT_TOLERANCE,
    nodes: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute the full (dense) proximity matrix ``P`` column by column.

    This is the brute-force building block (Section 3); it is exposed mainly
    for the IBF/FBF baselines and for validating the index on small graphs.
    ``nodes`` restricts computation to a subset of columns (returned in the
    same order), which the baselines use to bound memory.

    Warning: the result is a dense ``n x n`` array — only call this on small
    graphs.
    """
    n = transition.shape[0]
    if nodes is None:
        columns = np.arange(n)
    else:
        columns = np.asarray(nodes, dtype=np.int64)
    result = np.zeros((n, columns.size), dtype=np.float64)
    for position, node in enumerate(columns):
        result[:, position] = proximity_vector(
            transition, int(node), alpha=alpha, tolerance=tolerance
        ).vector
    return result
