"""RWR proximity substrate: exact and approximate proximity computation.

This package implements every proximity-computation primitive the paper
builds on or compares against:

* :mod:`power_method` — the iterative Power Method for a single proximity
  vector (a column of ``P``) and for the full proximity matrix;
* :mod:`linear_solver` — direct sparse solves and the LU factorisation used by
  K-dash-style exact methods;
* :mod:`bca` — Berkhin's classic Bookmark Coloring Algorithm and the
  Andersen-style push variant (single-node propagation);
* :mod:`monte_carlo` — MC End Point / MC Complete Path estimators;
* :mod:`pagerank` — PageRank and personalised PageRank via the same machinery.
"""

from .bca import BCAResult, bca_proximity_vector, push_proximity_vector
from .linear_solver import (
    proximity_vector_direct,
    proximity_matrix_direct,
    ProximityLU,
)
from .monte_carlo import mc_end_point, mc_complete_path
from .pagerank import pagerank, personalized_pagerank
from .power_method import (
    proximity_vector,
    proximity_matrix,
    proximity_column,
    PowerMethodResult,
)
from .proximity import ProximityMatrix, top_k_of_column

__all__ = [
    "proximity_vector",
    "proximity_matrix",
    "proximity_column",
    "PowerMethodResult",
    "proximity_vector_direct",
    "proximity_matrix_direct",
    "ProximityLU",
    "BCAResult",
    "bca_proximity_vector",
    "push_proximity_vector",
    "mc_end_point",
    "mc_complete_path",
    "pagerank",
    "personalized_pagerank",
    "ProximityMatrix",
    "top_k_of_column",
]
