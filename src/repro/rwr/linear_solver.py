"""Direct (non-iterative) proximity computation via sparse linear algebra.

The proximity matrix has the closed form ``P = alpha * (I - (1-alpha) A)^{-1}``
(Eq. 2).  Solving the system directly with a sparse LU factorisation is the
strategy behind the K-dash top-k algorithm the paper compares against
(Fujiwara et al., PVLDB 2012): factor once offline, then obtain any column of
``P`` with two triangular solves.  We expose the factorisation as
:class:`ProximityLU` and use it both as a top-k baseline substrate
(:mod:`repro.topk.kdash`) and as an exactness oracle in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .._validation import check_node_index, check_probability
from .power_method import DEFAULT_ALPHA


class ProximityLU:
    """Sparse LU factorisation of ``(I - (1-alpha) A)``.

    Provides exact proximity columns (``p_u``) and rows (``p_{q,*}``) without
    materialising the full matrix.  The row solve uses the transposed system,
    mirroring the PMPN observation of Section 4.2.1.
    """

    def __init__(self, transition: sp.spmatrix, *, alpha: float = DEFAULT_ALPHA) -> None:
        self.alpha = check_probability(alpha, "alpha")
        n = transition.shape[0]
        if transition.shape[0] != transition.shape[1]:
            raise ValueError("transition matrix must be square")
        self.n_nodes = n
        system = sp.identity(n, format="csc") - (1.0 - self.alpha) * transition.tocsc()
        self._lu = spla.splu(system.tocsc())
        self._lu_transpose: Optional[spla.SuperLU] = None
        self._system_transpose = system.T.tocsc()

    def column(self, source: int) -> np.ndarray:
        """Exact proximity vector ``p_source`` (column of ``P``)."""
        source = check_node_index(source, self.n_nodes, "source")
        rhs = np.zeros(self.n_nodes, dtype=np.float64)
        rhs[source] = self.alpha
        return self._lu.solve(rhs)

    def row(self, target: int) -> np.ndarray:
        """Exact proximities from every node to ``target`` (row of ``P``)."""
        target = check_node_index(target, self.n_nodes, "target")
        if self._lu_transpose is None:
            self._lu_transpose = spla.splu(self._system_transpose)
        rhs = np.zeros(self.n_nodes, dtype=np.float64)
        rhs[target] = self.alpha
        return self._lu_transpose.solve(rhs)

    def matrix(self) -> np.ndarray:
        """Dense exact proximity matrix ``P`` (small graphs only)."""
        identity = np.eye(self.n_nodes) * self.alpha
        return self._lu.solve(identity)


def proximity_vector_direct(
    transition: sp.spmatrix, source: int, *, alpha: float = DEFAULT_ALPHA
) -> np.ndarray:
    """One-off exact proximity vector using a sparse direct solve."""
    return ProximityLU(transition, alpha=alpha).column(source)


def proximity_matrix_direct(
    transition: sp.spmatrix, *, alpha: float = DEFAULT_ALPHA
) -> np.ndarray:
    """One-off exact dense proximity matrix (small graphs only)."""
    return ProximityLU(transition, alpha=alpha).matrix()
