"""Monte Carlo estimation of RWR proximities (Fogaras et al. / Avrachenkov et al.).

The paper's related-work section (6.2) describes two Monte Carlo estimators
for ``p_u``:

* **MC End Point** — run ``walks`` independent random walks from ``u``, each
  terminating with probability ``alpha`` at every step; estimate ``p_u(v)``
  as the fraction of walks that *end* at ``v``.
* **MC Complete Path** — estimate ``p_u(v)`` from the total number of visits
  to ``v`` along the walks, scaled by ``alpha / walks``.

Both are fast but only approximate; critically they are **not** lower bounds,
which is why the paper's index cannot use them (they appear here as baselines
and for the approximate top-k comparison).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .._validation import check_node_index, check_positive_int, check_probability
from ..utils.rng import SeedLike, ensure_rng
from .power_method import DEFAULT_ALPHA


def _sample_walks(
    transition: sp.csc_matrix,
    source: int,
    walks: int,
    alpha: float,
    rng: np.random.Generator,
    *,
    count_visits: bool,
    max_length: int = 1000,
) -> np.ndarray:
    """Simulate restart-terminated walks, counting end points or all visits."""
    n = transition.shape[0]
    counts = np.zeros(n, dtype=np.float64)
    indptr, indices, data = transition.indptr, transition.indices, transition.data
    for _ in range(walks):
        node = source
        if count_visits:
            counts[node] += 1.0
        for _ in range(max_length):
            if rng.random() < alpha:
                break
            start, stop = indptr[node], indptr[node + 1]
            if start == stop:
                break  # dangling: treat as an immediate restart
            weights = data[start:stop]
            node = int(rng.choice(indices[start:stop], p=weights / weights.sum()))
            if count_visits:
                counts[node] += 1.0
        if not count_visits:
            counts[node] += 1.0
    return counts


def mc_end_point(
    transition: sp.spmatrix,
    source: int,
    *,
    walks: int = 2000,
    alpha: float = DEFAULT_ALPHA,
    seed: SeedLike = None,
) -> np.ndarray:
    """MC End Point estimate of ``p_source``: fraction of walks ending at each node."""
    alpha = check_probability(alpha, "alpha")
    walks = check_positive_int(walks, "walks")
    n = transition.shape[0]
    source = check_node_index(source, n, "source")
    rng = ensure_rng(seed)
    counts = _sample_walks(
        transition.tocsc(), source, walks, alpha, rng, count_visits=False
    )
    return counts / walks


def mc_complete_path(
    transition: sp.spmatrix,
    source: int,
    *,
    walks: int = 2000,
    alpha: float = DEFAULT_ALPHA,
    seed: SeedLike = None,
) -> np.ndarray:
    """MC Complete Path estimate: visit counts scaled by ``alpha / walks``."""
    alpha = check_probability(alpha, "alpha")
    walks = check_positive_int(walks, "walks")
    n = transition.shape[0]
    source = check_node_index(source, n, "source")
    rng = ensure_rng(seed)
    counts = _sample_walks(
        transition.tocsc(), source, walks, alpha, rng, count_visits=True
    )
    return counts * alpha / walks
