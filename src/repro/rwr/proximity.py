"""A thin wrapper over a fully materialised proximity matrix.

Only the brute-force baselines (IBF) and small-graph validation use this:
the whole point of the paper is to *avoid* computing ``P``.  The wrapper adds
convenient top-k / reverse-top-k accessors and size accounting so that the
Figure 8 / Table 2 comparisons can report the storage cost of the naive
approach.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .._validation import check_k, check_node_index
from ..utils.sparsetools import dense_top_k
from .power_method import DEFAULT_ALPHA, DEFAULT_TOLERANCE, proximity_matrix


class ProximityMatrix:
    """Dense proximity matrix ``P`` with top-k helpers.

    ``P[:, u]`` is the proximity vector of ``u`` (proximities *from* ``u``),
    matching the paper's column convention.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"proximity matrix must be square, got shape {matrix.shape}")
        self._matrix = matrix

    @classmethod
    def from_transition(
        cls,
        transition: sp.spmatrix,
        *,
        alpha: float = DEFAULT_ALPHA,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> "ProximityMatrix":
        """Compute ``P`` column-by-column with the power method."""
        return cls(proximity_matrix(transition, alpha=alpha, tolerance=tolerance))

    @property
    def n_nodes(self) -> int:
        """Number of nodes (matrix dimension)."""
        return self._matrix.shape[0]

    @property
    def values(self) -> np.ndarray:
        """The underlying dense array (row ``v``, column ``u`` = ``p_u(v)``)."""
        return self._matrix

    def column(self, node: int) -> np.ndarray:
        """Proximity vector of ``node`` (proximities from ``node``)."""
        node = check_node_index(node, self.n_nodes)
        return self._matrix[:, node]

    def row(self, node: int) -> np.ndarray:
        """Proximities from every node to ``node``."""
        node = check_node_index(node, self.n_nodes)
        return self._matrix[node, :]

    def proximity(self, source: int, target: int) -> float:
        """Proximity from ``source`` to ``target`` (``p_source(target)``)."""
        source = check_node_index(source, self.n_nodes, "source")
        target = check_node_index(target, self.n_nodes, "target")
        return float(self._matrix[target, source])

    def top_k(self, node: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Indices and values of the ``k`` nodes closest *from* ``node``."""
        k = check_k(k, self.n_nodes)
        return dense_top_k(self.column(node), k)

    def kth_value(self, node: int, k: int) -> float:
        """The k-th largest proximity value in ``node``'s proximity vector."""
        _, values = self.top_k(node, k)
        return float(values[-1]) if values.size else 0.0

    def reverse_top_k(self, query: int, k: int) -> np.ndarray:
        """Exact reverse top-k answer by scanning every column (ground truth)."""
        query = check_node_index(query, self.n_nodes, "query")
        k = check_k(k, self.n_nodes)
        result = [
            node
            for node in range(self.n_nodes)
            if self.proximity(node, query) >= self.kth_value(node, k) - 1e-15
        ]
        return np.asarray(result, dtype=np.int64)

    def nbytes(self) -> int:
        """Memory footprint of the dense matrix in bytes."""
        return int(self._matrix.nbytes)


def top_k_of_column(vector: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k indices and values of a dense proximity vector (descending)."""
    return dense_top_k(np.asarray(vector), k)
