"""Classic Bookmark Coloring Algorithm (Berkhin 2006) and the push variant.

Section 2.2 of the paper reviews BCA: a unit of "ink" is injected at the
start node ``u``; every node that receives ink retains an ``alpha`` fraction
and forwards the rest uniformly to its out-neighbours.  The retained-ink
vector converges to the proximity vector ``p_u`` and — crucially for the
paper's index — is a *monotonically increasing lower bound* of it at every
intermediate step (Proposition 1).

Two propagation disciplines from the literature are implemented:

* :func:`bca_proximity_vector` — Berkhin's original rule: at each step pick
  the single node holding the **largest** residue;
* :func:`push_proximity_vector` — the Andersen et al. (FOCS 2006) rule: push
  any node whose residue exceeds a threshold ``eta``.

The *batched* adaptation used to build the paper's index (propagating every
node above ``eta`` at once, Eq. 8-9) lives in :mod:`repro.core.lbi` because it
is part of the paper's contribution rather than prior work.
"""

from __future__ import annotations

from dataclasses import dataclass
import heapq
import itertools
from typing import Optional

import numpy as np
import scipy.sparse as sp

from .._validation import (
    check_node_index,
    check_positive_float,
    check_positive_int,
    check_probability,
)
from .power_method import DEFAULT_ALPHA


@dataclass
class BCAResult:
    """State of a (possibly early-terminated) BCA run.

    Attributes
    ----------
    retained:
        Ink retained at each node so far — a lower bound of ``p_u``.
    residual:
        Ink still waiting to be propagated at each node.
    iterations:
        Number of push operations (or batched iterations) performed.
    """

    retained: np.ndarray
    residual: np.ndarray
    iterations: int

    @property
    def residual_mass(self) -> float:
        """Total undistributed ink ``||r||_1``."""
        return float(self.residual.sum())

    @property
    def is_exact(self) -> bool:
        """Whether the retained ink equals the exact proximity vector."""
        return self.residual_mass <= 1e-15


def bca_proximity_vector(
    transition: sp.spmatrix,
    source: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    residue_threshold: float = 1e-8,
    max_pushes: Optional[int] = None,
) -> BCAResult:
    """Berkhin's BCA: repeatedly push the node with the largest residue.

    Terminates when total residue drops below ``residue_threshold`` or the
    push budget is exhausted.  The retained vector is always a lower bound of
    the exact proximity vector.
    """
    alpha = check_probability(alpha, "alpha")
    residue_threshold = check_positive_float(residue_threshold, "residue_threshold")
    n = transition.shape[0]
    source = check_node_index(source, n, "source")
    if max_pushes is None:
        max_pushes = 50 * n
    max_pushes = check_positive_int(max_pushes, "max_pushes")

    matrix = transition.tocsc()
    retained = np.zeros(n, dtype=np.float64)
    residual = np.zeros(n, dtype=np.float64)
    residual[source] = 1.0
    total_residual = 1.0

    # Lazy-deletion max-heap keyed by (-residue, sequence, node).  Every
    # residue update pushes a fresh entry with a new sequence number and
    # records it as the node's latest; a popped entry whose sequence is not
    # the latest is stale and simply skipped (its node already has a newer,
    # accurately-keyed entry in the heap).  Identifying staleness by value
    # (the old ``np.isclose(rtol=0.5)`` heuristic) could both drop fresh
    # entries and process stale ones out of max-residue order whenever a
    # residue drifted by around half between push and pop.
    counter = itertools.count()
    latest: dict[int, int] = {source: next(counter)}
    heap: list[tuple[float, int, int]] = [(-1.0, latest[source], source)]
    pushes = 0
    while total_residual > residue_threshold and heap and pushes < max_pushes:
        _, sequence, node = heapq.heappop(heap)
        if latest.get(node) != sequence:
            continue
        del latest[node]
        amount = residual[node]
        if amount <= 0:
            continue
        pushes += 1
        residual[node] = 0.0
        retained[node] += alpha * amount
        total_residual -= amount
        start, stop = matrix.indptr[node], matrix.indptr[node + 1]
        neighbors = matrix.indices[start:stop]
        shares = (1.0 - alpha) * amount * matrix.data[start:stop]
        if neighbors.size:
            residual[neighbors] += shares
            total_residual += float(shares.sum())
            for neighbor in neighbors:
                neighbor = int(neighbor)
                sequence = next(counter)
                latest[neighbor] = sequence
                heapq.heappush(heap, (-residual[neighbor], sequence, neighbor))
    return BCAResult(retained, residual, pushes)


def push_proximity_vector(
    transition: sp.spmatrix,
    source: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    propagation_threshold: float = 1e-6,
    max_pushes: Optional[int] = None,
) -> BCAResult:
    """Andersen-style push: process any node whose residue exceeds ``eta``.

    Terminates when no node holds at least ``propagation_threshold`` residue.
    The result is a sparse lower-bound approximation of ``p_source`` with
    total residue bounded by ``eta * n`` in the worst case.
    """
    alpha = check_probability(alpha, "alpha")
    eta = check_positive_float(propagation_threshold, "propagation_threshold")
    n = transition.shape[0]
    source = check_node_index(source, n, "source")
    if max_pushes is None:
        max_pushes = 100 * n
    max_pushes = check_positive_int(max_pushes, "max_pushes")

    matrix = transition.tocsc()
    retained = np.zeros(n, dtype=np.float64)
    residual = np.zeros(n, dtype=np.float64)
    residual[source] = 1.0
    queue: list[int] = [source]
    in_queue = np.zeros(n, dtype=bool)
    in_queue[source] = True
    pushes = 0
    while queue and pushes < max_pushes:
        node = queue.pop()
        in_queue[node] = False
        amount = residual[node]
        if amount < eta:
            continue
        pushes += 1
        residual[node] = 0.0
        retained[node] += alpha * amount
        start, stop = matrix.indptr[node], matrix.indptr[node + 1]
        neighbors = matrix.indices[start:stop]
        shares = (1.0 - alpha) * amount * matrix.data[start:stop]
        residual[neighbors] += shares
        for neighbor in neighbors:
            if residual[neighbor] >= eta and not in_queue[neighbor]:
                queue.append(int(neighbor))
                in_queue[neighbor] = True
    return BCAResult(retained, residual, pushes)
