"""PageRank and personalised PageRank on top of the RWR machinery (Eq. 3).

The paper notes that the proximity matrix ``P`` also yields PageRank
(``pr = P e / n``) and any personalised PageRank (``ppr_v = P v``).  These
functions compute both directly by power iteration on the preference vector,
which is equivalent and avoids materialising ``P``.  They are used by the
spam-detection application (PageRank contributions) and serve as an
independent cross-check of the proximity solvers in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from .._validation import check_positive_float, check_probability
from ..exceptions import ConvergenceError, InvalidParameterError
from .power_method import DEFAULT_ALPHA, DEFAULT_TOLERANCE, expected_iterations


def personalized_pagerank(
    transition: sp.spmatrix,
    preference: np.ndarray,
    *,
    alpha: float = DEFAULT_ALPHA,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: Optional[int] = None,
) -> np.ndarray:
    """Personalised PageRank for an arbitrary preference distribution.

    Solves ``x = (1-alpha) A x + alpha v`` where ``v`` is the (normalised)
    preference vector.  With ``v = e_u`` this equals the proximity vector of
    ``u``; with ``v = e/n`` it equals global PageRank.
    """
    alpha = check_probability(alpha, "alpha")
    tolerance = check_positive_float(tolerance, "tolerance")
    n = transition.shape[0]
    vector = np.asarray(preference, dtype=np.float64).ravel()
    if vector.size != n:
        raise InvalidParameterError(
            f"preference vector has length {vector.size}, expected {n}"
        )
    if vector.min() < 0:
        raise InvalidParameterError("preference vector must be non-negative")
    total = vector.sum()
    if total <= 0:
        raise InvalidParameterError("preference vector must have positive mass")
    vector = vector / total

    if max_iterations is None:
        max_iterations = 2 * expected_iterations(alpha, tolerance) + 10
    matrix = transition.tocsr()
    current = vector.copy()
    restart = alpha * vector
    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        nxt = (1.0 - alpha) * (matrix @ current) + restart
        residual = float(np.abs(nxt - current).sum())
        current = nxt
        if residual < tolerance:
            return current
    raise ConvergenceError(
        f"personalised PageRank did not converge in {max_iterations} iterations",
        max_iterations,
        residual,
    )


def pagerank(
    transition: sp.spmatrix,
    *,
    alpha: float = DEFAULT_ALPHA,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """Global PageRank: personalised PageRank with the uniform preference ``e/n``."""
    n = transition.shape[0]
    uniform = np.full(n, 1.0 / n)
    return personalized_pagerank(transition, uniform, alpha=alpha, tolerance=tolerance)
