"""The finding model: rule descriptors, findings, stable fingerprints.

A finding's **fingerprint** is what the baseline keys on, so it must survive
unrelated edits to the same file: it hashes the rule id, the repo-relative
path, the enclosing symbol (``Class.method`` / function / class name) and the
message — but never the line number.  Two findings that would collide (same
symbol, same message — e.g. the same guarded attribute read twice in one
method) are disambiguated by an occurrence ordinal assigned in line order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import hashlib
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Rule:
    """One checker's identity card (id, summary, and the invariant's origin)."""

    id: str
    name: str
    summary: str

    def __str__(self) -> str:
        return f"{self.id} ({self.name})"


RL001 = Rule(
    "RL001",
    "lock-discipline",
    "guarded attributes must be read/written under their declared lock",
)
RL002 = Rule(
    "RL002",
    "lock-order",
    "lock acquisition order must be acyclic across the codebase",
)
RL003 = Rule(
    "RL003",
    "memmap-immutability",
    "memory-mapped layout arrays must never be mutated in place",
)
RL004 = Rule(
    "RL004",
    "asyncio-blocking",
    "async def bodies in repro.net must not call blocking operations",
)
RL005 = Rule(
    "RL005",
    "pickle-safety",
    "classes holding locks/pools/workspaces/memmaps must drop them in "
    "__getstate__",
)

ALL_RULES: Dict[str, Rule] = {
    rule.id: rule for rule in (RL001, RL002, RL003, RL004, RL005)
}


@dataclass
class Finding:
    """One rule violation, anchored to a file/line and a code symbol.

    Attributes
    ----------
    rule_id:
        ``RL001`` … ``RL005``.
    path:
        Repo-relative path of the offending file (posix separators).
    line / col:
        1-indexed line and 0-indexed column of the offending node.
    symbol:
        The enclosing code object (``Class.method``, ``function``, or
        ``Class``) — part of the fingerprint, so baselines survive line
        drift.
    message:
        What is wrong, in one sentence.
    hint:
        How to fix it (or how to suppress it with a reason).
    """

    rule_id: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    hint: str = ""
    ordinal: int = 0
    baselined: bool = False
    baseline_reason: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        core = "|".join(
            (self.rule_id, self.path, self.symbol, self.message, str(self.ordinal))
        )
        return hashlib.sha1(core.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }
        if self.baseline_reason is not None:
            data["baseline_reason"] = self.baseline_reason
        return data

    def render(self) -> str:
        mark = " [baselined]" if self.baselined else ""
        text = (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
            f"[{self.symbol}] {self.message}{mark}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def assign_ordinals(findings: List[Finding]) -> List[Finding]:
    """Disambiguate findings that share (rule, path, symbol, message).

    Ordinals are assigned in (line, col) order so the n-th identical finding
    keeps the n-th fingerprint even when unrelated lines shift.
    """
    findings = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
    seen: Dict[str, int] = {}
    for finding in findings:
        key = "|".join((finding.rule_id, finding.path, finding.symbol, finding.message))
        finding.ordinal = seen.get(key, 0)
        seen[key] = finding.ordinal + 1
    return findings


@dataclass
class RuleStats:
    """Per-rule counters for the summary block of a report."""

    total: int = 0
    baselined: int = 0
    suppressed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "total": self.total,
            "baselined": self.baselined,
            "suppressed": self.suppressed,
        }


@dataclass
class Report:
    """Everything one analysis run produced (findings + bookkeeping)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    expired_baseline: List[str] = field(default_factory=list)
