"""Inline suppression comments: ``# reprolint: disable=RULE(reason)``.

A suppression must name the rule **and** carry a non-empty reason — a bare
``disable=RL001`` is a hard error, because an unjustified suppression is
exactly the silent decay this tool exists to stop.  Several rules can share
one comment: ``# reprolint: disable=RL001(why), RL002(other why)``.

A suppression applies to:

* the physical line it sits on;
* the whole statement when it sits on the statement's first line (so one
  comment on a multi-item ``with`` covers every finding inside the block —
  the id-ordered two-lock merge in ``utils/timer.py`` is the canonical
  user);
* the following line, when the comment stands alone on its own line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

from .loader import ModuleInfo

_MARKER = re.compile(r"#\s*reprolint:\s*disable=(.*)$")
_ENTRY = re.compile(r"\s*(RL\d{3})\s*\(([^()]*)\)\s*(?:,|$)")


class SuppressionError(ValueError):
    """A malformed suppression comment (missing or empty reason)."""


@dataclass(frozen=True)
class Suppression:
    rule_id: str
    reason: str
    line: int


def _comment_tokens(module: ModuleInfo) -> List[Tuple[int, str]]:
    """(line, text) for every real comment token — docstrings that merely
    *mention* the suppression syntax must not parse as suppressions."""
    source = "\n".join(module.lines) + "\n"
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except tokenize.TokenizeError:  # pragma: no cover - the file parsed as AST
        pass
    return comments


def parse_suppressions(module: ModuleInfo) -> Dict[int, Dict[str, Suppression]]:
    """Scan a module's comments for suppression markers, keyed by line."""
    found: Dict[int, Dict[str, Suppression]] = {}
    for lineno, text in _comment_tokens(module):
        match = _MARKER.search(text)
        if match is None:
            if "reprolint" in text and "disable" in text:
                raise SuppressionError(
                    f"{module.rel_path}:{lineno}: malformed reprolint comment: "
                    f"{text.strip()!r}"
                )
            continue
        spec = match.group(1).strip()
        entries = list(_ENTRY.finditer(spec))
        consumed = "".join(entry.group(0) for entry in entries)
        if not entries or consumed.replace(" ", "") != spec.replace(" ", ""):
            raise SuppressionError(
                f"{module.rel_path}:{lineno}: suppression must be "
                f"'RLnnn(reason)[, RLnnn(reason)...]', got {spec!r}"
            )
        per_rule: Dict[str, Suppression] = {}
        for entry in entries:
            rule_id, reason = entry.group(1), entry.group(2).strip()
            if not reason:
                raise SuppressionError(
                    f"{module.rel_path}:{lineno}: suppression of {rule_id} "
                    "must carry a reason: # reprolint: disable="
                    f"{rule_id}(<why this is safe>)"
                )
            per_rule[rule_id] = Suppression(rule_id, reason, lineno)
        found[lineno] = per_rule
    return found


def effective_lines(module: ModuleInfo) -> Dict[Tuple[int, str], Suppression]:
    """Expand comment lines to every line each suppression covers."""
    per_line = parse_suppressions(module)
    covered: Dict[Tuple[int, str], Suppression] = {}
    if not per_line:
        return covered
    spans = _statement_spans(module)
    for lineno, rules in per_line.items():
        lines: Set[int] = {lineno}
        # A standalone comment (nothing but the comment on its line) also
        # covers the next line.
        text = module.lines[lineno - 1]
        if text.lstrip().startswith("#"):
            lines.add(lineno + 1)
        # A comment on a statement's first line covers the statement's span.
        for start, stop in spans.get(lineno, []):
            lines.update(range(start, stop + 1))
        for rule_id, suppression in rules.items():
            for line in lines:
                covered.setdefault((line, rule_id), suppression)
    return covered


def _statement_spans(module: ModuleInfo) -> Dict[int, List[Tuple[int, int]]]:
    """Map statement header lines to (start, end) line spans.

    Only simple statements and ``with`` blocks expand — covering a whole
    function or class from one comment would hide far more than anyone
    intends.
    """
    compound = (
        ast.FunctionDef,
        ast.AsyncFunctionDef,
        ast.ClassDef,
        ast.If,
        ast.For,
        ast.AsyncFor,
        ast.While,
        ast.Try,
    )
    spans: Dict[int, List[Tuple[int, int]]] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.stmt) or isinstance(node, compound):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None:
            continue
        spans.setdefault(node.lineno, []).append((node.lineno, end))
    return spans
