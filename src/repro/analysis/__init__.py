"""``reprolint`` — repo-specific AST invariant checkers.

The engine layers that keep this codebase fast are held together by
invariants that ordinary linters cannot see: columnar views may only be
touched under the writer-preferring index lock, sealed memmap shard bytes
must never mutate (copy-on-write promotion only), coroutines in
``repro.net`` must never block the event loop, and every picklable engine
object must drop its locks/workspaces/memmaps in ``__getstate__``.  Each of
those rules was learned the hard way (the shard lazy-open race, the
two-lock merge deadlock) and is enforced here statically, so a violation
fails the tier-1 suite instead of waiting for a stress test to get lucky.

Rule catalogue
--------------
========  =============================================================
RL001     guarded attributes accessed outside their declared lock
RL002     lock-acquisition-order cycles (potential deadlocks)
RL003     in-place mutation of memory-mapped (sealed layout) arrays
RL004     blocking calls reachable from ``async def`` bodies in repro.net
RL005     unpicklable state (locks/pools/workspaces/memmaps) not dropped
          by ``__getstate__``
========  =============================================================

Run it as ``python -m repro.analysis [paths]``; see :mod:`repro.analysis.cli`
for output formats, rule selection, and the baseline workflow.  Inline
suppressions use ``# reprolint: disable=RL00X(reason)`` and always carry a
written justification.
"""

from .baseline import Baseline, BaselineEntry
from .engine import AnalysisProject, AnalysisResult, run_analysis
from .findings import ALL_RULES, Finding, Rule

__all__ = [
    "ALL_RULES",
    "AnalysisProject",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Rule",
    "run_analysis",
]
