"""Class index, attribute-type inference, and the project call graph.

Types are inferred only where the code states them outright:

* ``self.X = SomeClass(...)`` in any method of ``C`` types attribute ``X``
  of ``C`` as ``SomeClass`` (when ``SomeClass`` resolves to a class defined
  in the analyzed tree);
* ``x = SomeClass(...)`` types local ``x`` the same way inside one function.

Call sites then resolve in four steps — ``self.m()`` through the class (and
its repo-internal base chain), ``self.X.m()`` / ``x.m()`` through the
inferred attribute/local types, and bare ``f()`` through the module's
imports — and anything else stays *unresolved* rather than guessed.  The
reverse index (who calls method ``m``, under which held locks) is what lets
RL001 accept a helper method whose every caller holds the right lock, and
what RL002 walks to find cross-method lock-order cycles.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .contexts import iter_nodes_with_contexts
from .loader import ModuleInfo
from .scopes import Scope, build_import_table, function_scope, render


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # module.Class.method or module.func
    name: str
    module: ModuleInfo
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None  # simple class name when a method
    scope: Optional[Scope] = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


@dataclass
class ClassInfo:
    """One class definition plus what the index inferred about it."""

    name: str
    qualname: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> simple class name (from ``self.X = SomeClass(...)``)
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> factory symbol (from ``self.X = <factory>()``),
    #: e.g. ``_lock -> threading.Lock``.  Factories recorded from any method.
    attr_factories: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call: ``caller`` invokes ``callee`` at ``node``."""

    caller: FunctionInfo
    callee: FunctionInfo
    node: ast.Call
    held: Tuple[str, ...]


class ProjectIndex:
    """Cross-module index: classes, functions, scopes, and the call graph."""

    def __init__(self, modules: List[ModuleInfo]) -> None:
        self.modules = modules
        self.imports: Dict[str, Dict[str, str]] = {}
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.classes_by_qualname: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.module_functions: Dict[str, FunctionInfo] = {}
        for module in modules:
            self._index_module(module)
        for module in modules:
            self._infer_attr_types(module)
        self.calls: List[CallSite] = []
        self.callers_of: Dict[str, List[CallSite]] = {}
        for function in self.functions.values():
            self._index_calls(function)

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #
    def _index_module(self, module: ModuleInfo) -> None:
        table = build_import_table(module.tree, module.name)
        self.imports[module.name] = table
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module.name}.{node.name}",
                    name=node.name,
                    module=module,
                    node=node,
                )
                self.functions[info.qualname] = info
                self.module_functions[info.qualname] = info

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        table = self.imports[module.name]
        info = ClassInfo(
            name=node.name,
            qualname=f"{module.name}.{node.name}",
            module=module,
            node=node,
            bases=[
                rendered
                for base in node.bases
                if (rendered := render(base, Scope(imports=dict(table)))) is not None
            ],
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qualname=f"{info.qualname}.{item.name}",
                    name=item.name,
                    module=module,
                    node=item,
                    class_name=node.name,
                )
                info.methods[item.name] = method
                self.functions[method.qualname] = method
        self.classes.setdefault(node.name, []).append(info)
        self.classes_by_qualname[info.qualname] = info

    def _infer_attr_types(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            cls = self.classes_by_qualname[f"{module.name}.{node.name}"]
            for method in cls.methods.values():
                scope = self.scope_for(method)
                for stmt in ast.walk(method.node):
                    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                        continue
                    target = stmt.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if not isinstance(stmt.value, ast.Call):
                        continue
                    symbol = render(stmt.value.func, scope)
                    if symbol is None:
                        continue
                    cls.attr_factories.setdefault(target.attr, symbol)
                    simple = symbol.rsplit(".", 1)[-1]
                    if simple in self.classes:
                        cls.attr_types.setdefault(target.attr, simple)

    # ------------------------------------------------------------------ #
    # scopes
    # ------------------------------------------------------------------ #
    def scope_for(self, function: FunctionInfo) -> Scope:
        if function.scope is None:
            function.scope = function_scope(
                function.node, self.imports[function.module.name]
            )
        return function.scope

    def local_types(self, function: FunctionInfo) -> Dict[str, str]:
        """``x = SomeClass(...)`` locals, as name -> simple class name."""
        scope = self.scope_for(function)
        types: Dict[str, str] = {}
        for stmt in ast.walk(function.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name) or not isinstance(
                stmt.value, ast.Call
            ):
                continue
            symbol = render(stmt.value.func, scope)
            if symbol is None:
                continue
            simple = symbol.rsplit(".", 1)[-1]
            if simple in self.classes:
                types[target.id] = simple
        return types

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def class_of(self, function: FunctionInfo) -> Optional[ClassInfo]:
        if function.class_name is None:
            return None
        qualname = function.qualname.rsplit(".", 1)[0]
        return self.classes_by_qualname.get(qualname)

    def lookup_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Find ``name`` on ``cls`` or its repo-internal base chain."""
        seen = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            for base in current.bases:
                simple = base.rsplit(".", 1)[-1]
                for candidate in self.classes.get(simple, []):
                    stack.append(candidate)
        return None

    def resolve_call(
        self,
        call: ast.Call,
        function: FunctionInfo,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve one call node to a repo function, or None."""
        scope = self.scope_for(function)
        func = call.func
        if isinstance(func, ast.Attribute):
            base = func.value
            cls = self.class_of(function)
            # self.m(...)
            if isinstance(base, ast.Name) and base.id == "self" and cls is not None:
                return self.lookup_method(cls, func.attr)
            # self.X.m(...) through the inferred attribute type
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and cls is not None
            ):
                type_name = cls.attr_types.get(base.attr)
                if type_name is not None:
                    return self._method_on(type_name, func.attr)
                return None
            # x.m(...) through the inferred local type
            if isinstance(base, ast.Name):
                if local_types is None:
                    local_types = self.local_types(function)
                type_name = local_types.get(base.id)
                if type_name is not None:
                    return self._method_on(type_name, func.attr)
            return None
        symbol = render(func, scope)
        if symbol is None:
            return None
        # Fully-qualified repo function (via imports) or same-module function.
        candidate = self.module_functions.get(symbol)
        if candidate is not None:
            return candidate
        local = f"{function.module.name}.{symbol}"
        if local in self.module_functions:
            return self.module_functions[local]
        # Imported class constructor: ClassName(...) -> __init__.
        simple = symbol.rsplit(".", 1)[-1]
        for cls in self.classes.get(simple, []):
            init = cls.methods.get("__init__")
            if init is not None:
                return init
        return None

    def _method_on(self, class_name: str, method: str) -> Optional[FunctionInfo]:
        for cls in self.classes.get(class_name, []):
            found = self.lookup_method(cls, method)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------ #
    # call graph
    # ------------------------------------------------------------------ #
    def _index_calls(self, function: FunctionInfo) -> None:
        scope = self.scope_for(function)
        local_types = self.local_types(function)
        for node, held, _stmt in iter_nodes_with_contexts(function.node, scope):
            if not isinstance(node, ast.Call):
                continue
            callee = self.resolve_call(node, function, local_types)
            if callee is None:
                continue
            site = CallSite(caller=function, callee=callee, node=node, held=held)
            self.calls.append(site)
            self.callers_of.setdefault(callee.qualname, []).append(site)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())
