"""RL004 — no blocking calls on the event loop thread.

Coroutines in :data:`~repro.analysis.rules_config.ASYNC_SCOPE_PREFIX`
modules run on the asyncio event loop; a single blocking call there stalls
every connection the server is multiplexing.  Blocking work must move to a
thread pool (``await loop.run_in_executor(pool, fn, *args)``).

Flagged inside an ``async def`` body (nested ``def`` bodies excluded —
those run wherever they are dispatched):

* calls whose resolved symbol is in ``BLOCKING_CALL_SYMBOLS``
  (``time.sleep``, ``open``, ``pickle.loads``, ...);
* attribute calls whose terminal name is in ``BLOCKING_METHOD_NAMES``
  (``serve``, ``refine``, ``shutdown``, ``close``, ...) — the serving
  stack's known lock-taking / scanning entry points.

Not flagged: calls directly under ``await`` (an awaited ``x.close()`` is a
coroutine), function *references* passed uncalled (``run_in_executor(pool,
self.service.serve, keys)``), and ``close``/``join`` on asyncio-native
objects (``ASYNC_SAFE_BASES``: stream writers, servers, transports).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from .. import rules_config as config
from ..engine import AnalysisProject, register_checker
from ..findings import Finding
from ..scopes import render

_SAFE_ONLY_METHODS = frozenset({"close", "join", "shutdown"})


@register_checker("RL004")
def check_async_blocking(project: AnalysisProject) -> Iterable[Finding]:
    findings: List[Finding] = []
    for func in project.index.functions.values():
        if not func.is_async:
            continue
        if not func.module.name.startswith(config.ASYNC_SCOPE_PREFIX):
            continue
        scope = project.index.scope_for(func)
        awaited = _directly_awaited_calls(func.node)
        for call in _calls_in_async_body(func.node):
            if id(call) in awaited:
                continue
            reason = _blocking_reason(call, scope)
            if reason is None:
                continue
            symbol = (
                f"{func.class_name}.{func.name}" if func.class_name else func.name
            )
            findings.append(
                Finding(
                    rule_id="RL004",
                    path=func.module.rel_path,
                    line=call.lineno,
                    col=call.col_offset,
                    symbol=symbol,
                    message=f"blocking call {reason} inside async def {func.name}",
                    hint=(
                        "dispatch through the loop's executor: await "
                        "loop.run_in_executor(pool, fn, *args); if the call "
                        "is proven non-blocking here, suppress with "
                        "# reprolint: disable=RL004(reason)"
                    ),
                )
            )
    return findings


def _calls_in_async_body(func_node: ast.AST) -> Iterable[ast.Call]:
    """Every Call in the coroutine body, skipping nested function defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _directly_awaited_calls(func_node: ast.AST) -> Set[int]:
    """ids of Call nodes that are the immediate operand of an ``await``."""
    awaited: Set[int] = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            awaited.add(id(node.value))
    return awaited


def _blocking_reason(call: ast.Call, scope) -> str | None:
    symbol = render(call.func, scope)
    if symbol is not None:
        plain = symbol[:-2] if symbol.endswith("()") else symbol
        if plain in config.BLOCKING_CALL_SYMBOLS:
            return f"{plain}()"
        if plain in config.NUMPY_LOAD_SYMBOLS:
            return f"{plain}()"
    if isinstance(call.func, ast.Attribute):
        name = call.func.attr
        if name in config.BLOCKING_METHOD_NAMES:
            if name in _SAFE_ONLY_METHODS and _is_async_safe_base(
                call.func.value, scope
            ):
                return None
            base = render(call.func.value, scope) or "<expr>"
            return f"{base}.{name}()"
    return None


def _is_async_safe_base(base: ast.expr, scope) -> bool:
    """close()/join()/shutdown() on asyncio-native objects is fine."""
    symbol = render(base, scope)
    if symbol is None:
        return False
    terminal = symbol.rsplit(".", 1)[-1]
    if terminal.endswith("()"):
        terminal = terminal[:-2]
    return terminal in config.ASYNC_SAFE_BASES
