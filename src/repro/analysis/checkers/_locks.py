"""Shared lock-identification helpers for RL001 and RL002."""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple

from .. import rules_config as config
from ..callgraph import ClassInfo, ProjectIndex


def known_locks(cls: ClassInfo) -> Dict[str, str]:
    """Lock attributes of a class: attr name -> factory symbol.

    An attribute is a lock when any method assigns it a ``threading`` /
    ``asyncio`` primitive or an instance of a repo lock class
    (:data:`~repro.analysis.rules_config.LOCK_CLASS_NAMES`).
    """
    locks: Dict[str, str] = {}
    for attr, factory in cls.attr_factories.items():
        simple = factory.rsplit(".", 1)[-1]
        if factory in config.LOCK_FACTORY_SYMBOLS or simple in config.LOCK_CLASS_NAMES:
            locks[attr] = factory
    return locks


def is_rw_lock(cls: ClassInfo, attr: str, index: ProjectIndex) -> bool:
    """Whether a lock attribute is a reader/writer lock (repo lock class)."""
    factory = cls.attr_factories.get(attr, "")
    simple = factory.rsplit(".", 1)[-1]
    return simple in config.LOCK_CLASS_NAMES and simple in index.classes


def parse_held_symbol(symbol: str) -> Tuple[str, str, Optional[str]]:
    """Split a held-context symbol into (base, lock attr, rw mode).

    ``self._lock`` -> ("self", "_lock", None);
    ``self._index_lock.read()`` -> ("self", "_index_lock", "read");
    ``first._lock`` -> ("first", "_lock", None).  Unparseable symbols
    return ("", "", None).
    """
    core = symbol
    mode: Optional[str] = None
    if core.endswith("()"):
        core = core[:-2]
        parts = core.rsplit(".", 1)
        if len(parts) == 2 and parts[1] in config.RW_LOCK_METHODS:
            core, mode = parts[0], parts[1]
        else:
            return "", "", None
    if "." not in core:
        return "", core, mode
    base, attr = core.rsplit(".", 1)
    return base, attr, mode


def lock_base_of_access(access_base: str) -> str:
    """The base object a guard's lock must hang off (same as the access)."""
    return access_base


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Decompose ``base.a.b.c`` into (base name, ("a","b","c"))."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name) or not parts:
        return None
    return current.id, tuple(reversed(parts))
