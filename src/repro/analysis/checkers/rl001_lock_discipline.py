"""RL001 — guarded attributes must be touched under their declared lock.

Sources of truth, in order:

1. the explicit ``GUARDED_BY`` registry in :mod:`repro.analysis.rules_config`
   (class name -> attribute path -> guard);
2. **inference**: an attribute of a class that (a) has a known lock, (b) is
   written at least twice outside ``__init__``-like methods, and (c) is
   *always* written under one consistent class lock, is inferred to be
   guarded by that lock.  Inference never overrides a registry entry.

An access is legal when the matching lock is held at the access site — for
reader/writer locks a read accepts ``.read()`` or ``.write()``, a write
requires ``.write()`` — **or** when the access sits in a helper method whose
every resolved call site holds the lock (traced through the project call
graph, transitively, to a small depth).  The guard is base-relative:
``other._samples`` needs ``other._lock``, not ``self._lock``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import rules_config as config
from ..callgraph import ClassInfo, FunctionInfo
from ..contexts import iter_nodes_with_contexts
from ..engine import AnalysisProject, register_checker
from ..findings import Finding
from ._locks import attribute_chain, is_rw_lock, known_locks, parse_held_symbol

_MAX_CALLER_DEPTH = 3


@register_checker("RL001")
def check_lock_discipline(project: AnalysisProject) -> Iterable[Finding]:
    findings: List[Finding] = []
    index = project.index
    for class_list in index.classes.values():
        for cls in class_list:
            guards = _guards_for(cls, project)
            if not guards:
                continue
            locks = known_locks(cls)
            for method in cls.methods.values():
                if method.name in config.GUARD_EXEMPT_METHODS:
                    continue
                findings.extend(
                    _check_method(project, cls, method, guards, locks)
                )
    return findings


def _guards_for(
    cls: ClassInfo, project: AnalysisProject
) -> Dict[Tuple[str, ...], config.Guard]:
    """Registry guards plus inferred guards, keyed by attribute path tuple."""
    guards: Dict[Tuple[str, ...], config.Guard] = {}
    registry = config.GUARDED_BY.get(cls.name, {})
    for path, guard in registry.items():
        guards[tuple(path.split("."))] = guard
    for attr, lock_attr in _infer_guards(cls, project).items():
        guards.setdefault(
            (attr,),
            config.Guard(lock_attr, rw=is_rw_lock(cls, lock_attr, project.index)),
        )
    return guards


def _infer_guards(cls: ClassInfo, project: AnalysisProject) -> Dict[str, str]:
    """Attributes always written under one consistent class lock (>= 2x)."""
    locks = known_locks(cls)
    if not locks:
        return {}
    writes: Dict[str, List[Set[str]]] = {}
    for method in cls.methods.values():
        if method.name in config.GUARD_EXEMPT_METHODS:
            continue
        scope = project.index.scope_for(method)
        for node, held, _stmt in iter_nodes_with_contexts(method.node, scope):
            for target in _write_targets(node):
                chain = attribute_chain(target)
                if chain is None or chain[0] != "self" or len(chain[1]) != 1:
                    continue
                attr = chain[1][0]
                held_locks = {
                    lock_attr
                    for symbol in held
                    for base, lock_attr, _mode in (parse_held_symbol(symbol),)
                    if base == "self" and lock_attr in locks
                }
                writes.setdefault(attr, []).append(held_locks)
    inferred: Dict[str, str] = {}
    for attr, held_sets in writes.items():
        if len(held_sets) < 2:
            continue
        common = set.intersection(*held_sets) if held_sets else set()
        if len(common) == 1:
            inferred[attr] = next(iter(common))
    return inferred


def _write_targets(node: ast.AST) -> Iterable[ast.AST]:
    if isinstance(node, ast.Assign):
        return node.targets
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return ()


def _check_method(
    project: AnalysisProject,
    cls: ClassInfo,
    method: FunctionInfo,
    guards: Dict[Tuple[str, ...], config.Guard],
    locks: Dict[str, str],
) -> Iterable[Finding]:
    scope = project.index.scope_for(method)
    findings: List[Finding] = []
    for node, held, _stmt in iter_nodes_with_contexts(method.node, scope):
        accesses = _accesses_in(node, guards)
        for base, path, guard, is_write, anchor in accesses:
            if _holds_guard(held, base, guard, is_write):
                continue
            if _callers_hold_guard(
                project, method, guard, is_write, depth=_MAX_CALLER_DEPTH
            ):
                continue
            mode = "write" if is_write else "read"
            want = (
                f"{base}.{guard.lock_attr}.write()"
                if guard.rw and is_write
                else f"{base}.{guard.lock_attr}"
                + (".read()/.write()" if guard.rw else "")
            )
            findings.append(
                Finding(
                    rule_id="RL001",
                    path=method.module.rel_path,
                    line=anchor.lineno,
                    col=anchor.col_offset,
                    symbol=f"{cls.name}.{method.name}",
                    message=(
                        f"{mode} of guarded attribute "
                        f"{base}.{'.'.join(path)} outside {want}"
                    ),
                    hint=(
                        "hold the declared lock around this access (or route "
                        "through a helper whose callers all hold it); if the "
                        "access is provably safe, suppress with "
                        "# reprolint: disable=RL001(reason)"
                    ),
                )
            )
    return findings


def _accesses_in(
    node: ast.AST, guards: Dict[Tuple[str, ...], config.Guard]
) -> List[Tuple[str, Tuple[str, ...], config.Guard, bool, ast.AST]]:
    """Guarded-attribute accesses rooted at ``node`` (non-recursive: the
    context walker already yields every sub-expression, so only direct
    matches are taken here to avoid duplicates)."""
    accesses = []
    if isinstance(node, ast.Attribute):
        chain = attribute_chain(node)
        if chain is not None:
            base, path = chain
            guard = guards.get(path)
            if guard is not None:
                is_write = isinstance(node.ctx, (ast.Store, ast.Del))
                accesses.append((base, path, guard, is_write, node))
    elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Attribute):
        # AugAssign targets carry Store ctx on the Attribute; the walker
        # yields the Attribute separately, so nothing extra to do here.
        pass
    return accesses


def _holds_guard(
    held: Tuple[str, ...], base: str, guard: config.Guard, is_write: bool
) -> bool:
    for symbol in held:
        held_base, lock_attr, mode = parse_held_symbol(symbol)
        if lock_attr != guard.lock_attr or held_base != base:
            continue
        if guard.rw:
            if mode == "write" or (mode == "read" and not is_write):
                return True
        elif mode is None:
            return True
    return False


def _callers_hold_guard(
    project: AnalysisProject,
    method: FunctionInfo,
    guard: config.Guard,
    is_write: bool,
    depth: int,
    _seen: Optional[Set[str]] = None,
) -> bool:
    """True when every resolved call site of ``method`` holds the guard.

    The guard base at a call site is ``self`` (helper methods are invoked
    on the same instance: ``self._helper()``); call sites on *other*
    instances don't propagate.  Zero known call sites means the lock
    cannot be proven held — the access is reported.
    """
    if depth <= 0:
        return False
    seen = _seen or set()
    if method.qualname in seen:
        return False
    seen = seen | {method.qualname}
    sites = project.index.callers_of.get(method.qualname, [])
    if not sites:
        return False
    for site in sites:
        func = site.node.func
        same_instance = (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and site.caller.class_name is not None
        )
        if not same_instance:
            return False
        if _holds_guard(site.held, "self", guard, is_write):
            continue
        if not _callers_hold_guard(
            project, site.caller, guard, is_write, depth - 1, seen
        ):
            return False
    return True
