"""RL005 — classes holding unpicklable resources must drop them in
``__getstate__``.

Rollover pickles engines to clone them; archival pickles indexes.  A class
that stores a lock, a thread pool, ``threading.local`` state, or a
``KernelWorkspace`` pickles fine *until* one ends up in an object graph
handed to ``pickle.dumps`` — then it fails at the worst possible moment
(mid-rollover) with an opaque ``TypeError: cannot pickle '_thread.lock'``.

A class is flagged when it assigns any attribute from
``UNPICKLABLE_FACTORY_SYMBOLS`` / ``UNPICKLABLE_CLASS_NAMES`` and no
``__getstate__`` in its repo-internal MRO handles that attribute.

"Handles" is a deliberately simple syntactic check on the ``__getstate__``
body:

* an **explicit-dict** getstate — one that never touches ``self.__dict__``
  or ``vars(self)`` — handles everything (it rebuilds state from scratch,
  so the resource is dropped by construction);
* a dict-copying getstate handles attributes whose names appear in its
  body (as string constants or attribute references): ``state["_columns"]
  = None`` or ``del state["_lock"]``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from .. import rules_config as config
from ..callgraph import ClassInfo, FunctionInfo
from ..engine import AnalysisProject, register_checker
from ..findings import Finding


@register_checker("RL005")
def check_pickle_safety(project: AnalysisProject) -> Iterable[Finding]:
    findings: List[Finding] = []
    index = project.index
    for class_list in index.classes.values():
        for cls in class_list:
            if cls.name in config.PICKLE_EXEMPT_CLASSES:
                continue
            unpicklable = _unpicklable_attrs(cls)
            if not unpicklable:
                continue
            getstate = _find_getstate(project, cls)
            unhandled = {
                attr: factory
                for attr, factory in unpicklable.items()
                if getstate is None or not _handles(getstate, attr)
            }
            for attr in sorted(unhandled):
                factory = unhandled[attr]
                if getstate is None:
                    message = (
                        f"holds unpicklable {factory} in self.{attr} but "
                        "defines no __getstate__"
                    )
                else:
                    message = (
                        f"__getstate__ does not drop unpicklable {factory} "
                        f"held in self.{attr}"
                    )
                findings.append(
                    Finding(
                        rule_id="RL005",
                        path=cls.module.rel_path,
                        line=cls.node.lineno,
                        col=cls.node.col_offset,
                        symbol=cls.name,
                        message=message,
                        hint=(
                            "define __getstate__ returning a picklable dict "
                            "(either build it explicitly, or copy __dict__ "
                            f"and null/del '{attr}'); if instances are never "
                            "pickled by design, baseline the finding with a "
                            "written reason"
                        ),
                    )
                )
    return findings


def _unpicklable_attrs(cls: ClassInfo) -> Dict[str, str]:
    """attr name -> offending factory symbol."""
    offenders: Dict[str, str] = {}
    for attr, factory in cls.attr_factories.items():
        simple = factory.rsplit(".", 1)[-1]
        if (
            factory in config.UNPICKLABLE_FACTORY_SYMBOLS
            or simple in config.UNPICKLABLE_CLASS_NAMES
        ):
            offenders[attr] = factory
    return offenders


def _find_getstate(
    project: AnalysisProject, cls: ClassInfo
) -> Optional[FunctionInfo]:
    return project.index.lookup_method(cls, "__getstate__")


def _handles(getstate: FunctionInfo, attr: str) -> bool:
    """Does this ``__getstate__`` drop / rebuild ``attr``?"""
    touches_dict = False
    mentions_attr = False
    for node in ast.walk(getstate.node):
        if isinstance(node, ast.Attribute) and node.attr == "__dict__":
            touches_dict = True
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "vars":
                touches_dict = True
        if isinstance(node, ast.Constant) and node.value == attr:
            mentions_attr = True
        elif isinstance(node, ast.Attribute) and node.attr == attr:
            mentions_attr = True
    if not touches_dict:
        # Explicit-dict getstate: state is rebuilt from scratch, so any
        # attribute not mentioned is dropped by construction.
        return True
    return mentions_attr
