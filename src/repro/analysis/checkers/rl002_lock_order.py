"""RL002 — the global lock-acquisition graph must be acyclic.

Every ``with <lock>`` acquired while another lock is already held adds a
directed edge ``held -> acquired``.  Edges also propagate through the call
graph: if ``A.f`` holds lock ``L`` and calls ``A.g`` which acquires ``M``,
that is an ``L -> M`` edge even though no single function shows both.

Lock node identity is ``ClassName.attr`` (``.read()`` / ``.write()`` on a
reader/writer lock collapse onto the same node — a writer-preferring RW
lock deadlocks against itself like any other lock).  Cycles are reported
once per strongly connected component, anchored at the first acquisition
site on an edge inside the cycle.

This is the rule that would have caught the PR 7 ``LatencyStats.merge``
deadlock: two instances of the same class acquiring each other's ``_lock``
creates a ``LatencyStats._lock -> LatencyStats._lock`` self-edge, which
``merge`` avoids by id-ordering the instances (and suppresses with a
written reason).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..contexts import iter_nodes_with_contexts
from ..engine import AnalysisProject, register_checker
from ..findings import Finding
from ..scopes import render
from ._locks import known_locks, parse_held_symbol


class _Site:
    """One lock acquisition: graph node id plus source location."""

    __slots__ = ("node_id", "path", "line", "col", "symbol")

    def __init__(
        self, node_id: str, path: str, line: int, col: int, symbol: str
    ) -> None:
        self.node_id = node_id
        self.path = path
        self.line = line
        self.col = col
        self.symbol = symbol

    def location(self) -> Tuple[str, int, int]:
        return (self.path, self.line, self.col)


@register_checker("RL002")
def check_lock_order(project: AnalysisProject) -> List[Finding]:
    index = project.index

    lock_nodes: Dict[Tuple[str, str], str] = {}
    attr_owners: Dict[str, Set[str]] = {}
    for class_list in index.classes.values():
        for cls in class_list:
            for attr in known_locks(cls):
                node_id = f"{cls.name}.{attr}"
                lock_nodes[(cls.name, attr)] = node_id
                attr_owners.setdefault(attr, set()).add(node_id)

    def node_for(func, symbol: str) -> Optional[str]:
        """Graph node for a held/acquired lock symbol inside ``func``.

        ``self._lock`` maps through the enclosing class; a lock hanging
        off another name (``first._lock``) maps to the enclosing class
        when it owns that attr (the intra-class pattern), else to the
        unique owning class if there is exactly one.
        """
        _base, attr, _mode = parse_held_symbol(symbol)
        if not attr:
            return None
        if func.class_name is not None:
            node_id = lock_nodes.get((func.class_name, attr))
            if node_id is not None:
                return node_id
        owners = attr_owners.get(attr, set())
        if len(owners) == 1:
            return next(iter(owners))
        return None

    # 1. Direct acquisitions: each `with` item acquired while other lock
    #    nodes are held (enclosing withs, or earlier items of the same
    #    multi-item with) adds held -> acquired edges.
    edges: Dict[Tuple[str, str], List[_Site]] = {}
    direct_acquires: Dict[str, List[_Site]] = {}

    def add_edge(src: str, dst: str, site: _Site) -> None:
        sites = edges.setdefault((src, dst), [])
        if all(s.location() != site.location() for s in sites):
            sites.append(site)

    for func in index.functions.values():
        scope = index.scope_for(func)
        for node, held, _stmt in iter_nodes_with_contexts(func.node, scope):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            held_ids = [
                node_id
                for symbol in held
                if (node_id := node_for(func, symbol)) is not None
            ]
            prefix = list(held_ids)
            for item in node.items:
                symbol = render(item.context_expr, scope)
                if symbol is None:
                    continue
                node_id = node_for(func, symbol)
                if node_id is None:
                    continue
                site = _Site(
                    node_id,
                    func.module.rel_path,
                    item.context_expr.lineno,
                    item.context_expr.col_offset,
                    func.qualname,
                )
                for src in prefix:
                    add_edge(src, node_id, site)
                direct_acquires.setdefault(func.qualname, []).append(site)
                prefix.append(node_id)

    # 2. Call-graph propagation: a call made while holding L reaching a
    #    function that (transitively) acquires M adds L -> M.
    forward_calls: Dict[str, List] = {}
    for call_site in index.calls:
        forward_calls.setdefault(call_site.caller.qualname, []).append(call_site)

    may_acquire: Dict[str, Set[_Site]] = {}

    def acquired_by(qualname: str, stack: Set[str]) -> Set[_Site]:
        cached = may_acquire.get(qualname)
        if cached is not None:
            return cached
        if qualname in stack:
            return set()
        stack = stack | {qualname}
        result: Set[_Site] = set(direct_acquires.get(qualname, []))
        for call_site in forward_calls.get(qualname, []):
            result |= acquired_by(call_site.callee.qualname, stack)
        may_acquire[qualname] = result
        return result

    for call_site in index.calls:
        if not call_site.held:
            continue
        held_ids = [
            node_id
            for symbol in call_site.held
            if (node_id := node_for(call_site.caller, symbol)) is not None
        ]
        if not held_ids:
            continue
        for site in acquired_by(call_site.callee.qualname, set()):
            for src in held_ids:
                add_edge(src, site.node_id, site)

    # 3. Cycle detection (Tarjan SCCs; self-edges count).
    adjacency: Dict[str, Set[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())

    findings: List[Finding] = []
    for cycle in _find_cycles(adjacency):
        ordered = _rotate_min(cycle)
        cycle_edges = [
            (a, b)
            for a in ordered
            for b in ordered
            if (a, b) in edges and b in adjacency.get(a, ())
        ]
        sites = [s for edge in sorted(cycle_edges) for s in edges[edge]]
        site = min(sites, key=_Site.location) if sites else None
        chain = " -> ".join(ordered + [ordered[0]])
        findings.append(
            Finding(
                rule_id="RL002",
                path=site.path if site else "<unknown>",
                line=site.line if site else 0,
                col=site.col if site else 0,
                symbol=site.symbol if site else chain,
                message=f"lock acquisition cycle: {chain}",
                hint=(
                    "impose one global acquisition order (acquire these locks "
                    "in a single canonical sequence everywhere, e.g. by "
                    "id-ordering same-class instances); if an ordering is "
                    "already enforced out of band, suppress with "
                    "# reprolint: disable=RL002(reason)"
                ),
            )
        )
    return findings


def _find_cycles(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """One cycle report per non-trivial SCC, plus self-loops."""
    counter = [0]
    stack: List[str] = []
    on_stack: Set[str] = set()
    indices: Dict[str, int] = {}
    lowlinks: Dict[str, int] = {}
    sccs: List[List[str]] = []

    def strongconnect(v: str) -> None:
        indices[v] = lowlinks[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(adjacency.get(v, ())):
            if w not in indices:
                strongconnect(w)
                lowlinks[v] = min(lowlinks[v], lowlinks[w])
            elif w in on_stack:
                lowlinks[v] = min(lowlinks[v], indices[w])
        if lowlinks[v] == indices[v]:
            component = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            sccs.append(component)

    for v in sorted(adjacency):
        if v not in indices:
            strongconnect(v)

    cycles: List[List[str]] = []
    for component in sccs:
        if len(component) > 1:
            cycles.append(sorted(component))
        elif component[0] in adjacency.get(component[0], ()):
            cycles.append(component)
    return cycles


def _rotate_min(cycle: List[str]) -> List[str]:
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]
