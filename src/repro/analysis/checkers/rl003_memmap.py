"""RL003 — memory-mapped shard columns are immutable outside copy-on-write.

Shard layouts are content-addressed: every ``np.load(..., mmap_mode=...)``
or ``np.memmap(...)`` result aliases bytes on disk that other shards,
processes, and archived layouts share.  Mutating one in place silently
corrupts every reader.  The only sanctioned path is copy-on-write
promotion (:data:`~repro.analysis.rules_config.MEMMAP_COW_ALLOWED`), which
replaces the mapped array with a private copy before writing.

The checker runs a per-function forward taint: sources are memmap-producing
calls; taint flows through plain assignment, ``np.asarray`` / ``np.ascontiguousarray``
(zero-copy for matching dtype), subscripting, and into ``self.<attr>``
(attrs in :data:`MEMMAP_TAINTED_ATTRS` are taint sources in *every* method
of their class).  Sinks are subscript stores, augmented assignment,
in-place ndarray methods (``sort``/``fill``/...), ``out=``-style kwargs,
and mutating free functions (``np.copyto`` etc.).  An explicit
``.copy()`` / ``np.array(x, copy=True)`` launders the taint.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from .. import rules_config as config
from ..callgraph import FunctionInfo
from ..engine import AnalysisProject, register_checker
from ..findings import Finding
from ..scopes import render

_PASSTHROUGH_CALLS = {
    "numpy.asarray",
    "numpy.ascontiguousarray",
    "numpy.atleast_1d",
    "numpy.atleast_2d",
    "numpy.ravel",
    "numpy.squeeze",
    "numpy.reshape",
}

_LAUNDERING_METHODS = {"copy", "astype", "tolist", "item"}


@register_checker("RL003")
def check_memmap_immutability(project: AnalysisProject) -> Iterable[Finding]:
    findings: List[Finding] = []
    for func in project.index.functions.values():
        if func.qualname in config.MEMMAP_COW_ALLOWED:
            continue
        findings.extend(_check_function(project, func))
    return findings


def _check_function(
    project: AnalysisProject, func: FunctionInfo
) -> Iterable[Finding]:
    scope = project.index.scope_for(func)
    tainted: Set[str] = set()
    if func.class_name is not None:
        for cls_name, attr in config.MEMMAP_TAINTED_ATTRS:
            if cls_name == func.class_name:
                tainted.add(f"self.{attr}")
    findings: List[Finding] = []

    body = getattr(func.node, "body", [])
    for stmt in body:
        _walk_stmt(stmt, scope, tainted, findings, func)
    return findings


def _walk_stmt(
    stmt: ast.stmt,
    scope,
    tainted: Set[str],
    findings: List[Finding],
    func: FunctionInfo,
) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # nested defs get their own pass via the function index
    if isinstance(stmt, ast.Assign):
        value_tainted = _is_tainted_expr(stmt.value, scope, tainted)
        _check_expr(stmt.value, scope, tainted, findings, func)
        for target in stmt.targets:
            _check_store(target, scope, tainted, findings, func)
            _rebind(target, value_tainted, scope, tainted)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        value_tainted = _is_tainted_expr(stmt.value, scope, tainted)
        _check_expr(stmt.value, scope, tainted, findings, func)
        _check_store(stmt.target, scope, tainted, findings, func)
        _rebind(stmt.target, value_tainted, scope, tainted)
    elif isinstance(stmt, ast.AugAssign):
        symbol = _symbol_of(stmt.target, scope)
        base_symbol = _base_symbol(stmt.target, scope)
        if (symbol is not None and symbol in tainted) or (
            base_symbol is not None and base_symbol in tainted
        ):
            _report(
                findings,
                func,
                stmt,
                base_symbol or symbol or "<expr>",
                "augmented assignment mutates a memory-mapped array in place",
            )
    else:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                _walk_stmt(child, scope, tainted, findings, func)
            elif isinstance(child, ast.expr):
                _check_expr(child, scope, tainted, findings, func)
            elif isinstance(child, (ast.excepthandler,)):
                for inner in child.body:
                    _walk_stmt(inner, scope, tainted, findings, func)


def _rebind(
    target: ast.expr, value_tainted: bool, scope, tainted: Set[str]
) -> None:
    """Track taint through rebinding — but only a plain name/attribute
    *rebinds*; ``arr[0] = x`` stores into the existing (still tainted)
    array."""
    if not isinstance(target, (ast.Name, ast.Attribute)):
        return
    symbol = _symbol_of(target, scope)
    if symbol is None:
        return
    if value_tainted:
        tainted.add(symbol)
    else:
        tainted.discard(symbol)


def _check_store(
    target: ast.expr,
    scope,
    tainted: Set[str],
    findings: List[Finding],
    func: FunctionInfo,
) -> None:
    """A store into ``tainted[x] = ...`` or ``tainted.attr = ...``."""
    if isinstance(target, ast.Subscript):
        base_symbol = _symbol_of(target.value, scope)
        if base_symbol is not None and base_symbol in tainted:
            _report(
                findings,
                func,
                target,
                base_symbol,
                "subscript store mutates a memory-mapped array in place",
            )
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _check_store(element, scope, tainted, findings, func)


def _check_expr(
    node: ast.expr,
    scope,
    tainted: Set[str],
    findings: List[Finding],
    func: FunctionInfo,
) -> None:
    for call in [n for n in ast.walk(node) if isinstance(n, ast.Call)]:
        _check_call(call, scope, tainted, findings, func)


def _check_call(
    call: ast.Call,
    scope,
    tainted: Set[str],
    findings: List[Finding],
    func: FunctionInfo,
) -> None:
    # tainted.sort() / tainted.fill(...) / ...
    if isinstance(call.func, ast.Attribute):
        if call.func.attr in config.MUTATING_ARRAY_METHODS:
            base_symbol = _symbol_of(call.func.value, scope)
            if base_symbol is not None and base_symbol in tainted:
                _report(
                    findings,
                    func,
                    call,
                    base_symbol,
                    f".{call.func.attr}() mutates a memory-mapped array in place",
                )
    # np.copyto(tainted, ...) / np.place / np.putmask / np.put
    symbol = render(call.func, scope)
    if symbol is not None:
        plain = symbol[:-2] if symbol.endswith("()") else symbol
        if plain in config.MUTATING_FIRST_ARG_SYMBOLS and call.args:
            first_symbol = _symbol_of(call.args[0], scope)
            if first_symbol is not None and first_symbol in tainted:
                _report(
                    findings,
                    func,
                    call,
                    first_symbol,
                    f"{plain}() writes into a memory-mapped array",
                )
    # out=tainted on any numpy call
    for keyword in call.keywords:
        if keyword.arg == "out":
            out_symbol = _symbol_of(keyword.value, scope)
            if out_symbol is not None and out_symbol in tainted:
                _report(
                    findings,
                    func,
                    call,
                    out_symbol,
                    "out= targets a memory-mapped array",
                )


def _is_tainted_expr(node: ast.expr, scope, tainted: Set[str]) -> bool:
    """Does evaluating ``node`` yield (a view of) a memmap?"""
    if isinstance(node, ast.Call):
        symbol = render(node.func, scope)
        if symbol is not None:
            plain = symbol[:-2] if symbol.endswith("()") else symbol
            if plain in config.MEMMAP_PRODUCER_SYMBOLS:
                return True
            if plain in config.NUMPY_LOAD_SYMBOLS:
                return any(kw.arg == "mmap_mode" for kw in node.keywords)
            if plain in _PASSTHROUGH_CALLS and node.args:
                return _is_tainted_expr(node.args[0], scope, tainted)
        # tainted.copy() / .astype() launder; tainted.anything_else() doesn't
        # propagate (conservative: method results are untainted).
        return False
    if isinstance(node, ast.Subscript):
        return _is_tainted_expr(node.value, scope, tainted)
    if isinstance(node, (ast.Name, ast.Attribute)):
        symbol = _symbol_of(node, scope)
        return symbol is not None and symbol in tainted
    if isinstance(node, ast.IfExp):
        return _is_tainted_expr(node.body, scope, tainted) or _is_tainted_expr(
            node.orelse, scope, tainted
        )
    return False


def _symbol_of(node: ast.expr, scope) -> Optional[str]:
    """Stable symbol for a storable expression (no aliasing through scope —
    the taint set tracks *names as written*, so alias expansion would
    conflate distinct arrays)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        inner = _symbol_of(node.value, scope)
        if inner is None:
            return None
        return f"{inner}.{node.attr}"
    if isinstance(node, ast.Subscript):
        # element of a tainted container (e.g. self._state_arrays["lo"])
        return _symbol_of(node.value, scope)
    return None


def _base_symbol(node: ast.expr, scope) -> Optional[str]:
    if isinstance(node, ast.Subscript):
        return _symbol_of(node.value, scope)
    return None


def _report(
    findings: List[Finding],
    func: FunctionInfo,
    node: ast.AST,
    symbol: str,
    what: str,
) -> None:
    findings.append(
        Finding(
            rule_id="RL003",
            path=func.module.rel_path,
            line=node.lineno,
            col=node.col_offset,
            symbol=(
                f"{func.class_name}.{func.name}" if func.class_name else func.name
            ),
            message=f"{what} ({symbol})",
            hint=(
                "promote to a private copy first (np.array(x, copy=True)) or "
                "route the write through the copy-on-write path "
                "(IndexShard._promote_columns -> _write_column); if the "
                "mapping is opened writeable on purpose, suppress with "
                "# reprolint: disable=RL003(reason)"
            ),
        )
    )
