"""Checker registry: importing this package registers RL001–RL005."""

from . import (  # noqa: F401  (imports register the checkers)
    rl001_lock_discipline,
    rl002_lock_order,
    rl003_memmap,
    rl004_async_blocking,
    rl005_pickle_safety,
)
