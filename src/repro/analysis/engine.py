"""The analysis engine: load, index, run checkers, suppress, baseline.

The flow is deliberately boring::

    modules  = load_modules(paths)
    project  = AnalysisProject(modules)          # shared index, built once
    findings = [checker(project) for checker in selected rules]
    findings -= inline suppressions (# reprolint: disable=RULE(reason))
    baseline.apply(findings)                     # mark known, find expired

Checkers are pure functions from :class:`AnalysisProject` to findings; all
shared machinery (scopes, contexts, call graph) lives on the project so
five checkers pay for one parse and one index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline
from .callgraph import ProjectIndex
from .findings import ALL_RULES, Finding, assign_ordinals
from .loader import ModuleInfo, load_modules
from .suppress import Suppression, effective_lines


class AnalysisProject:
    """Parsed modules plus the shared cross-module index."""

    def __init__(self, modules: List[ModuleInfo]) -> None:
        self.modules = modules
        self.index = ProjectIndex(modules)
        self._suppressions: Optional[
            Dict[str, Dict[Tuple[int, str], Suppression]]
        ] = None

    @property
    def suppressions(self) -> Dict[str, Dict[Tuple[int, str], Suppression]]:
        if self._suppressions is None:
            self._suppressions = {
                module.rel_path: effective_lines(module) for module in self.modules
            }
        return self._suppressions


Checker = Callable[[AnalysisProject], Iterable[Finding]]

_CHECKERS: Dict[str, Checker] = {}


def register_checker(rule_id: str) -> Callable[[Checker], Checker]:
    """Class/function decorator binding a checker to its rule id."""
    if rule_id not in ALL_RULES:
        raise ValueError(f"unknown rule id {rule_id}")

    def bind(checker: Checker) -> Checker:
        _CHECKERS[rule_id] = checker
        return checker

    return bind


def registered_checkers() -> Dict[str, Checker]:
    # Importing the package of checkers registers them all.
    from . import checkers  # noqa: F401  (import for side effect)

    return dict(_CHECKERS)


@dataclass
class AnalysisResult:
    """Everything one run produced, ready for rendering or JSON."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    expired_baseline: List[str] = field(default_factory=list)

    @property
    def unbaselined(self) -> List[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def failed(self) -> bool:
        return bool(self.unbaselined)

    def as_dict(self) -> Dict[str, object]:
        per_rule: Dict[str, Dict[str, int]] = {}
        for finding in self.findings:
            stats = per_rule.setdefault(
                finding.rule_id, {"total": 0, "baselined": 0, "suppressed": 0}
            )
            stats["total"] += 1
            stats["baselined"] += int(finding.baselined)
        for finding, _ in self.suppressed:
            stats = per_rule.setdefault(
                finding.rule_id, {"total": 0, "baselined": 0, "suppressed": 0}
            )
            stats["suppressed"] += 1
        return {
            "version": 1,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [
                {**f.as_dict(), "suppression_reason": s.reason}
                for f, s in self.suppressed
            ],
            "expired_baseline": list(self.expired_baseline),
            "summary": {
                "rules": per_rule,
                "n_findings": len(self.findings),
                "n_unbaselined": len(self.unbaselined),
                "n_suppressed": len(self.suppressed),
                "n_expired_baseline": len(self.expired_baseline),
            },
        }


def run_analysis(
    paths: Sequence[Path],
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[Path] = None,
    project: Optional[AnalysisProject] = None,
) -> AnalysisResult:
    """Run the selected checkers over ``paths`` and post-process findings."""
    if project is None:
        project = AnalysisProject(load_modules(paths, root=root))
    selected = registered_checkers()
    if rules is not None:
        unknown = set(rules) - set(ALL_RULES)
        if unknown:
            raise ValueError(f"unknown rules: {sorted(unknown)}")
        selected = {rid: chk for rid, chk in selected.items() if rid in rules}
    raw: List[Finding] = []
    for rule_id in sorted(selected):
        raw.extend(selected[rule_id](project))
    raw = assign_ordinals(raw)

    result = AnalysisResult()
    for finding in raw:
        per_file = project.suppressions.get(finding.path, {})
        suppression = per_file.get((finding.line, finding.rule_id))
        if suppression is not None:
            result.suppressed.append((finding, suppression))
        else:
            result.findings.append(finding)
    if baseline is not None:
        result.expired_baseline = baseline.apply(result.findings)
    return result
