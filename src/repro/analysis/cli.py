"""The ``python -m repro.analysis`` command line.

Usage::

    python -m repro.analysis [paths...] [--rule RL00X]... [--format text|json]
                             [--baseline PATH | --no-baseline]
                             [--update-baseline] [--list-rules]

Exit codes: 0 — clean (or baselined/suppressed only); 1 — unbaselined
findings or expired baseline entries; 2 — usage or configuration error
(unknown rule, malformed baseline or suppression comment).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
import sys
from typing import List, Optional, Sequence

from .baseline import Baseline, BaselineError
from .engine import AnalysisResult, run_analysis
from .findings import ALL_RULES
from .suppress import SuppressionError

DEFAULT_BASELINE = Path("analysis/baseline.json")


def _repo_root(starts: Sequence[Path]) -> Path:
    """Nearest ancestor (of any start) with analysis/baseline.json or .git.

    The analyzed paths are tried before the working directory so an
    absolute-path invocation from outside the repo still picks up the
    repo's own committed baseline.
    """
    for start in starts:
        for candidate in [start, *start.resolve().parents]:
            if (
                (candidate / DEFAULT_BASELINE).exists()
                or (candidate / ".git").exists()
            ):
                return candidate
    return starts[-1]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: AST invariant checks for this repository",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RL00X",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE} at the repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: every finding fails the run",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to cover current findings (keeps existing "
            "reasons, prunes expired entries, stamps new entries with a "
            "FIXME reason to be replaced by hand)"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root for relative finding paths (default: auto-detected)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def _render_text(result: AnalysisResult, out) -> None:
    for finding in result.findings:
        print(finding.render(), file=out)
        if finding.baselined and finding.baseline_reason:
            print(f"    baselined: {finding.baseline_reason}", file=out)
    for fingerprint in result.expired_baseline:
        print(
            f"baseline entry {fingerprint} matches no current finding — "
            "the code was fixed; delete the entry (or run --update-baseline)",
            file=out,
        )
    summary = result.as_dict()["summary"]
    print(
        "reprolint: {n_findings} finding(s), {n_unbaselined} unbaselined, "
        "{n_suppressed} suppressed, {n_expired_baseline} expired baseline "
        "entr(ies)".format(**summary),
        file=out,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES.values():
            print(f"{rule.id}  {rule.name:<20} {rule.summary}")
        return 0

    if args.rules:
        unknown = [rule for rule in args.rules if rule not in ALL_RULES]
        if unknown:
            print(
                f"error: unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(ALL_RULES))})",
                file=sys.stderr,
            )
            return 2

    root = args.root or _repo_root([*args.paths, Path.cwd()])
    paths: List[Path] = args.paths or [root / "src" / "repro"]
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(
            "error: no such path(s): " + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2

    baseline: Optional[Baseline] = None
    baseline_path = args.baseline or (root / DEFAULT_BASELINE)
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        result = run_analysis(
            paths, rules=args.rules, baseline=baseline, root=root
        )
    except (SuppressionError, SyntaxError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        reasons = (
            {entry.fingerprint: entry.reason for entry in baseline.entries}
            if baseline is not None
            else {}
        )
        updated = Baseline.from_findings(result.findings, reasons)
        updated.save(baseline_path)
        print(
            f"baseline updated: {len(updated.entries)} entr(ies) -> "
            f"{baseline_path}",
            file=sys.stderr,
        )
        # After an update every current finding is baselined by definition.
        return 0

    if args.format == "json":
        json.dump(result.as_dict(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        _render_text(result, sys.stdout)

    if result.failed or result.expired_baseline:
        return 1
    return 0
