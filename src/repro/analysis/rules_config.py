"""Repo-specific registries the checkers run against.

This file is the contract between the codebase and ``reprolint``: every
entry encodes an invariant documented in CHANGES.md/README.  **When you add
a field guarded by a lock, a new lock, a memmap-backed array, or an
unpicklable resource, register it here** (CONTRIBUTING.md says the same).
Checkers never hardcode project names — they read these tables — so the
fixture tests can run the same checkers against synthetic registries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

# --------------------------------------------------------------------- #
# lock identification (RL001 + RL002)
# --------------------------------------------------------------------- #

#: Call symbols whose result is a mutual-exclusion primitive.  An attribute
#: assigned one of these in any method becomes a known lock of that class.
LOCK_FACTORY_SYMBOLS: FrozenSet[str] = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "asyncio.Lock",
    }
)

#: Repo classes that *are* locks: constructing one makes the attribute a
#: lock, and the class itself is exempt from RL005 (a lock cannot drop the
#: primitive it exists to wrap).
LOCK_CLASS_NAMES: FrozenSet[str] = frozenset({"_ReadWriteLock"})

#: Methods of the reader/writer lock; ``with self._index_lock.read():``
#: counts as holding the lock in shared mode, ``.write()`` in exclusive.
RW_LOCK_METHODS: FrozenSet[str] = frozenset({"read", "write"})


@dataclass(frozen=True)
class Guard:
    """Declares which lock protects a guarded attribute.

    ``lock_attr`` names the lock attribute **on the same base object** as
    the guarded attribute: ``other._samples`` requires ``other._lock``, not
    ``self._lock``.  ``rw`` marks a reader/writer lock: reads are legal
    under ``.read()`` or ``.write()``, writes only under ``.write()``.
    """

    lock_attr: str
    rw: bool = False


#: (class name -> guarded attribute path -> guard).  Paths are dotted
#: attribute chains hanging off an instance: ``_samples`` matches
#: ``self._samples`` / ``other._samples``; ``engine.index.version`` matches
#: the whole chain.  Derived from the locking contracts in
#: serving/service.py, serving/cache.py, utils/timer.py, obs/slowlog.py,
#: and dynamic/service.py.
GUARDED_BY: Dict[str, Dict[str, Guard]] = {
    "ReverseTopKService": {
        "_n_requests": Guard("_lock"),
        "_n_cache_hits": Guard("_lock"),
        "_n_deduplicated": Guard("_lock"),
        "_n_engine_queries": Guard("_lock"),
        "_n_batches": Guard("_lock"),
        "_n_refinements": Guard("_lock"),
        "_serve_seconds": Guard("_lock"),
        "_worker_seconds": Guard("_lock"),
        # The columnar views the engine scans are rewritten in place by
        # refine()/apply_updates(); reading the version (the cache key!)
        # outside the index lock can pair a stale version with fresh
        # columns — the exact torn-read the serving layer exists to stop.
        "engine.index.version": Guard("_index_lock", rw=True),
    },
    "DynamicReverseTopKService": {
        "_n_update_batches": Guard("_update_lock"),
        "_n_updates": Guard("_update_lock"),
        "_n_noop_batches": Guard("_update_lock"),
        "_n_invalidated": Guard("_update_lock"),
        "_n_rematerialized": Guard("_update_lock"),
        "_n_full_rebuilds": Guard("_update_lock"),
        "_update_seconds": Guard("_update_lock"),
        "engine.index.version": Guard("_index_lock", rw=True),
    },
    "LatencyStats": {
        "_samples": Guard("_lock"),
        "_sorted": Guard("_lock"),
    },
    "ResultCache": {
        "_entries": Guard("_lock"),
        "_hits": Guard("_lock"),
        "_misses": Guard("_lock"),
        "_insertions": Guard("_lock"),
        "_evictions": Guard("_lock"),
        "_purged": Guard("_lock"),
    },
    "SlowQueryLog": {
        "_entries": Guard("_lock"),
        "_n_recorded": Guard("_lock"),
        "_n_evicted": Guard("_lock"),
    },
}

#: Methods where guarded-attribute access is legal without the lock: object
#: construction and pickling run single-threaded by contract.
GUARD_EXEMPT_METHODS: FrozenSet[str] = frozenset(
    {"__init__", "__new__", "__getstate__", "__setstate__", "__del__"}
)

# --------------------------------------------------------------------- #
# RL003 — memmap immutability
# --------------------------------------------------------------------- #

#: Call symbols producing a memory-mapped (or possibly memory-mapped) array.
MEMMAP_PRODUCER_SYMBOLS: FrozenSet[str] = frozenset(
    {"numpy.memmap", "numpy.lib.format.open_memmap"}
)

#: ``numpy.load`` only maps when ``mmap_mode=`` is passed non-None; the
#: checker special-cases it.
NUMPY_LOAD_SYMBOLS: FrozenSet[str] = frozenset({"numpy.load"})

#: ndarray methods that mutate in place.
MUTATING_ARRAY_METHODS: FrozenSet[str] = frozenset(
    {"sort", "fill", "put", "itemset", "resize", "partition", "setflags", "byteswap"}
)

#: Free functions that mutate their first argument in place.
MUTATING_FIRST_ARG_SYMBOLS: FrozenSet[str] = frozenset(
    {"numpy.copyto", "numpy.place", "numpy.putmask", "numpy.put"}
)

#: Functions allowed to write through possibly-memmapped attributes because
#: a copy-on-write promotion provably precedes the write.  The only entry:
#: IndexShard.set_state calls _promote_columns() (which replaces the mapped
#: arrays with private writable copies) before every _write_column().
MEMMAP_COW_ALLOWED: FrozenSet[str] = frozenset(
    {"repro.core.sharding.IndexShard._write_column"}
)

#: Extra attributes known to hold memmap-backed arrays (or containers of
#: them) that local dataflow cannot see — e.g. dicts whose *values* are
#: memmaps.  (class name, attribute name) pairs.
MEMMAP_TAINTED_ATTRS: FrozenSet[Tuple[str, str]] = frozenset(
    {("IndexShard", "_state_arrays")}
)

# --------------------------------------------------------------------- #
# RL004 — asyncio blocking
# --------------------------------------------------------------------- #

#: Only modules under this prefix have event-loop-confined coroutines.
ASYNC_SCOPE_PREFIX = "repro.net"

#: Fully-resolved call symbols that block the calling thread.
BLOCKING_CALL_SYMBOLS: FrozenSet[str] = frozenset(
    {
        "time.sleep",
        "open",
        "pickle.dumps",
        "pickle.loads",
        "pickle.dump",
        "pickle.load",
        "numpy.load",
        "numpy.save",
        "subprocess.run",
        "subprocess.check_output",
        "socket.create_connection",
    }
)

#: Method *names* that denote blocking operations on the serving stack
#: (engine scans, index maintenance, lock/pool teardown).  Matched on the
#: attribute name of a plain (non-awaited) call inside an ``async def``.
BLOCKING_METHOD_NAMES: FrozenSet[str] = frozenset(
    {
        "serve",
        "serve_workload",
        "query_many",
        "query_many_readonly",
        "refine",
        "apply_updates",
        "build",
        "build_index",
        "build_or_load",
        "load_or_build",
        "acquire",
        "shutdown",
        "close",
        "join",
        "result",
        "materialize",
    }
)

#: Base-object name suffixes whose ``close()``/``join()`` are asyncio-native
#: and non-blocking: stream writers, asyncio servers, transports.  The last
#: dotted component of the rendered base symbol is matched.
ASYNC_SAFE_BASES: FrozenSet[str] = frozenset(
    {"writer", "_server", "server", "transport", "sock", "task"}
)

#: Method names from BLOCKING_METHOD_NAMES that are *fine* when awaited —
#: i.e. when the attribute call is itself an async def somewhere.  Any call
#: directly wrapped in ``await`` is skipped, so this needs no entries; kept
#: for documentation of the mechanism.
AWAITABLE_OK: FrozenSet[str] = frozenset()

# --------------------------------------------------------------------- #
# RL005 — pickle safety
# --------------------------------------------------------------------- #

#: Factory symbols whose product cannot cross a pickle boundary.  Matched
#: against the resolved symbol of ``self.X = factory(...)``.
UNPICKLABLE_FACTORY_SYMBOLS: FrozenSet[str] = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.local",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
    }
)

#: Repo classes whose instances are unpicklable resources (wrap locks or
#: pools); holding one requires dropping it in ``__getstate__``.  Simple
#: class names, resolved through imports.
UNPICKLABLE_CLASS_NAMES: FrozenSet[str] = frozenset(
    {"_ReadWriteLock", "KernelWorkspace", "ThreadPoolExecutor", "ProcessPoolExecutor"}
)

#: Classes exempt from RL005 because they *are* the primitive (a lock class
#: cannot drop its own condition variable).
PICKLE_EXEMPT_CLASSES: FrozenSet[str] = LOCK_CLASS_NAMES
