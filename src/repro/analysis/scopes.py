"""Symbolic expression rendering and scope/alias resolution.

Checkers reason about *symbols* — dotted strings like ``self._index_lock``
or ``numpy.memmap`` — rather than raw AST nodes.  This module renders
expressions to symbols and resolves two kinds of indirection so the rules
see through common idioms:

* **import aliases** (module scope): ``import numpy as np`` makes ``np.load``
  render as ``numpy.load``; ``from threading import Lock as L`` makes
  ``L()`` render as ``threading.Lock()``.  Relative imports resolve against
  the module's dotted name, so ``from ..utils.timer import LatencyStats``
  inside ``repro.serving.service`` renders as
  ``repro.utils.timer.LatencyStats``.
* **local aliases** (function scope): ``lock = self._lock`` followed by
  ``with lock:`` renders the with-item as ``self._lock``.  A name rebound to
  two different renderable expressions is dropped from the alias table
  (ambiguous), never guessed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

#: Sentinel marking a name rebound ambiguously (alias dropped, not guessed).
_AMBIGUOUS = "\0ambiguous"


def build_import_table(tree: ast.Module, module_name: str) -> Dict[str, str]:
    """Map local names to fully-qualified module/object paths."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_module(node, module_name)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def _resolve_from_module(node: ast.ImportFrom, module_name: str) -> str:
    if not node.level:
        return node.module or ""
    # Relative import: strip `level` trailing components from the module's
    # dotted name (a module's own name counts as one component).
    parts = module_name.split(".")
    anchor = parts[: len(parts) - node.level] if node.level <= len(parts) else []
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor)


@dataclass
class Scope:
    """Name-resolution context for one function (plus its module)."""

    imports: Dict[str, str] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)

    def resolve_name(self, name: str) -> str:
        alias = self.aliases.get(name)
        if alias is not None and alias != _AMBIGUOUS:
            return alias
        if alias == _AMBIGUOUS:
            return name
        return self.imports.get(name, name)

    def add_alias(self, name: str, target: Optional[str]) -> None:
        """Record ``name = <target>``; conflicting rebinds poison the alias."""
        if target is None:
            # Assigned something unrenderable: the name no longer reliably
            # denotes anything symbolic.
            if name in self.aliases:
                self.aliases[name] = _AMBIGUOUS
            return
        previous = self.aliases.get(name)
        if previous is not None and previous != target:
            self.aliases[name] = _AMBIGUOUS
        else:
            self.aliases[name] = target


def render(node: Optional[ast.AST], scope: Optional[Scope] = None) -> Optional[str]:
    """Render an expression to a dotted symbol, or None when impossible.

    Calls render with a ``()`` suffix on the called path —
    ``self._index_lock.read()`` — so lock modes stay visible; chained or
    argument-dependent expressions stay unrenderable on purpose.
    """
    if isinstance(node, ast.Name):
        return scope.resolve_name(node.id) if scope is not None else node.id
    if isinstance(node, ast.Attribute):
        base = render(node.value, scope)
        return f"{base}.{node.attr}" if base is not None else None
    if isinstance(node, ast.Call):
        base = render(node.func, scope)
        return f"{base}()" if base is not None else None
    return None


def function_scope(
    func: ast.AST, imports: Dict[str, str], renderable_roots: Iterable[str] = ()
) -> Scope:
    """Collect ``name = <symbolic expr>`` aliases from a function body.

    One linear pre-pass (no flow sensitivity): a name consistently bound to
    the same renderable expression becomes an alias; anything else —
    conflicting rebinds, tuple targets, comprehension variables — is left
    unresolved or poisoned.  That bias (miss an alias rather than invent
    one) keeps every downstream rule's false positives down.
    """
    scope = Scope(imports=dict(imports))
    del renderable_roots  # reserved for future narrowing
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                rendered = render(node.value, scope)
                scope.add_alias(target.id, rendered)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            target = node.target
            if isinstance(target, ast.Name):
                scope.add_alias(target.id, None)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                scope.add_alias(node.target.id, None)
    return scope
