"""The ``with``-context tracker: which contexts are held at every AST node.

:func:`iter_nodes_with_contexts` walks one function body and yields every
node paired with the tuple of context symbols currently held — rendered
through the function's alias scope, so ``lock = self._lock; with lock:``
tracks as ``self._lock`` and ``with self._index_lock.read():`` tracks as
``self._index_lock.read()``.

Nested function/lambda bodies are **not** entered by default: code inside a
closure does not run while the enclosing ``with`` is active (it runs when
the closure is called), so attributing the enclosing locks to it would be
wrong in both directions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .scopes import Scope, render

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def context_symbol(item: ast.withitem, scope: Optional[Scope]) -> Optional[str]:
    """Render one with-item's context expression (``None`` if unrenderable)."""
    return render(item.context_expr, scope)


def iter_nodes_with_contexts(
    func: ast.AST,
    scope: Optional[Scope] = None,
    *,
    enter_nested: bool = False,
) -> Iterator[Tuple[ast.AST, Tuple[str, ...], ast.AST]]:
    """Yield ``(node, held_contexts, enclosing_stmt)`` for a function body.

    ``held_contexts`` lists the symbols of every enclosing ``with`` /
    ``async with`` item, outermost first; items of one multi-item ``with``
    are pushed left to right, so the second item already "holds" the first
    (which is exactly the acquisition order RL002 cares about).
    ``enclosing_stmt`` is the nearest statement, used for statement-level
    suppression comments.
    """
    body = getattr(func, "body", None)
    if body is None:
        return
    if isinstance(func, ast.Lambda):
        body = [func.body]
    yield from _walk_statements(body, [], scope, enter_nested)


def _walk_statements(
    statements: List[ast.stmt],
    held: List[str],
    scope: Optional[Scope],
    enter_nested: bool,
) -> Iterator[Tuple[ast.AST, Tuple[str, ...], ast.AST]]:
    for stmt in statements:
        yield from _walk_one(stmt, held, scope, enter_nested)


def _walk_one(
    stmt: ast.AST,
    held: List[str],
    scope: Optional[Scope],
    enter_nested: bool,
) -> Iterator[Tuple[ast.AST, Tuple[str, ...], ast.AST]]:
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        yield stmt, tuple(held), stmt
        pushed = 0
        for item in stmt.items:
            # The context expression itself evaluates while only the
            # *earlier* items of this statement are held.
            yield from _yield_expr(item.context_expr, held, stmt)
            if item.optional_vars is not None:
                yield from _yield_expr(item.optional_vars, held, stmt)
            symbol = context_symbol(item, scope)
            held.append(symbol if symbol is not None else "<unknown>")
            pushed += 1
        yield from _walk_statements(stmt.body, held, scope, enter_nested)
        for _ in range(pushed):
            held.pop()
        return
    if isinstance(stmt, _FUNCTION_NODES):
        yield stmt, tuple(held), stmt
        if enter_nested:
            inner = stmt.body if not isinstance(stmt, ast.Lambda) else [stmt.body]
            yield from _walk_statements(inner, held, scope, enter_nested)
        return
    # Generic statement: yield it and its non-statement descendants at the
    # current held set, then recurse into child statement blocks.
    yield stmt, tuple(held), stmt
    for name, value in ast.iter_fields(stmt):
        del name
        for child in _iter_children(value):
            if isinstance(child, ast.stmt):
                yield from _walk_one(child, held, scope, enter_nested)
            elif isinstance(child, ast.ExceptHandler):
                # except blocks contain statements of their own; losing the
                # held-context stack inside them would blind every checker
                # to cleanup-path accesses.
                yield child, tuple(held), stmt
                if child.type is not None:
                    yield from _yield_expr(child.type, held, stmt)
                yield from _walk_statements(child.body, held, scope, enter_nested)
            elif isinstance(child, ast.AST):
                yield from _yield_expr(child, held, stmt)


def _iter_children(value: object) -> Iterator[object]:
    if isinstance(value, list):
        for item in value:
            yield item
    elif isinstance(value, ast.AST):
        yield value


def _yield_expr(
    node: ast.AST, held: List[str], enclosing: ast.AST
) -> Iterator[Tuple[ast.AST, Tuple[str, ...], ast.AST]]:
    """Yield an expression and its descendants (skipping nested functions)."""
    if isinstance(node, _FUNCTION_NODES):
        yield node, tuple(held), enclosing
        return
    yield node, tuple(held), enclosing
    for child in ast.iter_child_nodes(node):
        yield from _yield_expr(child, held, enclosing)
