"""The committed findings baseline: known, justified, watched.

``analysis/baseline.json`` records findings the team has examined and
decided to keep — each entry **must** carry a human-written reason.  The
semantics at check time:

* a current finding whose fingerprint is in the baseline **warns** (it is
  reported, marked baselined, and does not fail the run);
* a current finding *not* in the baseline **fails** the run;
* a baseline entry with no matching finding is **expired** — the code got
  fixed — and is reported so the entry can be deleted
  (``--update-baseline`` prunes them).

Fingerprints hash (rule, path, symbol, message, ordinal) — never line
numbers — so unrelated edits to a file don't churn the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json
from pathlib import Path
from typing import Dict, List, Optional

from .findings import Finding


class BaselineError(ValueError):
    """A structurally invalid baseline file (bad JSON, missing reasons)."""


@dataclass
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    symbol: str
    reason: str

    def as_dict(self) -> Dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_fingerprint = {entry.fingerprint: entry for entry in self.entries}

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls([])
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: invalid JSON: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise BaselineError(f"{path}: expected an object with 'entries'")
        entries: List[BaselineEntry] = []
        for index, raw in enumerate(data["entries"]):
            missing = {"fingerprint", "rule", "path", "symbol", "reason"} - set(raw)
            if missing:
                raise BaselineError(
                    f"{path}: entry {index} is missing {sorted(missing)}"
                )
            reason = str(raw["reason"]).strip()
            if not reason:
                raise BaselineError(
                    f"{path}: entry {index} ({raw['rule']} {raw['symbol']}) has "
                    "an empty reason — every baselined finding must be justified"
                )
            entries.append(
                BaselineEntry(
                    fingerprint=str(raw["fingerprint"]),
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    symbol=str(raw["symbol"]),
                    reason=reason,
                )
            )
        return cls(entries)

    def save(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        ordered = sorted(self.entries, key=lambda e: (e.rule, e.path, e.symbol))
        payload = {
            "version": 1,
            "entries": [entry.as_dict() for entry in ordered],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def lookup(self, finding: Finding) -> Optional[BaselineEntry]:
        return self._by_fingerprint.get(finding.fingerprint)

    def apply(self, findings: List[Finding]) -> List[str]:
        """Mark baselined findings in place; return expired fingerprints."""
        matched = set()
        for finding in findings:
            entry = self.lookup(finding)
            if entry is not None:
                finding.baselined = True
                finding.baseline_reason = entry.reason
                matched.add(entry.fingerprint)
        return [
            entry.fingerprint
            for entry in self.entries
            if entry.fingerprint not in matched
        ]

    @classmethod
    def from_findings(
        cls, findings: List[Finding], reasons: Optional[Dict[str, str]] = None
    ) -> "Baseline":
        """Build a baseline covering ``findings`` (for --update-baseline).

        Reasons carry over from ``reasons`` (fingerprint -> reason, e.g. the
        previous baseline); new entries get an explicit placeholder the
        maintainer must replace — the loader accepts it, but reviews won't.
        """
        reasons = reasons or {}
        entries = [
            BaselineEntry(
                fingerprint=f.fingerprint,
                rule=f.rule_id,
                path=f.path,
                symbol=f.symbol,
                reason=reasons.get(
                    f.fingerprint, "FIXME: justify this baselined finding"
                ),
            )
            for f in findings
        ]
        return cls(entries)
