"""Module loading: discover, parse, and name the files under analysis.

The loader walks the requested paths, parses every ``.py`` file once, and
derives the *dotted module name* from the file's location relative to the
nearest package root (the outermost ancestor chain of ``__init__.py``
directories).  Checkers rely on those names to resolve relative imports and
to scope themselves (RL004 only applies to ``repro.net``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional


@dataclass
class ModuleInfo:
    """One parsed source file.

    Attributes
    ----------
    path:
        Absolute path on disk.
    rel_path:
        Path relative to the analysis root, with posix separators (what
        findings and fingerprints use).
    name:
        Dotted module name, e.g. ``repro.serving.service``.
    tree:
        The parsed :class:`ast.Module`.
    lines:
        Raw source lines (for suppression-comment scanning).
    """

    path: Path
    rel_path: str
    name: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)


def module_name_for(path: Path) -> str:
    """Dotted module name derived from package ``__init__.py`` ancestry."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def load_modules(
    paths: Iterable[Path], root: Optional[Path] = None
) -> List[ModuleInfo]:
    """Parse every python file under ``paths`` into :class:`ModuleInfo`.

    ``root`` anchors the repo-relative paths reported in findings; it
    defaults to the current working directory, falling back to an absolute
    path when a file lives outside it.
    """
    root = (root or Path.cwd()).resolve()
    modules: List[ModuleInfo] = []
    seen: Dict[Path, None] = {}
    for path in iter_python_files(Path(p).resolve() for p in paths):
        if path in seen:
            continue
        seen[path] = None
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - analysis input error
            raise SyntaxError(f"cannot parse {path}: {exc}") from exc
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        modules.append(
            ModuleInfo(
                path=path,
                rel_path=rel,
                name=module_name_for(path),
                tree=tree,
                lines=source.splitlines(),
            )
        )
    return modules
