"""The asyncio HTTP front door for reverse top-k serving.

:class:`ReverseTopKServer` exposes a
:class:`~repro.dynamic.service.DynamicReverseTopKService` over HTTP/JSON
(stdlib :mod:`asyncio` streams — see :mod:`repro.net.http` for the framing),
composing the rest of this package:

* every request passes the **admission layer** first
  (:class:`~repro.net.admission.AdmissionController`): expired deadlines
  shed with 504 before any work, the bounded pending queue sheds with
  429 + ``Retry-After``, per-tenant token buckets rate-limit;
* admitted queries are **coalesced across connections**
  (:class:`~repro.net.coalesce.QueryCoalescer`) onto the service's
  ``serve`` path, where the existing cache/dedup/batch pipeline runs in a
  thread-pool executor off the event loop;
* graph updates **roll the index over without downtime**
  (:class:`~repro.net.rollover.RolloverManager`): queries keep hitting the
  old generation while a clone is maintained aside, then an atomic swap
  moves traffic — every response carries its ``(generation, index_version)``
  pair;
* ``GET /metrics`` reports per-tenant latency percentiles and shed /
  coalesce / cache counters, queue depth, and rollover history — as the
  historical JSON document, or as Prometheus text exposition
  (``?format=prometheus`` or ``Accept: text/plain``), both projected from
  the server's own :class:`~repro.obs.registry.MetricsRegistry` so one
  scrape is one consistent cut.

Each server owns a **fresh registry** by default (pass ``registry=`` to
share one): its service — and every rollover clone — is re-bound onto it,
so two servers in one process never mix their counters.

**Request tracing**: a query carrying an ``X-Trace`` header runs inside a
:class:`~repro.obs.tracing.Trace`; the response gains a ``"trace"`` field
with the full span tree — admission, coalesce fan-in, the shared batch
(grafted across the executor boundary), per-stage and per-shard engine
timings.  Completed queries slower than ``slow_query_threshold`` land in a
bounded in-memory slow-query log served at ``GET /debug/slow``.

Endpoints
---------
``POST /query``
    Body ``{"query": int, "k": int}``; optional headers ``X-Tenant``,
    ``X-Deadline-Ms`` (remaining client budget, propagated end to end) and
    ``X-Trace`` (any value but ``0``/``false`` returns the span tree).
    ``GET /query?query=..&k=..`` is accepted too.  Answers
    ``{"query", "k", "nodes", "proximities", "generation",
    "index_version", "coalesced"[, "trace"]}`` — ``nodes``/``proximities``
    are bit-exact float64 round-trips of the engine's answer.
``POST /update``
    Body ``{"updates": [[op, u, v] | [op, u, v, w], ...]}``; applies one
    batch through the rollover manager and reports the maintenance outcome.
``GET /metrics`` / ``GET /debug/slow`` / ``GET /healthz``
    Observability (JSON or Prometheus text), the slow-query ring buffer,
    and liveness.

The server is single-event-loop; CPU-heavy work (engine scans, clone +
maintenance) runs in two dedicated executors so the loop never stalls.
:func:`start_in_thread` embeds a server in a background thread for tests,
benchmarks and demos; ``python -m repro.net.server`` runs a standalone one
on a generated graph (used by the CI smoke job).
"""

from __future__ import annotations

import argparse
import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
import sys
import threading
import time
from typing import Dict, Optional, Tuple

from .._validation import check_positive_int
from ..dynamic.graph import GraphUpdate
from ..dynamic.service import DynamicReverseTopKService
from ..exceptions import ServiceClosedError
from ..obs.registry import MetricsRegistry
from ..obs.slowlog import SlowQueryLog
from ..obs.tracing import Trace, current_span, trace_span
from ..utils.timer import LatencyStats
from .admission import (
    DEFAULT_TENANT,
    AdmissionController,
    AdmissionError,
    AdmissionPolicy,
)
from .coalesce import CoalesceStats, QueryCoalescer
from .http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpError,
    HttpRequest,
    json_payload,
    read_request,
    render_response,
)
from .rollover import RolloverManager


@dataclass(frozen=True)
class ServerConfig:
    """Network-layer knobs (the in-process service has its own config).

    Attributes
    ----------
    host / port:
        Bind address; port ``0`` asks the kernel for a free one (tests).
    admission:
        The :class:`AdmissionPolicy` applied before any work.
    batch_window:
        Coalescer micro-batch window in seconds — how long unique keys
        buffer before one ``serve`` burst (0 flushes on the next loop tick).
    max_batch:
        Coalescer flush threshold: a burst dispatches immediately once this
        many unique keys buffer.
    scan_threads:
        Thread-pool width for engine scans.  NumPy releases the GIL inside
        the heavy array ops, but on a small host 1–2 threads is the sweet
        spot — the coalescer already turns concurrency into batch size.
    max_body_bytes:
        Request body bound (413 beyond it).
    shutdown_grace:
        Seconds to wait for in-flight connections during :meth:`stop`
        before they are cancelled.
    slow_query_threshold:
        Completed queries at or above this many seconds enter the
        slow-query log (``None`` disables it, ``0.0`` records every query).
    slow_log_capacity:
        Ring-buffer size of the slow-query log (oldest entries evicted).
    """

    host: str = "127.0.0.1"
    port: int = 0
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    batch_window: float = 0.002
    max_batch: int = 128
    scan_threads: int = 1
    max_body_bytes: int = MAX_BODY_BYTES
    shutdown_grace: float = 5.0
    slow_query_threshold: Optional[float] = 0.1
    slow_log_capacity: int = 128

    def __post_init__(self) -> None:
        check_positive_int(self.scan_threads, "scan_threads")
        check_positive_int(self.max_batch, "max_batch")
        check_positive_int(self.max_body_bytes, "max_body_bytes")
        check_positive_int(self.slow_log_capacity, "slow_log_capacity")
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {self.batch_window}")
        if self.shutdown_grace < 0:
            raise ValueError(
                f"shutdown_grace must be >= 0, got {self.shutdown_grace}"
            )
        if self.slow_query_threshold is not None and self.slow_query_threshold < 0:
            raise ValueError(
                f"slow_query_threshold must be >= 0 or None, "
                f"got {self.slow_query_threshold}"
            )


class ReverseTopKServer:
    """Admission → coalescing → generation-pinned execution over HTTP."""

    def __init__(
        self,
        service: DynamicReverseTopKService,
        config: Optional[ServerConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        #: The server's metric home: fresh per instance by default so two
        #: servers in one process (or one per test) never mix counters.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.admission = AdmissionController(self.config.admission)
        self.coalesce_stats = CoalesceStats()
        self.slow_log = SlowQueryLog(
            capacity=self.config.slow_log_capacity,
            threshold_seconds=self.config.slow_query_threshold,
        )
        self._scan_executor = ThreadPoolExecutor(
            max_workers=self.config.scan_threads,
            thread_name_prefix="repro-net-scan",
        )
        self._maintenance_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-net-maint"
        )
        self.rollover = RolloverManager(
            service,
            make_coalescer=self._make_coalescer,
            maintenance_executor=self._maintenance_executor,
        )
        self._tenant_latency: Dict[str, LatencyStats] = {}
        self._request_seconds = self.registry.histogram(
            "repro_request_seconds",
            "End-to-end request latency by tenant",
            labels=("tenant",),
        )
        self._net_obs = self._register_net_metrics(self.registry)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.Task]" = set()
        self._n_connections = 0
        self._n_requests = 0
        self._n_errors = 0
        self._stopping = False

    def _make_coalescer(self, service) -> QueryCoalescer:
        # Every generation — the seed service and each rollover clone —
        # passes through here on its way into serving: re-bind it onto the
        # server's registry so its cache/batch/latency metrics land with
        # the rest of this server's exposition (not the process default).
        service.bind_registry(self.registry)
        return QueryCoalescer(
            service,
            self._scan_executor,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch,
            stats=self.coalesce_stats,
        )

    @staticmethod
    def _register_net_metrics(registry: MetricsRegistry) -> Dict[str, object]:
        """Register the network layer's instruments (synced at scrape time).

        The authoritative counters stay where they always were — plain ints
        on the controller/coalescer/rollover objects, mutated lock-free on
        the event loop and asserted directly by tests.  The registry view is
        refreshed by :meth:`_sync_registry` on every scrape: monotonic
        counters advance by delta, gauges are set, so Prometheus ``rate()``
        semantics hold without touching the hot path.
        """
        return {
            "connections": registry.counter(
                "repro_http_connections_total", "Connections ever accepted"
            ),
            "requests": registry.counter(
                "repro_http_requests_total", "HTTP requests ever parsed"
            ),
            "errors": registry.counter(
                "repro_http_errors_total", "Requests answered with an error status"
            ),
            "open_connections": registry.gauge(
                "repro_http_open_connections", "Currently open connections"
            ),
            "pending": registry.gauge(
                "repro_admission_pending", "Admitted-but-uncompleted requests"
            ),
            "peak_pending": registry.gauge(
                "repro_admission_peak_pending", "Largest pending depth observed"
            ),
            "admission_outcomes": registry.counter(
                "repro_admission_outcomes_total",
                "Admission decisions by tenant and outcome",
                labels=("outcome", "tenant"),
            ),
            "n_submitted": registry.counter(
                "repro_coalesce_submitted_total", "Requests entering the funnel"
            ),
            "n_coalesced": registry.counter(
                "repro_coalesce_coalesced_total",
                "Requests that joined an in-flight identical computation",
            ),
            "n_batches": registry.counter(
                "repro_coalesce_batches_total", "Bursts handed to service.serve"
            ),
            "n_executed": registry.counter(
                "repro_coalesce_executed_total", "Unique keys evaluated in bursts"
            ),
            "n_failed_batches": registry.counter(
                "repro_coalesce_failed_batches_total", "Bursts that raised"
            ),
            "rollovers": registry.counter(
                "repro_rollover_swaps_total", "Generation swaps completed"
            ),
            "noop_batches": registry.counter(
                "repro_rollover_noop_batches_total",
                "Update batches that changed nothing (clone discarded)",
            ),
            "generation": registry.gauge(
                "repro_rollover_generation", "Currently serving generation id"
            ),
            "pins": registry.gauge(
                "repro_rollover_pins", "In-flight requests pinning the generation"
            ),
            "slow_queries": registry.gauge(
                "repro_slow_queries_recorded",
                "Queries ever recorded by the slow-query log",
            ),
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=MAX_HEADER_BYTES,
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when config said 0)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release everything.

        In-flight exchanges get ``shutdown_grace`` seconds to complete;
        stragglers are cancelled.  The live generation is retired (its
        coalescer settles every waiter) and both executors shut down.
        """
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            done, pending = await asyncio.wait(
                list(self._connections), timeout=self.config.shutdown_grace
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self.rollover.aclose()
        # shutdown(wait=True) joins worker threads; run it on the loop's
        # default executor (not on the pools being joined) so a slow scan
        # can't freeze the event loop during teardown.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._shutdown_pools)

    def _shutdown_pools(self) -> None:
        self._scan_executor.shutdown(wait=True)
        self._maintenance_executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Track the handling task so stop() can drain keep-alive sessions.
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self._n_connections += 1
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # shutdown cancelled a straggler: drop the connection
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # peer vanished mid-exchange: nothing to answer
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._stopping:
            try:
                request = await read_request(
                    reader, max_body_bytes=self.config.max_body_bytes
                )
            except HttpError as exc:
                # Protocol garbage: answer once, then drop the connection
                # (framing may be out of sync).
                writer.write(
                    self._error_response(exc.status, str(exc), keep_alive=False)
                )
                await writer.drain()
                return
            if request is None:
                return  # clean keep-alive end
            self._n_requests += 1
            keep_alive = not request.wants_close
            status, payload = await self._dispatch(request)
            extra: Dict[str, str] = {}
            retry_after = payload.pop("_retry_after", None)
            if retry_after is not None:
                extra["Retry-After"] = f"{retry_after:.3f}"
            # A handler may answer with pre-rendered text (the Prometheus
            # exposition) instead of a JSON document.
            text = payload.pop("_text", None)
            if text is not None:
                body = text.encode("utf-8")
                content_type = str(payload.pop("_content_type", "text/plain"))
            else:
                body = json_payload(payload)
                content_type = "application/json"
            writer.write(
                render_response(
                    status,
                    body,
                    content_type=content_type,
                    extra_headers=extra,
                    keep_alive=keep_alive,
                )
            )
            await writer.drain()
            if not keep_alive:
                return

    def _error_response(
        self, status: int, message: str, *, keep_alive: bool
    ) -> bytes:
        self._n_errors += 1
        return render_response(
            status,
            json_payload({"error": message}),
            keep_alive=keep_alive,
        )

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: HttpRequest) -> Tuple[int, Dict[str, object]]:
        try:
            if request.path == "/query":
                if request.method not in ("GET", "POST"):
                    return 405, {"error": "use GET or POST for /query"}
                return await self._handle_query(request)
            if request.path == "/update":
                if request.method != "POST":
                    return 405, {"error": "use POST for /update"}
                return await self._handle_update(request)
            if request.path == "/metrics":
                if request.method != "GET":
                    return 405, {"error": "use GET for /metrics"}
                if self._wants_prometheus(request):
                    self._sync_registry()
                    return 200, {
                        "_text": self.registry.render_prometheus(),
                        "_content_type": "text/plain; version=0.0.4",
                    }
                return 200, self.metrics()
            if request.path == "/debug/slow":
                if request.method != "GET":
                    return 405, {"error": "use GET for /debug/slow"}
                return 200, self.slow_log.snapshot()
            if request.path == "/healthz":
                if request.method != "GET":
                    return 405, {"error": "use GET for /healthz"}
                return 200, {"status": "ok"}
            return 404, {"error": f"no such endpoint: {request.path}"}
        except HttpError as exc:
            self._n_errors += 1
            return exc.status, {"error": str(exc)}
        except AdmissionError as exc:
            payload: Dict[str, object] = {"error": str(exc)}
            if exc.retry_after is not None:
                payload["_retry_after"] = exc.retry_after
                payload["retry_after_s"] = exc.retry_after
            return exc.status, payload
        except ServiceClosedError as exc:
            return 503, {"error": str(exc)}
        except ValueError as exc:
            self._n_errors += 1
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._n_errors += 1
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    @staticmethod
    def _query_args(request: HttpRequest) -> Tuple[int, int]:
        if request.method == "POST":
            body = request.json()
            if not isinstance(body, dict):
                raise HttpError(400, "body must be a JSON object")
            raw_query, raw_k = body.get("query"), body.get("k")
        else:
            raw_query, raw_k = request.params.get("query"), request.params.get("k")
        if raw_query is None or raw_k is None:
            raise HttpError(400, "both 'query' and 'k' are required")
        try:
            query, k = int(raw_query), int(raw_k)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, "'query' and 'k' must be integers") from exc
        return query, k

    @staticmethod
    def _wants_prometheus(request: HttpRequest) -> bool:
        if request.params.get("format") == "prometheus":
            return True
        accept = request.headers.get("accept", "")
        return "text/plain" in accept or "openmetrics" in accept

    @staticmethod
    def _wants_trace(request: HttpRequest) -> bool:
        raw = request.headers.get("x-trace")
        if raw is None:
            return False
        return raw.strip().lower() not in ("", "0", "false", "no", "off")

    @staticmethod
    def _deadline_ms(request: HttpRequest) -> Optional[float]:
        raw = request.headers.get("x-deadline-ms")
        if raw is None:
            return None
        try:
            deadline_ms = float(raw)
        except ValueError as exc:
            raise HttpError(400, f"bad X-Deadline-Ms: {raw!r}") from exc
        if deadline_ms <= 0:
            raise HttpError(400, f"X-Deadline-Ms must be positive, got {raw!r}")
        return deadline_ms

    async def _handle_query(
        self, request: HttpRequest
    ) -> Tuple[int, Dict[str, object]]:
        """Trace/slow-log wrapper around :meth:`_execute_query`.

        When the request carries ``X-Trace``, the whole execution runs
        inside an activated :class:`Trace` (this coroutine's context — and
        only it — carries the root span), and the finished span tree is
        attached to the response.  Every completed attempt, traced or not,
        is offered to the slow-query log.
        """
        tenant = request.headers.get("x-tenant", DEFAULT_TENANT)
        query, k = self._query_args(request)
        trace: Optional[Trace] = None
        if self._wants_trace(request):
            trace = Trace("request", tenant=tenant, query=query, k=k)
        started = time.monotonic()
        status: Optional[int] = None
        try:
            if trace is not None:
                trace.activate()
            try:
                status, payload = await self._execute_query(
                    request, tenant, query, k
                )
            finally:
                if trace is not None:
                    trace.deactivate()
            if trace is not None:
                payload["trace"] = trace.to_dict()
            return status, payload
        finally:
            # status is None when _execute_query raised (the shed/error is
            # mapped to a response by _dispatch) — still worth logging.
            fields: Dict[str, object] = {
                "tenant": tenant,
                "query": query,
                "k": k,
                "status": status,
                "traced": trace is not None,
            }
            if trace is not None:
                fields["trace"] = trace.to_dict()
            self.slow_log.record(time.monotonic() - started, **fields)

    async def _execute_query(
        self, request: HttpRequest, tenant: str, query: int, k: int
    ) -> Tuple[int, Dict[str, object]]:
        deadline = self.admission.deadline_for(self._deadline_ms(request))
        with trace_span("admission", queue_depth=self.admission.pending):
            ticket = self.admission.admit(tenant, deadline=deadline)
        started = time.monotonic()
        try:
            generation = self.rollover.current
            generation.pin()
            try:
                # Validate against *this* generation's engine before the key
                # enters the coalescer: an out-of-range node or k must fail
                # its own request, never poison a shared batch.
                engine = generation.service.engine
                if not 0 <= query < engine.n_nodes:
                    raise HttpError(
                        400,
                        f"query node {query} out of range "
                        f"[0, {engine.n_nodes})",
                    )
                if not 1 <= k <= engine.index.capacity:
                    raise HttpError(
                        400,
                        f"k={k} outside the indexed range "
                        f"[1, {engine.index.capacity}]",
                    )
                root = current_span()
                if root is not None:
                    root.annotate(
                        generation=generation.generation_id,
                        index_version=generation.index_version,
                    )
                # The coalescer registers the current span as this key's
                # trace parent; the shared batch tree is grafted under it
                # before the future settles.
                future, coalesced = generation.coalescer.submit(query, k)
                if coalesced:
                    self.admission.note_coalesced(tenant)
                # shield: a timeout/disconnect here must cancel only this
                # wait, never the shared batch siblings depend on.
                with trace_span("await.result", coalesced=coalesced):
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        try:
                            result = await asyncio.wait_for(
                                asyncio.shield(future),
                                timeout=max(0.0, remaining),
                            )
                        except asyncio.TimeoutError:
                            self.admission.shed_deadline(tenant)
                            return 504, {
                                "error": "deadline expired while the query ran"
                            }
                    else:
                        result = await asyncio.shield(future)
            finally:
                generation.unpin()
            self._record_latency(tenant, time.monotonic() - started)
            return 200, {
                "query": result.query,
                "k": result.k,
                "nodes": [int(node) for node in result.nodes],
                "proximities": [float(p) for p in result.proximities_to_query],
                "generation": generation.generation_id,
                "index_version": generation.index_version,
                "coalesced": coalesced,
            }
        finally:
            ticket.release()

    async def _handle_update(
        self, request: HttpRequest
    ) -> Tuple[int, Dict[str, object]]:
        body = request.json()
        if not isinstance(body, dict) or "updates" not in body:
            raise HttpError(400, "body must be {'updates': [[op, u, v], ...]}")
        raw_updates = body["updates"]
        if not isinstance(raw_updates, list):
            raise HttpError(400, "'updates' must be a list")
        try:
            batch = [GraphUpdate.coerce(tuple(item)) for item in raw_updates]
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad update batch: {exc}") from exc
        report = await self.rollover.apply_updates(batch)
        generation = self.rollover.current
        return 200, {
            "applied": len(batch),
            "changed": report.changed,
            "full_rebuild": report.full_rebuild,
            "n_invalidated": report.n_invalidated,
            "n_rematerialized": report.n_rematerialized,
            "generation": generation.generation_id,
            "index_version": generation.index_version,
        }

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def _record_latency(self, tenant: str, seconds: float) -> None:
        stats = self._tenant_latency.get(tenant)
        if stats is None:
            stats = self._tenant_latency[tenant] = LatencyStats()
            # One sample list, two exports: the JSON endpoint's exact
            # percentiles and the Prometheus histogram buckets both read
            # this accumulator.
            self._request_seconds.labels(tenant=tenant).bind(stats)
        stats.record(seconds)

    @staticmethod
    def _sync_counter(child, value: float) -> None:
        """Advance a registry counter to match an authoritative plain int."""
        delta = value - child.value
        if delta > 0:
            child.inc(delta)

    def _sync_registry(self) -> None:
        """Refresh the registry view of the event-loop-confined counters.

        Called at scrape time (both expositions), so the registry cut is
        exactly as fresh as the JSON document while the request hot path
        never takes the registry lock.
        """
        obs = self._net_obs
        self._sync_counter(obs["connections"], self._n_connections)
        self._sync_counter(obs["requests"], self._n_requests)
        self._sync_counter(obs["errors"], self._n_errors)
        obs["open_connections"].set(len(self._connections))
        obs["pending"].set(self.admission.pending)
        obs["peak_pending"].set(self.admission.peak_pending)
        outcomes = obs["admission_outcomes"]
        for tenant, counters in self.admission.snapshot()["tenants"].items():
            for outcome, value in counters.items():
                self._sync_counter(
                    outcomes.labels(outcome=outcome, tenant=tenant), value
                )
        for name, value in self.coalesce_stats.as_dict().items():
            self._sync_counter(obs[name], value)
        rollover = self.rollover.snapshot()
        self._sync_counter(obs["rollovers"], rollover["n_rollovers"])
        self._sync_counter(obs["noop_batches"], rollover["n_noop_batches"])
        current = rollover.get("current")
        if current is not None:
            obs["generation"].set(current["generation"])
            obs["pins"].set(current["pins"])
        obs["slow_queries"].set(self.slow_log.n_recorded)

    def metrics(self) -> Dict[str, object]:
        """JSON-ready snapshot of every layer (the ``/metrics`` payload)."""
        self._sync_registry()
        admission = self.admission.snapshot()
        tenants = admission.pop("tenants")
        per_tenant = {
            tenant: {
                "counters": counters,
                "latency": (
                    self._tenant_latency[tenant].as_dict()
                    if tenant in self._tenant_latency
                    else LatencyStats().as_dict()
                ),
            }
            for tenant, counters in tenants.items()
        }
        payload: Dict[str, object] = {
            "server": {
                "n_connections": self._n_connections,
                "open_connections": len(self._connections),
                "n_requests": self._n_requests,
                "n_errors": self._n_errors,
            },
            "admission": admission,
            "coalesce": self.coalesce_stats.as_dict(),
            "rollover": self.rollover.snapshot(),
            "tenants": per_tenant,
        }
        if not self._stopping:
            payload["service"] = self.rollover.current.service.metrics().as_dict()
        return payload


# ---------------------------------------------------------------------- #
# embedding helpers
# ---------------------------------------------------------------------- #
class ServerHandle:
    """A server running on a background event-loop thread (tests, benches)."""

    def __init__(
        self,
        server: ReverseTopKServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self.host, self.port = server.address

    def run(self, coro, timeout: Optional[float] = 30.0):
        """Run a coroutine on the server's loop and wait for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def metrics(self) -> Dict[str, object]:
        return self.run(_call_soon(self.server.metrics))

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Gracefully stop the server and join its thread (idempotent)."""
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


async def _call_soon(fn):
    return fn()


def start_in_thread(
    service: DynamicReverseTopKService,
    config: Optional[ServerConfig] = None,
    *,
    registry: Optional[MetricsRegistry] = None,
) -> ServerHandle:
    """Start a :class:`ReverseTopKServer` on a dedicated event-loop thread.

    Returns once the socket is bound; the handle exposes the resolved
    ``host``/``port`` and a blocking :meth:`ServerHandle.stop`.
    """
    loop = asyncio.new_event_loop()
    server = ReverseTopKServer(service, config, registry=registry)
    started = threading.Event()
    failure: Dict[str, BaseException] = {}

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            failure["error"] = exc
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()

    thread = threading.Thread(
        target=run, name="repro-net-server", daemon=True
    )
    thread.start()
    started.wait()
    if "error" in failure:
        raise failure["error"]
    return ServerHandle(server, loop, thread)


# ---------------------------------------------------------------------- #
# standalone entry point (CI smoke job, manual runs)
# ---------------------------------------------------------------------- #
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.server",
        description="Serve reverse top-k queries over HTTP on a generated graph.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument("--nodes", type=int, default=200)
    parser.add_argument("--out-degree", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-pending", type=int, default=256)
    parser.add_argument(
        "--rate-limit", type=float, default=None, help="per-tenant requests/second"
    )
    parser.add_argument("--burst", type=int, default=64)
    parser.add_argument("--batch-window", type=float, default=0.002)
    return parser


async def _run_until_signal(server: ReverseTopKServer) -> None:
    import signal

    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await server.start()
    host, port = server.address
    # Machine-readable markers: the subprocess smoke test and the CI job
    # wait for LISTENING before sending traffic and assert SHUTDOWN COMPLETE
    # after SIGTERM.
    print(f"LISTENING {host} {port}", flush=True)
    await stop_event.wait()
    await server.stop()
    print("SHUTDOWN COMPLETE", flush=True)


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    from ..graph.generators import copying_web_graph

    graph = copying_web_graph(args.nodes, out_degree=args.out_degree, seed=args.seed)
    service = DynamicReverseTopKService.from_graph(graph)
    policy = AdmissionPolicy(
        max_pending=args.max_pending,
        rate_limit=args.rate_limit,
        burst=args.burst,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        admission=policy,
        batch_window=args.batch_window,
    )
    server = ReverseTopKServer(service, config)
    try:
        asyncio.run(_run_until_signal(server))
    finally:
        if not service.closed:
            service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
