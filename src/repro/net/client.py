"""Async HTTP client for the reverse top-k server (stdlib only).

:class:`ReverseTopKClient` pools persistent connections to one server and
exposes the three operations workloads need — ``query``, ``update`` and
``metrics`` — as coroutines.  It deliberately imports nothing from the
serving layer: the replay tooling drives a server purely over the wire, so
the client sees exactly what an external caller would (admission sheds
included, surfaced as :class:`ServerRejected`).

The pool is a simple free-list: a coroutine borrows a connection for one
request/response exchange and returns it; concurrent requests beyond the
pool size open new connections up to ``max_connections`` and wait on a
semaphore beyond that.  HTTP/1.1 keep-alive keeps the socket count stable
under sustained load (a thousand logical in-flight requests do not need a
thousand sockets).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

from ..exceptions import ReproError
from .http import HttpError, json_payload, read_response, render_request


class ServerRejected(ReproError):
    """The server answered with a non-2xx status.

    Attributes
    ----------
    status:
        The HTTP status (429 for sheds, 504 for expired deadlines, ...).
    retry_after:
        Parsed ``Retry-After`` seconds when the server sent one.
    payload:
        The decoded JSON error body (may be empty on protocol errors).
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        retry_after: Optional[float] = None,
        payload: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.retry_after = retry_after
        self.payload = payload if payload is not None else {}


class _Connection:
    """One keep-alive socket; not safe for concurrent use (the pool is)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer

    async def exchange(
        self,
        method: str,
        target: str,
        *,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        self.writer.write(render_request(method, target, body=body, headers=headers))
        await self.writer.drain()
        return await read_response(self.reader)

    def close(self) -> None:
        self.writer.close()


class ReverseTopKClient:
    """Connection-pooled async client; use as ``async with`` or ``aclose()``."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_connections: int = 64,
        tenant: Optional[str] = None,
    ) -> None:
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        self.host = host
        self.port = port
        self.tenant = tenant
        self.max_connections = max_connections
        self._free: List[_Connection] = []
        self._slots = asyncio.Semaphore(max_connections)
        self._closed = False

    # ------------------------------------------------------------------ #
    # pool plumbing
    # ------------------------------------------------------------------ #
    async def _borrow(self) -> _Connection:
        if self._closed:
            raise RuntimeError("client is closed")
        await self._slots.acquire()
        if self._free:
            return self._free.pop()
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
        except BaseException:
            self._slots.release()
            raise
        return _Connection(reader, writer)

    async def prewarm(self, n: int) -> int:
        """Open up to ``n`` pooled connections ahead of the first request.

        Keep-alive reuse means a burst normally needs far fewer sockets
        than it has in-flight requests; prewarming pins the pool open so
        ``n`` concurrent requests genuinely hold ``n`` concurrent sockets
        (the shape benchmarks assert on).  Clamped to ``max_connections``;
        returns the free-pool size afterwards.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        target = min(int(n), self.max_connections)
        while len(self._free) < target:
            batch = min(64, target - len(self._free))
            results = await asyncio.gather(
                *[
                    asyncio.open_connection(self.host, self.port)
                    for _ in range(batch)
                ],
                return_exceptions=True,
            )
            failure: Optional[BaseException] = None
            for item in results:
                if isinstance(item, BaseException):
                    failure = failure or item
                else:
                    self._free.append(_Connection(*item))
            if failure is not None:
                raise failure
        return len(self._free)

    def _give_back(self, connection: _Connection, *, reusable: bool) -> None:
        if reusable and not self._closed:
            self._free.append(connection)
        else:
            connection.close()
        self._slots.release()

    async def _request(
        self,
        method: str,
        target: str,
        *,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        connection = await self._borrow()
        reusable = False
        try:
            status, response_headers, raw = await connection.exchange(
                method, target, body=body, headers=headers
            )
            reusable = (
                response_headers.get("connection", "keep-alive").lower() != "close"
            )
        except (HttpError, ConnectionError, OSError, asyncio.IncompleteReadError):
            # The socket's framing state is unknown: never reuse it.
            self._give_back(connection, reusable=False)
            raise
        except BaseException:
            self._give_back(connection, reusable=False)
            raise
        self._give_back(connection, reusable=reusable)

        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            payload = {}
        if status >= 300:
            retry_after = None
            raw_retry = response_headers.get("retry-after")
            if raw_retry is not None:
                try:
                    retry_after = float(raw_retry)
                except ValueError:
                    retry_after = None
            message = (
                payload.get("error", f"HTTP {status}")
                if isinstance(payload, dict)
                else f"HTTP {status}"
            )
            raise ServerRejected(
                status, message, retry_after=retry_after, payload=payload
            )
        return payload

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def _headers(
        self, deadline_ms: Optional[float], tenant: Optional[str]
    ) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        resolved = tenant if tenant is not None else self.tenant
        if resolved is not None:
            headers["X-Tenant"] = resolved
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = f"{deadline_ms:g}"
        return headers

    async def query(
        self,
        query: int,
        k: int,
        *,
        deadline_ms: Optional[float] = None,
        tenant: Optional[str] = None,
        trace: bool = False,
    ) -> dict:
        """Run one reverse top-k query; raises :class:`ServerRejected` on sheds.

        ``trace=True`` asks the server for the request's span tree (the
        response gains a ``"trace"`` field).
        """
        body = json_payload({"query": int(query), "k": int(k)})
        headers = self._headers(deadline_ms, tenant)
        if trace:
            headers["X-Trace"] = "1"
        return await self._request("POST", "/query", body=body, headers=headers)

    async def slow_queries(self) -> dict:
        """Fetch the server's slow-query log (``/debug/slow``)."""
        return await self._request("GET", "/debug/slow")

    async def update(
        self, updates: List[tuple], *, tenant: Optional[str] = None
    ) -> dict:
        """Apply one update batch (``[(op, u, v[, w]), ...]``) via rollover."""
        body = json_payload({"updates": [list(item) for item in updates]})
        return await self._request(
            "POST", "/update", body=body, headers=self._headers(None, tenant)
        )

    async def metrics(self) -> dict:
        """Fetch the server's ``/metrics`` snapshot."""
        return await self._request("GET", "/metrics")

    async def metrics_text(self) -> str:
        """Fetch the Prometheus text exposition of the server's registry."""
        connection = await self._borrow()
        reusable = False
        try:
            status, response_headers, raw = await connection.exchange(
                "GET", "/metrics?format=prometheus"
            )
            reusable = (
                response_headers.get("connection", "keep-alive").lower() != "close"
            )
        finally:
            self._give_back(connection, reusable=reusable)
        if status >= 300:
            raise ServerRejected(status, f"HTTP {status}", payload={})
        return raw.decode("utf-8")

    async def healthz(self) -> dict:
        """Liveness probe."""
        return await self._request("GET", "/healthz")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def aclose(self) -> None:
        """Close every pooled connection; in-flight borrows close on return."""
        self._closed = True
        for connection in self._free:
            connection.close()  # reprolint: disable=RL004(_Connection.close only calls asyncio StreamWriter.close which is non-blocking)
        self._free.clear()

    async def __aenter__(self) -> "ReverseTopKClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
