"""Network serving: an asyncio HTTP/JSON front door for reverse top-k.

The in-process serving stack (:mod:`repro.serving`, :mod:`repro.dynamic`)
answers queries and applies updates for one caller in one process.  This
package puts a network protocol in front of it without changing a single
answer:

* :mod:`repro.net.http` — minimal stdlib HTTP/1.1 framing over asyncio
  streams (keep-alive, Content-Length bodies);
* :mod:`repro.net.admission` — per-tenant token-bucket rate limits, a
  bounded pending queue with 429 + ``Retry-After`` backpressure, and
  deadline propagation that sheds before work is done;
* :mod:`repro.net.coalesce` — cross-connection request coalescing onto the
  service's batch scheduler (in-flight dedup, micro-batching, executor
  offload);
* :mod:`repro.net.rollover` — zero-downtime index rollover: updates are
  maintained on a clone and swapped in atomically, with generation pinning
  so no request ever observes a torn index version;
* :mod:`repro.net.server` — the :class:`ReverseTopKServer` tying the above
  together, plus :func:`start_in_thread` for embedding and a CLI entry
  point (``python -m repro.net.server``);
* :mod:`repro.net.client` — a connection-pooled async client used by the
  replay workloads, the benchmark and the examples.

Every admitted query's answer is bit-identical to calling
``engine.query`` directly at the served index version — the protocol adds
scheduling, never approximation.
"""

from .admission import (
    DEFAULT_TENANT,
    AdmissionController,
    AdmissionError,
    AdmissionPolicy,
    DeadlineExceeded,
    QueueFull,
    RateLimited,
    TenantCounters,
    TokenBucket,
)
from .client import ReverseTopKClient, ServerRejected
from .coalesce import CoalesceStats, QueryCoalescer
from .http import HttpError, HttpRequest
from .rollover import RolloverManager, ServiceGeneration, clone_for_rollover
from .server import (
    ReverseTopKServer,
    ServerConfig,
    ServerHandle,
    start_in_thread,
)

__all__ = [
    "DEFAULT_TENANT",
    "AdmissionController",
    "AdmissionError",
    "AdmissionPolicy",
    "CoalesceStats",
    "DeadlineExceeded",
    "HttpError",
    "HttpRequest",
    "QueryCoalescer",
    "QueueFull",
    "RateLimited",
    "ReverseTopKClient",
    "ReverseTopKServer",
    "RolloverManager",
    "ServerConfig",
    "ServerHandle",
    "ServerRejected",
    "ServiceGeneration",
    "TenantCounters",
    "TokenBucket",
    "clone_for_rollover",
    "start_in_thread",
]
