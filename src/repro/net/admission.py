"""Request admission: per-tenant rate limits, a bounded queue, deadlines.

A server that accepts every connection's request unconditionally has an
unbounded internal queue — under overload, latency grows without limit and
every client times out *after* the server has already spent work on it.
The admission layer applies three checks **before any engine work is
scheduled**, in this order:

1. **deadline** — a request whose propagated client deadline has already
   passed is shed immediately (HTTP 504): finishing it would be wasted
   work, the client has stopped listening;
2. **pending-queue bound** — the number of admitted-but-uncompleted
   requests is capped (``max_pending``); beyond it the server sheds with
   HTTP 429 and a ``Retry-After`` hint instead of queueing without bound
   (explicit backpressure);
3. **per-tenant token bucket** — each tenant refills at ``rate_limit``
   tokens/second up to a burst of ``burst``; an empty bucket sheds with
   HTTP 429 and the exact time until the next token as ``Retry-After``.

Every decision is counted per tenant, and the controller tracks the peak
pending depth so benchmarks can *assert* the queue stayed bounded.

The controller is event-loop-confined: the server calls it only from the
asyncio thread, so no internal locking is needed (and tests may drive it
synchronously with a fake clock).
"""

from __future__ import annotations

from dataclasses import dataclass
import time
from typing import Callable, Dict, Optional

from .._validation import check_positive_int
from ..exceptions import ReproError

#: Tenant bucket used when a request carries no ``X-Tenant`` header.
DEFAULT_TENANT = "default"


class AdmissionError(ReproError):
    """A request was shed before any engine work was scheduled.

    Attributes
    ----------
    status:
        The HTTP status the client receives (429 or 504).
    retry_after:
        Suggested wait before retrying, in seconds (``None`` when retrying
        is pointless, e.g. for an expired deadline).
    """

    status: int = 429

    def __init__(self, message: str, *, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RateLimited(AdmissionError):
    """The tenant's token bucket is empty."""

    status = 429


class QueueFull(AdmissionError):
    """The server-wide pending queue is at its bound."""

    status = 429


class DeadlineExceeded(AdmissionError):
    """The request's propagated deadline passed before work was scheduled."""

    status = 504


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the admission layer.

    Attributes
    ----------
    max_pending:
        Bound on admitted-but-uncompleted requests (the explicit queue
        depth limit); beyond it requests shed with 429.
    rate_limit:
        Per-tenant sustained rate in requests/second (``None`` disables
        rate limiting).
    burst:
        Token-bucket capacity: how many requests a tenant may issue
        back-to-back after an idle period.
    default_deadline_ms:
        Deadline applied to requests that carry no ``X-Deadline-Ms`` header
        (``None`` means such requests never expire).
    retry_after_s:
        ``Retry-After`` hint attached to queue-full sheds (rate-limit sheds
        compute the exact token wait instead).
    """

    max_pending: int = 256
    rate_limit: Optional[float] = None
    burst: int = 64
    default_deadline_ms: Optional[float] = None
    retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        check_positive_int(self.max_pending, "max_pending")
        check_positive_int(self.burst, "burst")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {self.rate_limit}")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be positive, got {self.default_deadline_ms}"
            )
        if self.retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be positive, got {self.retry_after_s}"
            )


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._stamp = now

    def try_acquire(self, now: float) -> float:
        """Take one token; returns 0.0 on success, else seconds until one."""
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass
class TenantCounters:
    """Per-tenant admission outcome counters (the metrics endpoint's rows)."""

    admitted: int = 0
    completed: int = 0
    shed_rate_limited: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    coalesced: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "coalesced": self.coalesced,
        }


class Ticket:
    """One admitted request's slot in the bounded pending queue.

    Release exactly once, in a ``finally`` — the slot is what bounds the
    queue, so leaking it would permanently shrink server capacity while
    double-releasing would silently unbound it.
    """

    __slots__ = ("_controller", "_tenant", "_released")

    def __init__(self, controller: "AdmissionController", tenant: str) -> None:
        self._controller = controller
        self._tenant = tenant
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._controller._complete(self._tenant)


class AdmissionController:
    """Applies the :class:`AdmissionPolicy` and counts every outcome."""

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._clock = clock
        self._pending = 0
        self._peak_pending = 0
        self._buckets: Dict[str, TokenBucket] = {}
        self._tenants: Dict[str, TenantCounters] = {}

    # ------------------------------------------------------------------ #
    # admission decisions
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Admitted requests not yet completed (the live queue depth)."""
        return self._pending

    @property
    def peak_pending(self) -> int:
        """Largest queue depth ever observed (bounded-queue proof)."""
        return self._peak_pending

    def deadline_for(
        self, deadline_ms: Optional[float], *, now: Optional[float] = None
    ) -> Optional[float]:
        """Absolute monotonic deadline for a request arriving now.

        ``deadline_ms`` is the client's remaining budget (the
        ``X-Deadline-Ms`` header); the policy default applies when absent.
        """
        if deadline_ms is None:
            deadline_ms = self.policy.default_deadline_ms
        if deadline_ms is None:
            return None
        if now is None:
            now = self._clock()
        return now + float(deadline_ms) / 1000.0

    def admit(
        self,
        tenant: str = DEFAULT_TENANT,
        *,
        deadline: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Ticket:
        """Admit one request or raise the matching :class:`AdmissionError`.

        Check order: expired deadline (504, no work is ever worth doing),
        queue bound (429 before a token is spent on a request that cannot
        be queued anyway), token bucket (429 with the exact token wait).
        """
        if now is None:
            now = self._clock()
        counters = self._counters(tenant)
        if deadline is not None and now >= deadline:
            counters.shed_deadline += 1
            raise DeadlineExceeded(
                f"deadline passed {now - deadline:.3f}s before admission"
            )
        if self._pending >= self.policy.max_pending:
            counters.shed_queue_full += 1
            raise QueueFull(
                f"pending queue at its bound ({self.policy.max_pending})",
                retry_after=self.policy.retry_after_s,
            )
        if self.policy.rate_limit is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.policy.rate_limit, self.policy.burst, now
                )
            wait = bucket.try_acquire(now)
            if wait > 0.0:
                counters.shed_rate_limited += 1
                raise RateLimited(
                    f"tenant {tenant!r} over its rate limit", retry_after=wait
                )
        counters.admitted += 1
        self._pending += 1
        if self._pending > self._peak_pending:
            self._peak_pending = self._pending
        return Ticket(self, tenant)

    def shed_deadline(self, tenant: str = DEFAULT_TENANT) -> None:
        """Count a post-admission deadline shed (expired while queued)."""
        self._counters(tenant).shed_deadline += 1

    def note_coalesced(self, tenant: str = DEFAULT_TENANT) -> None:
        """Count a request answered by joining an in-flight computation."""
        self._counters(tenant).coalesced += 1

    # ------------------------------------------------------------------ #
    # internals / reporting
    # ------------------------------------------------------------------ #
    def _counters(self, tenant: str) -> TenantCounters:
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = TenantCounters()
        return counters

    def _complete(self, tenant: str) -> None:
        self._pending -= 1
        self._counters(tenant).completed += 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state: queue depth, bound, and per-tenant counters."""
        return {
            "pending": self._pending,
            "peak_pending": self._peak_pending,
            "max_pending": self.policy.max_pending,
            "rate_limit": self.policy.rate_limit,
            "burst": self.policy.burst,
            "tenants": {
                tenant: counters.as_dict()
                for tenant, counters in sorted(self._tenants.items())
            },
        }
