"""Zero-downtime index rollover: clone, maintain aside, swap atomically.

``DynamicReverseTopKService.apply_updates`` maintains the index *in place*
under the write side of the service's reader/writer lock — correct, but the
write lock excludes every query for the duration of maintenance.  For an
in-process caller that is a few milliseconds of stall; for a network server
holding a thousand keep-alive connections it is a visible latency cliff on
every churn batch.

The rollover layer removes the cliff by never maintaining the index that is
being served:

1. **clone** — :func:`clone_for_rollover` snapshots the current generation
   under the *read* lock: the effective graph is materialized (a
   :class:`~repro.graph.digraph.DiGraph` is immutable, so it is shared, not
   copied) and the engine is pickled/unpickled, which the index's
   ``__getstate__`` hooks turn into a deep, cache-free copy (memory-mapped
   shards re-open their backing files rather than duplicating them);
2. **maintain aside** — the update batch is applied to the clone on a
   dedicated maintenance thread while the old generation keeps answering
   queries with zero added contention;
3. **swap** — the new :class:`ServiceGeneration` becomes current in one
   reference assignment on the event loop; every request dispatched after
   the swap sees the new index version, every request dispatched before it
   completes against the old one.  No request can observe a torn version:
   a generation's ``(generation id, index version)`` pair is fixed at
   creation and embedded in its responses;
4. **retire** — the old generation drains (each in-flight request holds a
   pin) and is then closed, its latency/counter totals folded into the
   manager's retired aggregate so the metrics endpoint never loses history.

A no-op batch (``report.changed`` false — e.g. weight-only updates under
the unweighted walk) discards the clone and keeps serving the old
generation, preserving its warm cache.

Rollovers are serialized by an :class:`asyncio.Lock`; the manager is
event-loop-confined apart from the maintenance work it explicitly sends to
the executor.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
import itertools
import pickle
from typing import Callable, Dict, List, Optional

from ..dynamic.graph import GraphUpdate
from ..dynamic.maintainer import IndexMaintainer, MaintenanceReport
from ..dynamic.service import DynamicReverseTopKService
from ..exceptions import ServiceClosedError
from .coalesce import QueryCoalescer


def clone_for_rollover(
    service: DynamicReverseTopKService,
) -> DynamicReverseTopKService:
    """Deep-copy a dynamic service so updates can be applied off to the side.

    Taken under the source's read lock so the copied engine and graph are
    one consistent index version (concurrent ``refine``/``apply_updates``
    on the source are excluded while the snapshot is taken).  The clone
    starts with a cold cache and its own executor; the graph object is
    shared because a materialized :class:`DiGraph` is immutable.
    """
    with service._index_lock.read():
        service._ensure_open()
        graph = service.graph.materialize()
        engine = pickle.loads(pickle.dumps(service.engine))
    source = service.maintainer
    maintainer = IndexMaintainer(
        engine,
        rebuild_ratio=source.rebuild_ratio,
        weighted=source.weighted,
        hub_policy=source.hub_policy,
        hub_selector=source.hub_selector,
    )
    return DynamicReverseTopKService(
        engine,
        service.config,
        graph=graph,
        maintainer=maintainer,
        snapshot=service._snapshots,
        _trusted_transition=True,
    )


class ServiceGeneration:
    """One immutable serving epoch: a service, its coalescer, its version.

    Requests pin the generation for their lifetime; retirement waits for
    the pin count to reach zero before the underlying service's resources
    are released, so a swap can never close an index out from under an
    in-flight scan.
    """

    def __init__(
        self,
        generation_id: int,
        service: DynamicReverseTopKService,
        coalescer: QueryCoalescer,
    ) -> None:
        self.generation_id = generation_id
        self.service = service
        self.coalescer = coalescer
        #: Index version served by this generation — fixed at creation,
        #: paired with ``generation_id`` in every response (torn-version
        #: freedom is exactly this pair's immutability).
        self.index_version = service.engine.index.version
        self._pins = 0
        self._retiring = False
        self._drained = asyncio.Event()

    def pin(self) -> None:
        """Mark one in-flight request against this generation."""
        self._pins += 1

    def unpin(self) -> None:
        """Release one in-flight request; may complete a pending retirement."""
        self._pins -= 1
        if self._retiring and self._pins <= 0:
            self._drained.set()

    @property
    def pins(self) -> int:
        return self._pins

    async def retire(self, executor: Optional[Executor] = None) -> None:
        """Drain in-flight pins, then release the generation's resources.

        ``service.close()`` takes the index write lock and joins worker
        pools, so it runs on ``executor`` (or the loop's default pool) —
        never on the event loop thread, where it would stall every other
        connection for the duration of the teardown.
        """
        self._retiring = True
        if self._pins > 0:
            await self._drained.wait()
        await self.coalescer.aclose()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(executor, self.service.close)

    def __repr__(self) -> str:
        return (
            f"ServiceGeneration(id={self.generation_id}, "
            f"version={self.index_version}, pins={self._pins})"
        )


class RolloverManager:
    """Owns the current :class:`ServiceGeneration` and rolls it forward.

    ``apply_updates`` never blocks queries on the serving path: maintenance
    happens on a clone in ``maintenance_executor`` and the only serving-side
    effect is one attribute assignment (the swap) on the event loop.
    """

    def __init__(
        self,
        service: DynamicReverseTopKService,
        *,
        make_coalescer: Callable[[DynamicReverseTopKService], QueryCoalescer],
        maintenance_executor: Executor,
    ) -> None:
        self._make_coalescer = make_coalescer
        self._maintenance_executor = maintenance_executor
        self._ids = itertools.count()
        self._current = ServiceGeneration(
            next(self._ids), service, make_coalescer(service)
        )
        self._rollover_lock = asyncio.Lock()
        self._closed = False
        self.n_rollovers = 0
        self.n_noop_batches = 0
        self._retired: List[Dict[str, object]] = []

    @property
    def current(self) -> ServiceGeneration:
        """The generation new requests must pin (read once per request)."""
        if self._closed:
            raise ServiceClosedError("rollover manager is closed")
        return self._current

    async def apply_updates(self, updates: List[GraphUpdate]) -> MaintenanceReport:
        """Roll the serving state forward by one update batch.

        The old generation serves untouched until the fully maintained clone
        swaps in; it is then drained and closed in the background.  No-op
        batches keep the old generation (and its warm cache) current.
        """
        async with self._rollover_lock:
            if self._closed:
                raise ServiceClosedError("rollover manager is closed")
            old = self._current
            loop = asyncio.get_running_loop()
            clone = await loop.run_in_executor(
                self._maintenance_executor, clone_for_rollover, old.service
            )
            try:
                report = await loop.run_in_executor(
                    self._maintenance_executor, clone.apply_updates, updates
                )
            except Exception:
                await loop.run_in_executor(self._maintenance_executor, clone.close)
                raise
            if not report.changed:
                # Nothing observable changed: keep the warm generation.
                await loop.run_in_executor(self._maintenance_executor, clone.close)
                self.n_noop_batches += 1
                return report
            fresh = ServiceGeneration(
                next(self._ids), clone, self._make_coalescer(clone)
            )
            self._current = fresh  # the atomic swap
            self.n_rollovers += 1
            await self._retire(old)
            return report

    async def _retire(self, generation: ServiceGeneration) -> None:
        await generation.retire(executor=self._maintenance_executor)
        metrics = generation.service.metrics()
        self._retired.append(
            {
                "generation": generation.generation_id,
                "index_version": generation.index_version,
                "n_requests": metrics.n_requests,
                "n_cache_hits": metrics.n_cache_hits,
                "n_engine_queries": metrics.n_engine_queries,
                "n_batches": metrics.n_batches,
                "serve_seconds": metrics.serve_seconds,
            }
        )

    async def aclose(self) -> None:
        """Retire the live generation; further use raises ``ServiceClosedError``."""
        async with self._rollover_lock:
            if self._closed:
                return
            self._closed = True
            await self._retire(self._current)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready rollover state for the metrics endpoint."""
        current: Optional[Dict[str, object]] = None
        if not self._closed:
            current = {
                "generation": self._current.generation_id,
                "index_version": self._current.index_version,
                "pins": self._current.pins,
            }
        return {
            "n_rollovers": self.n_rollovers,
            "n_noop_batches": self.n_noop_batches,
            "current": current,
            "retired": list(self._retired),
        }
