"""Minimal HTTP/1.1 framing over :mod:`asyncio` streams (stdlib only).

The network front door deliberately avoids a hard dependency on an external
HTTP stack: the container this reproduction targets ships only the Python
standard library, and the server needs exactly four things from HTTP —
request lines, headers, bounded JSON bodies, and keep-alive.  This module
implements that subset symmetrically for the server (:func:`read_request`,
:func:`render_response`) and the async client (:func:`render_request`,
:func:`read_response`).

Framing rules supported:

* request/response line + CRLF-separated headers, terminated by a blank
  line;
* bodies delimited by ``Content-Length`` only (no chunked encoding — both
  ends of this protocol are ours and always know the length up front);
* persistent connections by default; ``Connection: close`` on either side
  tears the connection down after the in-flight exchange.

Anything malformed raises :class:`HttpError` carrying the status code the
server should answer with, so the connection handler can turn protocol
garbage into a clean 400 instead of a stack trace.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
import json
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..exceptions import ReproError

#: Reason phrases for every status this server emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on the request head (request line + headers), in bytes.
MAX_HEADER_BYTES = 32 * 1024

#: Default upper bound on a request body, in bytes.
MAX_BODY_BYTES = 1 << 20


class HttpError(ReproError):
    """A malformed or oversized HTTP message.

    ``status`` is the response code the peer should receive (400 for
    syntax, 413/431 for size violations).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, split target, lowercase headers, body."""

    method: str
    target: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Decode the body as JSON (raises :class:`HttpError` 400 on garbage)."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc

    @property
    def wants_close(self) -> bool:
        """Whether the client asked to drop the connection after this exchange."""
        return self.headers.get("connection", "").lower() == "close"


async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read up to the blank line; ``None`` on clean EOF before any byte."""
    try:
        return await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests: normal keep-alive end
        raise HttpError(400, "connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "request head exceeds the size limit") from exc


def _parse_headers(lines: list) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        name, separator, value = line.partition(":")
        if not separator or not name.strip():
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Read one request off a keep-alive connection.

    Returns ``None`` when the peer closed the connection cleanly between
    requests (the normal end of a keep-alive session); raises
    :class:`HttpError` for anything malformed or oversized.
    """
    head = await _read_head(reader)
    if head is None:
        return None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, "request head exceeds the size limit")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable request head") from exc
    request_line, *header_lines = text.split("\r\n")[:-2]
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts
    headers = _parse_headers(header_lines)

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise HttpError(400, f"bad Content-Length: {length_header!r}") from exc
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length_header!r}")
        if length > max_body_bytes:
            raise HttpError(413, f"body of {length} bytes exceeds the limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "connection closed mid-body") from exc

    split = urlsplit(target)
    params = {name: value for name, value in parse_qsl(split.query)}
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=split.path,
        params=params,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response (status line, headers, body) to wire bytes."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_payload(payload: object) -> bytes:
    """Encode a JSON payload compactly (UTF-8 bytes).

    ``json.dumps`` emits the shortest round-tripping decimal form for every
    float, so ``float64`` values survive server → JSON → client bit-exactly —
    the network benchmark's bit-identity assertions rely on this.
    """
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def render_request(
    method: str,
    target: str,
    *,
    body: bytes = b"",
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialize one client request to wire bytes (always keep-alive)."""
    lines = [f"{method.upper()} {target} HTTP/1.1", "Host: repro"]
    if headers:
        lines.extend(f"{name}: {value}" for name, value in headers.items())
    if body:
        lines.append(f"Content-Length: {len(body)}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Client side: read one response; returns ``(status, headers, body)``."""
    head = await _read_head(reader)
    if head is None:
        raise HttpError(400, "server closed the connection before responding")
    text = head.decode("latin-1")
    status_line, *header_lines = text.split("\r\n")[:-2]
    parts = status_line.split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(400, f"malformed status line: {status_line!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise HttpError(400, f"malformed status line: {status_line!r}") from exc
    headers = _parse_headers(header_lines)
    body = b""
    length = int(headers.get("content-length", "0") or "0")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "server closed the connection mid-body") from exc
    return status, headers, body
