"""Cross-connection request coalescing onto the serving pipeline.

The in-process service already deduplicates and batches *within* one
``serve`` burst (:class:`~repro.serving.batching.BatchScheduler`), but a
network server receives each request on its own connection — without a
funnel, a thousand concurrent connections asking the same hot query would
issue a thousand single-request bursts and the scheduler would never see a
duplicate.  :class:`QueryCoalescer` is that funnel:

* **in-flight dedup across connections** — the first arrival of a
  ``(query, k)`` creates a shared future; every later arrival while the
  computation is in flight awaits the *same* future (one engine evaluation,
  N responses);
* **micro-batching** — unique keys buffer for at most ``batch_window``
  seconds (or until ``max_batch`` accumulate) and are then handed to
  ``service.serve`` as one burst, where the existing ``BatchScheduler``
  groups them by ``k`` and the result cache absorbs repeats across bursts;
* **executor offload** — the burst runs in a thread-pool executor via
  ``loop.run_in_executor``, so the event loop keeps accepting connections
  and parsing requests while NumPy scans the index (the scans release the
  GIL for the heavy array work).

Cancellation safety (pinned by tests): waiters must wrap the shared future
in ``asyncio.shield`` — a client disconnecting or timing out cancels only
its own wait, never the shared batch task, and the in-flight table entry is
removed by the batch completion itself, so later identical requests can
never join a dead future.

Tracing crosses the funnel: a waiter submitting inside an active
:class:`~repro.obs.tracing.Trace` registers its current span as the key's
trace parent.  ``run_in_executor`` does not carry contextvars into worker
threads, so the batch runner activates a fresh ``Trace("coalesce.batch")``
*inside* the worker (``with trace: service.serve(keys)``) — the service and
engine spans attach to that batch tree — and on completion the shared tree
is grafted under every registered parent, annotated with the key's coalesce
fan-in.  Batches with no traced waiter skip all of this (one dict pop per
key).

A coalescer belongs to exactly **one service generation** (one index
version): the rollover layer creates a fresh coalescer per generation, so a
key can never dedup across two different index states.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.query import QueryResult
from ..exceptions import ServiceClosedError
from ..obs.tracing import Span, Trace, current_span
from ..serving.service import ReverseTopKService

#: One coalescing key: (query node, depth k).
Key = Tuple[int, int]


@dataclass
class CoalesceStats:
    """Counters of the funnel (shared across generations by the server).

    Attributes
    ----------
    n_submitted:
        Requests entering the funnel.
    n_coalesced:
        Requests that joined an already-in-flight identical computation.
    n_batches:
        Bursts handed to ``service.serve``.
    n_executed:
        Unique keys evaluated across all bursts.
    n_failed_batches:
        Bursts that raised (every waiter received the exception).
    """

    n_submitted: int = 0
    n_coalesced: int = 0
    n_batches: int = 0
    n_executed: int = 0
    n_failed_batches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "n_submitted": self.n_submitted,
            "n_coalesced": self.n_coalesced,
            "n_batches": self.n_batches,
            "n_executed": self.n_executed,
            "n_failed_batches": self.n_failed_batches,
        }


def _retrieve_exception(future: "asyncio.Future[QueryResult]") -> None:
    """Mark a failed shared future's exception as observed.

    Every waiter may have timed out or disconnected by the time the batch
    fails; without this callback the event loop would log "exception was
    never retrieved" for a future whose error was handled by design.
    """
    if not future.cancelled():
        future.exception()


class QueryCoalescer:
    """Funnels concurrent connections' queries into shared service bursts.

    Event-loop-confined: ``submit`` must be called from the loop thread
    (the server's connection handlers), which is what makes the in-flight
    table and buffer race-free without locks.  Only the engine scan itself
    leaves the loop, via ``executor``.
    """

    def __init__(
        self,
        service: ReverseTopKService,
        executor: Executor,
        *,
        batch_window: float = 0.002,
        max_batch: int = 128,
        stats: Optional[CoalesceStats] = None,
    ) -> None:
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.service = service
        self.stats = stats if stats is not None else CoalesceStats()
        self._executor = executor
        self._batch_window = float(batch_window)
        self._max_batch = int(max_batch)
        self._inflight: Dict[Key, "asyncio.Future[QueryResult]"] = {}
        #: Traced waiters per in-flight key: the spans the batch tree is
        #: grafted under when the key's result lands (fan-in = list length).
        self._trace_parents: Dict[Key, List[Span]] = {}
        self._buffer: List[Key] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._batch_tasks: "set[asyncio.Task]" = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # the funnel
    # ------------------------------------------------------------------ #
    def submit(self, query: int, k: int) -> Tuple["asyncio.Future[QueryResult]", bool]:
        """Register one request; returns ``(shared_future, coalesced)``.

        ``coalesced`` is ``True`` when the request joined an identical
        computation already in flight.  Await the future through
        ``asyncio.shield`` — cancelling the raw future would detach every
        sibling waiter from its result.
        """
        if self._closed:
            raise ServiceClosedError("coalescer is closed")
        self.stats.n_submitted += 1
        key = (int(query), int(k))
        parent = current_span()
        if parent is not None:
            self._trace_parents.setdefault(key, []).append(parent)
        future = self._inflight.get(key)
        if future is not None:
            self.stats.n_coalesced += 1
            return future, True
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        future.add_done_callback(_retrieve_exception)
        self._inflight[key] = future
        self._buffer.append(key)
        if len(self._buffer) >= self._max_batch:
            self._flush()
        elif self._flush_handle is None:
            if self._batch_window > 0.0:
                self._flush_handle = loop.call_later(self._batch_window, self._flush)
            else:
                self._flush_handle = loop.call_soon(self._flush)
        return future, False

    @property
    def n_inflight(self) -> int:
        """Unique keys currently being (or about to be) computed."""
        return len(self._inflight)

    def _flush(self) -> None:
        """Hand the buffered keys to the service as one burst."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._buffer:
            return
        keys, self._buffer = self._buffer, []
        task = asyncio.get_running_loop().create_task(self._execute(keys))
        # Keep a strong reference: a GC'd batch task would orphan waiters.
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _execute(self, keys: List[Key]) -> None:
        """Run one burst in the executor and fan results out to waiters.

        The burst task is intentionally detached from every waiter: a
        waiter's cancellation (disconnect, deadline) must never cancel the
        shared computation other waiters depend on.  Keys are removed from
        the in-flight table exactly when their outcome is known — success
        and failure both clear them, so a failed burst cannot poison the
        table for later retries.

        When any waiter is traced, the batch runs inside its own
        :class:`Trace` activated *in the worker thread* (contextvars do not
        cross ``run_in_executor``), and the finished batch tree is grafted
        under every waiter's span at fan-out time.
        """
        self.stats.n_batches += 1
        loop = asyncio.get_running_loop()
        batch_trace: Optional[Trace] = None
        if any(key in self._trace_parents for key in keys):
            batch_trace = Trace("coalesce.batch", n_keys=len(keys))

            def _run_traced(trace: Trace = batch_trace) -> List[QueryResult]:
                with trace:
                    return self.service.serve(keys)

            runner = _run_traced
        else:
            runner = None
        try:
            if runner is not None:
                results = await loop.run_in_executor(self._executor, runner)
            else:
                results = await loop.run_in_executor(
                    self._executor, self.service.serve, keys
                )
        except Exception as exc:
            self.stats.n_failed_batches += 1
            for key in keys:
                future = self._inflight.pop(key, None)
                self._graft_waiters(key, batch_trace)
                if future is not None and not future.done():
                    future.set_exception(exc)
        else:
            self.stats.n_executed += len(keys)
            for key, result in zip(keys, results):
                future = self._inflight.pop(key, None)
                self._graft_waiters(key, batch_trace)
                if future is not None and not future.done():
                    future.set_result(result)

    def _graft_waiters(self, key: Key, batch_trace: Optional[Trace]) -> None:
        """Attach the completed batch tree under every traced waiter of ``key``.

        Runs just before the key's future settles, so a waiter reading its
        trace after ``await`` always sees the batch subtree.  The subtree is
        shared by reference across waiters (it is complete and never mutated
        through a parent).  Parents registered after the batch dispatched
        untraced are popped and dropped — never leaked.
        """
        waiting = self._trace_parents.pop(key, None)
        if not waiting or batch_trace is None:
            return
        for parent in waiting:
            parent.annotate(coalesce_fan_in=len(waiting))
            parent.graft(batch_trace.root)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def flush_now(self) -> None:
        """Dispatch whatever is buffered immediately (tests, shutdown)."""
        self._flush()

    async def aclose(self) -> None:
        """Stop accepting, flush nothing further, and settle stragglers.

        In-flight batches are awaited (their waiters get real results);
        buffered-but-never-flushed keys fail with
        :class:`~repro.exceptions.ServiceClosedError`.
        """
        self._closed = True
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        buffered, self._buffer = self._buffer, []
        for key in buffered:
            future = self._inflight.pop(key, None)
            self._trace_parents.pop(key, None)
            if future is not None and not future.done():
                future.set_exception(ServiceClosedError("server shutting down"))
        if self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)

    def __repr__(self) -> str:
        return (
            f"QueryCoalescer(inflight={len(self._inflight)}, "
            f"buffered={len(self._buffer)}, window={self._batch_window}s)"
        )
