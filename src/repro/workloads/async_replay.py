"""Async replay: drive a workload against a live server over the wire.

The synchronous :func:`~repro.workloads.replay.replay` exercises the
in-process serving façade; this module is its network twin.  It replays a
:class:`~repro.workloads.queries.QueryWorkload` or a
:class:`~repro.workloads.churn.ChurnWorkload` against a running
:class:`~repro.net.server.ReverseTopKServer` with a configurable number of
concurrently in-flight requests, honouring the server's backpressure:

* 429 sheds are retried after the server's ``Retry-After`` hint (countable,
  so benchmarks can assert backpressure actually engaged);
* 504 deadline sheds are terminal for that request and counted;
* update events act as **barriers** — all in-flight queries drain, the
  batch is applied through the server's rollover path, and the stream
  resumes — so every query response can be attributed to a definite graph
  state via its ``(generation, index_version)`` pair.

The driver talks pure HTTP through
:class:`~repro.net.client.ReverseTopKClient`; it imports the client lazily
so importing :mod:`repro.workloads` stays free of the network stack.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
import time
from typing import Dict, List, Optional, Sequence, Union

from .._validation import check_positive_int
from ..utils.timer import LatencyStats
from .churn import ChurnEvent, ChurnWorkload, QueryEvent, UpdateEvent
from .queries import QueryWorkload


@dataclass
class AsyncReplayReport:
    """Outcome of one async replay run.

    Attributes
    ----------
    n_queries / n_update_batches:
        Stream composition actually replayed.
    n_answered:
        Queries that got a 200 (after any number of shed retries).
    n_shed_retries:
        429 responses absorbed by retrying (rate-limit + queue-full).
    n_deadline_failures:
        Queries that terminally failed with 504.
    seconds:
        End-to-end wall clock for the whole stream.
    latency:
        Client-observed per-query latency summary (first attempt to final
        answer, retries included).
    responses:
        Per-query response payloads in stream order (``None`` for deadline
        failures) — each carries ``generation`` and ``index_version``.
    update_acks:
        The server's response to each update batch, in stream order.
    """

    n_queries: int = 0
    n_update_batches: int = 0
    n_answered: int = 0
    n_shed_retries: int = 0
    n_deadline_failures: int = 0
    seconds: float = 0.0
    latency: Dict[str, float] = field(default_factory=dict)
    responses: List[Optional[dict]] = field(default_factory=list)
    update_acks: List[dict] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        """Answered queries per second over the whole replay."""
        return self.n_answered / self.seconds if self.seconds else 0.0

    def summary(self) -> Dict[str, object]:
        """Compact JSON-ready summary (omits per-query payloads)."""
        return {
            "n_queries": self.n_queries,
            "n_update_batches": self.n_update_batches,
            "n_answered": self.n_answered,
            "n_shed_retries": self.n_shed_retries,
            "n_deadline_failures": self.n_deadline_failures,
            "seconds": self.seconds,
            "throughput_qps": self.throughput_qps,
            "latency": self.latency,
        }


Workload = Union[QueryWorkload, ChurnWorkload, Sequence[ChurnEvent]]


def _as_events(workload: Workload) -> List[ChurnEvent]:
    if isinstance(workload, QueryWorkload):
        return [QueryEvent(int(query), workload.k) for query in workload.queries]
    if isinstance(workload, ChurnWorkload):
        return list(workload.events)
    return list(workload)


async def async_replay(
    workload: Workload,
    host: str,
    port: int,
    *,
    concurrency: int = 64,
    max_connections: Optional[int] = None,
    tenant: Optional[str] = None,
    deadline_ms: Optional[float] = None,
    retry_shed: bool = True,
    max_retries: int = 200,
    prewarm: Optional[int] = None,
) -> AsyncReplayReport:
    """Replay ``workload`` against the server at ``host:port``.

    ``concurrency`` bounds the logically in-flight queries (each holds one
    pooled connection while active, so it also bounds sockets unless
    ``max_connections`` says otherwise).  With ``retry_shed`` the driver
    sleeps out each 429's ``Retry-After`` and retries up to ``max_retries``
    times — the pattern a well-behaved client uses against explicit
    backpressure; without it, sheds surface as exceptions.  ``prewarm``
    opens that many pooled sockets before the first query, so the whole
    replay genuinely runs over that many concurrent connections (keep-alive
    reuse would otherwise let a fast server serve the stream over far
    fewer).
    """
    from ..net.client import ReverseTopKClient, ServerRejected

    check_positive_int(concurrency, "concurrency")
    events = _as_events(workload)
    report = AsyncReplayReport()
    latency = LatencyStats()
    gate = asyncio.Semaphore(concurrency)

    async def run_query(event: QueryEvent, slot: int, client) -> None:
        async with gate:
            started = time.monotonic()
            attempts = 0
            while True:
                try:
                    response = await client.query(
                        event.query,
                        event.k,
                        deadline_ms=deadline_ms,
                        tenant=tenant,
                    )
                except ServerRejected as exc:
                    if exc.status == 429 and retry_shed and attempts < max_retries:
                        attempts += 1
                        report.n_shed_retries += 1
                        await asyncio.sleep(exc.retry_after or 0.01)
                        continue
                    if exc.status == 504:
                        report.n_deadline_failures += 1
                        report.responses[slot] = None
                        return
                    raise
                latency.record(time.monotonic() - started)
                report.n_answered += 1
                report.responses[slot] = response
                return

    async with ReverseTopKClient(
        host,
        port,
        max_connections=max_connections if max_connections else concurrency,
        tenant=tenant,
    ) as client:
        if prewarm:
            await client.prewarm(prewarm)
        started = time.monotonic()
        in_flight: List[asyncio.Task] = []
        slot = 0
        for event in events:
            if isinstance(event, QueryEvent):
                report.n_queries += 1
                report.responses.append(None)
                in_flight.append(
                    asyncio.ensure_future(run_query(event, slot, client))
                )
                slot += 1
            elif isinstance(event, UpdateEvent):
                # Barrier: updates apply between well-defined query epochs,
                # so each response's (generation, index_version) maps to one
                # definite graph state.
                if in_flight:
                    await asyncio.gather(*in_flight)
                    in_flight.clear()
                ack = await client.update(
                    [update.as_tuple() for update in event.updates],
                    tenant=tenant,
                )
                report.n_update_batches += 1
                report.update_acks.append(ack)
            else:  # pragma: no cover - future event kinds
                raise TypeError(f"unsupported event type: {type(event).__name__}")
        if in_flight:
            await asyncio.gather(*in_flight)
        report.seconds = time.monotonic() - started
    report.latency = latency.as_dict()
    return report


def replay_over_network(
    workload: Workload,
    host: str,
    port: int,
    **kwargs,
) -> AsyncReplayReport:
    """Blocking convenience wrapper: run :func:`async_replay` to completion.

    For callers that are not already inside an event loop (benchmarks,
    examples, tests driving a :func:`~repro.net.server.start_in_thread`
    server from the main thread).
    """
    return asyncio.run(async_replay(workload, host, port, **kwargs))
