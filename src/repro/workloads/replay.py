"""Replay driver: stream a :class:`QueryWorkload` through a serving façade.

The driver is how benchmarks and capacity tests exercise the serving layer:
it chops a workload into request bursts of ``burst_size`` (simulating the
arrival pattern of a queue-draining server), pushes every burst through
``service.serve`` and reports end-to-end wall-clock throughput together
with the service's own metrics snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from .._validation import check_positive_int
from ..utils.timer import Timer
from .queries import QueryWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving imports us)
    from ..core.query import QueryResult
    from ..serving.service import ReverseTopKService, ServiceMetrics


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one workload through a service.

    Attributes
    ----------
    n_requests:
        Requests replayed.
    n_bursts:
        ``serve`` calls issued (``ceil(n_requests / burst_size)``).
    seconds:
        End-to-end wall-clock time of the replay.
    results:
        Per-request results, in workload order.
    metrics:
        The service's :class:`ServiceMetrics` snapshot taken after the
        replay (cumulative over the service's lifetime, not just this run).
    """

    n_requests: int
    n_bursts: int
    seconds: float
    results: List["QueryResult"]
    metrics: "ServiceMetrics"

    @property
    def throughput_qps(self) -> float:
        """Requests per second over the whole replay."""
        return self.n_requests / self.seconds if self.seconds else 0.0

    def summary(self) -> Dict[str, object]:
        """Compact JSON-ready summary (omits the per-request results)."""
        return {
            "n_requests": self.n_requests,
            "n_bursts": self.n_bursts,
            "seconds": self.seconds,
            "throughput_qps": self.throughput_qps,
            "metrics": self.metrics.as_dict(),
        }


def replay(
    service: "ReverseTopKService",
    workload: QueryWorkload,
    *,
    burst_size: Optional[int] = None,
) -> ReplayReport:
    """Stream ``workload`` through ``service`` in bursts and time it.

    ``burst_size`` defaults to the service's ``max_batch_size`` so each
    burst fills exactly one executor batch per distinct ``k``; pass
    ``len(workload)`` to hand the whole stream over in one call (maximum
    dedup opportunity) or ``1`` to force request-at-a-time serving (worst
    case, cache only).
    """
    if burst_size is None:
        burst_size = service.config.max_batch_size
    burst_size = check_positive_int(burst_size, "burst_size")
    requests = [(int(query), workload.k) for query in workload.queries]
    results: List["QueryResult"] = []
    n_bursts = 0
    with Timer() as timer:
        for start in range(0, len(requests), burst_size):
            results.extend(service.serve(requests[start : start + burst_size]))
            n_bursts += 1
    return ReplayReport(
        n_requests=len(requests),
        n_bursts=n_bursts,
        seconds=timer.elapsed,
        results=results,
        metrics=service.metrics(),
    )
