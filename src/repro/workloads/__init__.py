"""Query workload generation and parameter sweeps for the evaluation harness."""

from .async_replay import AsyncReplayReport, async_replay, replay_over_network
from .churn import (
    ChurnWorkload,
    QueryEvent,
    UpdateEvent,
    churn_workload,
)
from .queries import (
    uniform_query_workload,
    degree_weighted_query_workload,
    zipfian_query_workload,
    all_nodes_workload,
    QueryWorkload,
)
from .replay import ReplayReport, replay
from .sweep import ParameterSweep, SweepPoint

__all__ = [
    "AsyncReplayReport",
    "async_replay",
    "replay_over_network",
    "ChurnWorkload",
    "QueryEvent",
    "UpdateEvent",
    "churn_workload",
    "uniform_query_workload",
    "degree_weighted_query_workload",
    "zipfian_query_workload",
    "all_nodes_workload",
    "QueryWorkload",
    "ReplayReport",
    "replay",
    "ParameterSweep",
    "SweepPoint",
]
