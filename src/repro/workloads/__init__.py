"""Query workload generation and parameter sweeps for the evaluation harness."""

from .queries import (
    uniform_query_workload,
    degree_weighted_query_workload,
    zipfian_query_workload,
    all_nodes_workload,
    QueryWorkload,
)
from .churn import (
    ChurnWorkload,
    QueryEvent,
    UpdateEvent,
    churn_workload,
)
from .replay import ReplayReport, replay
from .sweep import ParameterSweep, SweepPoint

__all__ = [
    "ChurnWorkload",
    "QueryEvent",
    "UpdateEvent",
    "churn_workload",
    "uniform_query_workload",
    "degree_weighted_query_workload",
    "zipfian_query_workload",
    "all_nodes_workload",
    "QueryWorkload",
    "ReplayReport",
    "replay",
    "ParameterSweep",
    "SweepPoint",
]
