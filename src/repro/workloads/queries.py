"""Query workload generators (Section 5.3 runs 500-query workloads per graph)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from .._validation import check_positive_int
from ..graph.digraph import DiGraph
from ..utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class QueryWorkload:
    """A sequence of reverse top-k queries to run against one graph.

    Attributes
    ----------
    queries:
        Node ids, in execution order.
    k:
        The reverse top-k depth shared by all queries.
    description:
        Human-readable provenance ("uniform", "degree-weighted", ...).
    """

    queries: np.ndarray
    k: int
    description: str = ""

    def __len__(self) -> int:
        return int(self.queries.size)

    def __iter__(self) -> Iterator[int]:
        return iter(int(q) for q in self.queries)

    def with_k(self, k: int) -> "QueryWorkload":
        """The same query sequence at a different depth ``k`` (Figure 5 sweeps)."""
        return QueryWorkload(self.queries.copy(), check_positive_int(k, "k"), self.description)


def uniform_query_workload(
    graph: DiGraph | int,
    n_queries: int,
    *,
    k: int = 10,
    seed: SeedLike = 0,
    replace: bool = True,
) -> QueryWorkload:
    """Sample query nodes uniformly at random (the paper's default workload)."""
    n_nodes = graph if isinstance(graph, int) else graph.n_nodes
    n_queries = check_positive_int(n_queries, "n_queries")
    rng = ensure_rng(seed)
    if not replace:
        n_queries = min(n_queries, n_nodes)
        queries = rng.choice(n_nodes, size=n_queries, replace=False)
    else:
        queries = rng.integers(0, n_nodes, size=n_queries)
    return QueryWorkload(queries.astype(np.int64), k, "uniform")


def degree_weighted_query_workload(
    graph: DiGraph,
    n_queries: int,
    *,
    k: int = 10,
    seed: SeedLike = 0,
    direction: str = "in",
) -> QueryWorkload:
    """Sample query nodes proportionally to degree.

    High in-degree nodes are the typical targets of spam-style analyses, so
    this workload stresses the harder queries (larger candidate sets).
    """
    n_queries = check_positive_int(n_queries, "n_queries")
    rng = ensure_rng(seed)
    degrees = (graph.in_degree if direction == "in" else graph.out_degree).astype(np.float64)
    weights = degrees + 1.0
    probabilities = weights / weights.sum()
    queries = rng.choice(graph.n_nodes, size=n_queries, p=probabilities)
    return QueryWorkload(queries.astype(np.int64), k, f"degree-weighted ({direction})")


def all_nodes_workload(graph: DiGraph | int, *, k: int = 10) -> QueryWorkload:
    """Every node exactly once, in id order (the Figure 8 cumulative workload)."""
    n_nodes = graph if isinstance(graph, int) else graph.n_nodes
    return QueryWorkload(np.arange(n_nodes, dtype=np.int64), k, "all-nodes")
