"""Query workload generators (Section 5.3 runs 500-query workloads per graph)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .._validation import check_positive_int
from ..graph.digraph import DiGraph
from ..utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class QueryWorkload:
    """A sequence of reverse top-k queries to run against one graph.

    Attributes
    ----------
    queries:
        Node ids, in execution order.
    k:
        The reverse top-k depth shared by all queries.
    description:
        Human-readable provenance ("uniform", "degree-weighted", ...).
    """

    queries: np.ndarray
    k: int
    description: str = ""

    def __len__(self) -> int:
        return int(self.queries.size)

    def __iter__(self) -> Iterator[int]:
        return iter(int(q) for q in self.queries)

    def with_k(self, k: int) -> "QueryWorkload":
        """The same query sequence at a different depth ``k`` (Figure 5 sweeps)."""
        return QueryWorkload(self.queries.copy(), check_positive_int(k, "k"), self.description)


def uniform_query_workload(
    graph: DiGraph | int,
    n_queries: int,
    *,
    k: int = 10,
    seed: SeedLike = 0,
    replace: bool = True,
) -> QueryWorkload:
    """Sample query nodes uniformly at random (the paper's default workload)."""
    n_nodes = graph if isinstance(graph, int) else graph.n_nodes
    n_queries = check_positive_int(n_queries, "n_queries")
    rng = ensure_rng(seed)
    if not replace:
        n_queries = min(n_queries, n_nodes)
        queries = rng.choice(n_nodes, size=n_queries, replace=False)
    else:
        queries = rng.integers(0, n_nodes, size=n_queries)
    return QueryWorkload(queries.astype(np.int64), k, "uniform")


def degree_weighted_query_workload(
    graph: DiGraph,
    n_queries: int,
    *,
    k: int = 10,
    seed: SeedLike = 0,
    direction: str = "in",
) -> QueryWorkload:
    """Sample query nodes proportionally to degree.

    High in-degree nodes are the typical targets of spam-style analyses, so
    this workload stresses the harder queries (larger candidate sets).
    """
    n_queries = check_positive_int(n_queries, "n_queries")
    rng = ensure_rng(seed)
    degrees = (graph.in_degree if direction == "in" else graph.out_degree).astype(np.float64)
    weights = degrees + 1.0
    probabilities = weights / weights.sum()
    queries = rng.choice(graph.n_nodes, size=n_queries, p=probabilities)
    return QueryWorkload(queries.astype(np.int64), k, f"degree-weighted ({direction})")


def zipfian_query_workload(
    graph: DiGraph | int,
    n_queries: int,
    *,
    k: int = 10,
    exponent: float = 1.1,
    hot_fraction: float = 0.05,
    seed: SeedLike = 0,
) -> QueryWorkload:
    """Sample a skewed, repeat-heavy query stream (serving-cache workload).

    Real query traffic is Zipf-like: a small hot set receives most requests.
    A random permutation of the nodes is ranked, the top
    ``ceil(hot_fraction * n)`` ranks form the eligible pool, and queries are
    drawn with probability proportional to ``rank^-exponent`` — so the same
    hot queries repeat many times, which is exactly what a result cache and
    in-flight dedup exploit.

    Parameters
    ----------
    exponent:
        Zipf exponent ``s > 0``; larger means more skew.
    hot_fraction:
        Fraction of the node population eligible as queries (at least one).
    """
    n_nodes = graph if isinstance(graph, int) else graph.n_nodes
    n_queries = check_positive_int(n_queries, "n_queries")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    rng = ensure_rng(seed)
    pool_size = max(1, int(np.ceil(hot_fraction * n_nodes)))
    pool = rng.permutation(n_nodes)[:pool_size]
    weights = 1.0 / np.arange(1, pool_size + 1, dtype=np.float64) ** exponent
    probabilities = weights / weights.sum()
    queries = rng.choice(pool, size=n_queries, p=probabilities)
    return QueryWorkload(
        queries.astype(np.int64), k, f"zipfian (s={exponent}, hot={hot_fraction})"
    )


def all_nodes_workload(graph: DiGraph | int, *, k: int = 10) -> QueryWorkload:
    """Every node exactly once, in id order (the Figure 8 cumulative workload)."""
    n_nodes = graph if isinstance(graph, int) else graph.n_nodes
    return QueryWorkload(np.arange(n_nodes, dtype=np.int64), k, "all-nodes")
