"""Generic parameter sweep runner used by the table/figure experiments.

Each experiment in the paper varies one or two parameters (``k``, the hub
budget ``B``, the rounding threshold ``omega``, update vs. no-update) and
reports one or more metrics per setting.  :class:`ParameterSweep` factors out
the bookkeeping so individual experiments stay short and declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Sequence


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter setting and its measured metrics."""

    parameters: Dict[str, Any]
    metrics: Dict[str, float]

    def __getitem__(self, key: str) -> Any:
        if key in self.metrics:
            return self.metrics[key]
        return self.parameters[key]


class ParameterSweep:
    """Run a measurement function over the Cartesian product of parameter axes.

    Examples
    --------
    >>> sweep = ParameterSweep({"k": [1, 2]})
    >>> points = sweep.run(lambda k: {"twice": 2.0 * k})
    >>> [(p.parameters["k"], p.metrics["twice"]) for p in points]
    [(1, 2.0), (2, 4.0)]
    """

    def __init__(self, axes: Mapping[str, Sequence[Any]]) -> None:
        if not axes:
            raise ValueError("at least one parameter axis is required")
        self.axes = {name: list(values) for name, values in axes.items()}
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    def points(self) -> List[Dict[str, Any]]:
        """All parameter combinations in row-major order of the given axes."""
        combinations: List[Dict[str, Any]] = [{}]
        for name, values in self.axes.items():
            combinations = [
                {**existing, name: value} for existing in combinations for value in values
            ]
        return combinations

    def run(
        self,
        measure: Callable[..., Mapping[str, float]],
        *,
        on_point: Callable[[SweepPoint], None] | None = None,
    ) -> List[SweepPoint]:
        """Call ``measure(**parameters)`` for every combination.

        ``measure`` must return a mapping of metric name to value.  The
        optional ``on_point`` callback receives each finished point (useful
        for streaming progress output from long benchmark runs).
        """
        results: List[SweepPoint] = []
        for parameters in self.points():
            metrics = dict(measure(**parameters))
            point = SweepPoint(parameters=parameters, metrics=metrics)
            results.append(point)
            if on_point is not None:
                on_point(point)
        return results
