"""Churn workloads: interleaved query/update event streams for dynamic graphs.

A churn workload models a serving node's real life: mostly queries, with
periodic bursts of graph mutations (new links, retracted links, weight
drift).  The generator simulates the graph's evolution while emitting
events, so every update in the stream is valid against the graph state at
the moment it arrives — insertions target absent edges, deletions and
weight changes target present ones.

Events come in two shapes: :class:`QueryEvent` (one ``(query, k)`` request)
and :class:`UpdateEvent` (one batch of
:class:`~repro.dynamic.graph.GraphUpdate` mutations, applied atomically).
Drivers iterate the stream and dispatch on the event type — see
``benchmarks/bench_dynamic_updates.py`` and ``examples/dynamic_demo.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Tuple, Union

import numpy as np

from .._validation import check_positive_int
from ..graph.digraph import DiGraph
from ..utils.rng import SeedLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dynamic imports serving)
    from ..dynamic.graph import GraphUpdate


@dataclass(frozen=True)
class QueryEvent:
    """One reverse top-k request in a churn stream."""

    query: int
    k: int


@dataclass(frozen=True)
class UpdateEvent:
    """One atomic batch of edge mutations in a churn stream."""

    updates: Tuple["GraphUpdate", ...]

    def __len__(self) -> int:
        return len(self.updates)


ChurnEvent = Union[QueryEvent, UpdateEvent]


@dataclass(frozen=True)
class ChurnWorkload:
    """An ordered stream of query and update events over one graph.

    Attributes
    ----------
    events:
        The events, in arrival order.
    k:
        The reverse top-k depth shared by the query events.
    description:
        Human-readable provenance.
    """

    events: Tuple[ChurnEvent, ...]
    k: int
    description: str = ""

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    @property
    def n_queries(self) -> int:
        """Number of query events."""
        return sum(1 for event in self.events if isinstance(event, QueryEvent))

    @property
    def n_update_batches(self) -> int:
        """Number of update batches."""
        return sum(1 for event in self.events if isinstance(event, UpdateEvent))

    @property
    def n_updates(self) -> int:
        """Total individual edge mutations across all batches."""
        return sum(
            len(event) for event in self.events if isinstance(event, UpdateEvent)
        )

    def queries(self) -> List[Tuple[int, int]]:
        """The ``(query, k)`` requests in stream order (updates skipped)."""
        return [
            (event.query, event.k)
            for event in self.events
            if isinstance(event, QueryEvent)
        ]


def churn_workload(
    graph: DiGraph,
    n_queries: int,
    n_update_batches: int,
    *,
    k: int = 10,
    batch_size: int = 4,
    add_fraction: float = 0.45,
    remove_fraction: float = 0.35,
    hot_fraction: float = 0.05,
    zipf_exponent: float = 1.1,
    seed: SeedLike = 0,
) -> ChurnWorkload:
    """Generate an interleaved query/update stream for ``graph``.

    Update batches are spread evenly through the query stream (an update
    every ``n_queries / n_update_batches`` requests, approximately), so the
    stream alternates serving phases with maintenance phases the way a
    queue-draining server would experience them.

    Parameters
    ----------
    n_queries / n_update_batches:
        Stream composition; batches hold ``batch_size`` mutations each.
    add_fraction / remove_fraction:
        Mutation mix; the remainder are weight changes on existing edges
        (weight changes are no-ops under the unweighted walk — a realistic
        share of update traffic that good maintenance should shrug off).
    hot_fraction / zipf_exponent:
        Queries are drawn Zipf-style from a small hot pool (see
        :func:`~repro.workloads.queries.zipfian_query_workload`), the
        traffic shape caches exploit.
    seed:
        Deterministic stream for a given seed.

    Notes
    -----
    The generator tracks the evolving edge set, so emitted updates are
    always valid in arrival order; self-loops are never inserted and an
    edge's last outgoing position may be deleted (the transition layer's
    dangling policy covers that).
    """
    from ..dynamic.graph import GraphUpdate

    n_queries = check_positive_int(n_queries, "n_queries")
    if n_update_batches < 0:
        raise ValueError(
            f"n_update_batches must be non-negative, got {n_update_batches}"
        )
    if n_update_batches > n_queries:
        # Update events slot in after query positions; more batches than
        # queries would silently collapse onto the same slots.
        raise ValueError(
            f"n_update_batches ({n_update_batches}) must not exceed "
            f"n_queries ({n_queries})"
        )
    batch_size = check_positive_int(batch_size, "batch_size")
    if add_fraction < 0 or remove_fraction < 0 or add_fraction + remove_fraction > 1:
        raise ValueError(
            "add_fraction and remove_fraction must be non-negative and sum to <= 1"
        )
    rng = ensure_rng(seed)
    n = graph.n_nodes

    # Evolving edge set: list for O(1) sampling, set for O(1) membership.
    edge_list: List[Tuple[int, int]] = [(u, v) for u, v, _ in graph.edges()]
    edge_set = set(edge_list)

    def random_absent_edge() -> Tuple[int, int] | None:
        for _ in range(64):  # rejection sampling; graphs here are sparse
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u != v and (u, v) not in edge_set:
                return u, v
        return None

    def make_update() -> "GraphUpdate | None":
        roll = float(rng.random())
        if roll < add_fraction or not edge_list:
            edge = random_absent_edge()
            if edge is None:
                return None
            edge_set.add(edge)
            edge_list.append(edge)
            return GraphUpdate.add(*edge)
        if roll < add_fraction + remove_fraction:
            position = int(rng.integers(0, len(edge_list)))
            edge = edge_list[position]
            edge_list[position] = edge_list[-1]
            edge_list.pop()
            edge_set.discard(edge)
            return GraphUpdate.remove(*edge)
        position = int(rng.integers(0, len(edge_list)))
        u, v = edge_list[position]
        return GraphUpdate.set_weight(u, v, float(rng.uniform(0.5, 2.0)))

    # Zipf-style hot query pool, mirroring zipfian_query_workload.
    pool_size = max(1, int(np.ceil(hot_fraction * n)))
    pool = rng.permutation(n)[:pool_size]
    weights = 1.0 / np.arange(1, pool_size + 1, dtype=np.float64) ** zipf_exponent
    probabilities = weights / weights.sum()
    query_nodes = rng.choice(pool, size=n_queries, p=probabilities)

    # Evenly spaced update positions inside the query stream.
    if n_update_batches:
        spacing = n_queries / n_update_batches
        update_after = {int(np.floor((i + 1) * spacing)) - 1 for i in range(n_update_batches)}
    else:
        update_after = set()

    events: List[ChurnEvent] = []
    for position, query in enumerate(query_nodes):
        events.append(QueryEvent(int(query), k))
        if position in update_after:
            batch = []
            for _ in range(batch_size):
                update = make_update()
                if update is not None:
                    batch.append(update)
            if batch:
                events.append(UpdateEvent(tuple(batch)))
    return ChurnWorkload(
        events=tuple(events),
        k=k,
        description=(
            f"churn (queries={n_queries}, batches={n_update_batches}x{batch_size}, "
            f"add={add_fraction}, remove={remove_fraction})"
        ),
    )
