"""LRU result cache for the serving layer.

Entries are keyed on ``(query, k, index_version)``.  The index version is a
monotonic counter bumped by every state write-back
(:attr:`repro.core.ReverseTopKIndex.version`), so a refinement persisted into
the index implicitly invalidates all earlier answers: lookups always use the
*current* version, so stale entries never match again.

Aging out alone is not enough under churn, though: every version bump
strands a full generation of unmatchable keys, and LRU aging only removes
them under *insertion* pressure — exactly what a cache-friendly hot working
set does not generate.  The stranded entries then pin their heavyweight
:class:`QueryResult` payloads (per-query ``n``-length proximity vectors)
indefinitely and inflate the cache's occupancy.  The service therefore calls
:meth:`ResultCache.purge_versions_below` right after each bump (a persisted
refinement, or a dynamic-graph update batch), dropping the dead generation
eagerly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
import threading
from typing import Dict, Hashable, Optional, Tuple

from .._validation import check_non_negative_int
from ..core.query import QueryResult

#: Cache key: (query node, depth k, index version at lookup time).
CacheKey = Tuple[int, int, int]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters.

    Attributes
    ----------
    hits / misses:
        Lookup outcomes since construction (or the last :meth:`ResultCache.clear`).
    insertions:
        Number of entries ever stored.
    evictions:
        Entries displaced by the LRU policy (capacity pressure only).
    purged:
        Dead-generation entries dropped by
        :meth:`ResultCache.purge_versions_below` after index version bumps.
    size / capacity:
        Current and maximum entry counts.
    """

    hits: int
    misses: int
    insertions: int
    evictions: int
    size: int
    capacity: int
    purged: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when no lookups yet)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Counter snapshot suitable for JSON metrics output."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "purged": self.purged,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Thread-safe LRU cache mapping :data:`CacheKey` to :class:`QueryResult`.

    A capacity of ``0`` disables caching entirely (every lookup misses, puts
    are dropped), which lets the service expose a single code path.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = check_non_negative_int(capacity, "capacity")
        self._entries: "OrderedDict[Hashable, QueryResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0
        self._purged = 0
        self._obs: Optional[Dict[str, object]] = None

    def bind_registry(self, registry) -> None:
        """Mirror the cache counters into a metrics registry.

        The instance counters remain authoritative (and instance-local);
        the registry children are an additive mirror labeled by outcome so
        hit rates show up in the shared exposition.
        """
        lookups = registry.counter(
            "repro_cache_lookups_total",
            "Result-cache lookups by outcome",
            labels=("outcome",),
        )
        events = registry.counter(
            "repro_cache_events_total",
            "Result-cache mutations by kind",
            labels=("kind",),
        )
        self._obs = {
            "hit": lookups.labels(outcome="hit"),
            "miss": lookups.labels(outcome="miss"),
            "insert": events.labels(kind="insert"),
            "evict": events.labels(kind="evict"),
            "purge": events.labels(kind="purge"),
            "size": registry.gauge(
                "repro_cache_size", "Entries currently held by the result cache"
            ),
        }

    def get(self, key: CacheKey) -> Optional[QueryResult]:
        """Return the cached result for ``key`` (marking it most-recent), or None."""
        obs = self._obs
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                if obs is not None:
                    obs["miss"].inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            if obs is not None:
                obs["hit"].inc()
            return result

    def put(self, key: CacheKey, result: QueryResult) -> None:
        """Store ``result`` under ``key``, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        obs = self._obs
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = result
                return
            self._entries[key] = result
            self._insertions += 1
            if obs is not None:
                obs["insert"].inc()
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                if obs is not None:
                    obs["evict"].inc()
            if obs is not None:
                obs["size"].set(len(self._entries))

    def purge_versions_below(self, version: int) -> int:
        """Eagerly drop entries keyed under an index version older than ``version``.

        Version-keyed entries can never match again once the index moves
        past them, but LRU aging only drops them under insertion pressure —
        which a hot working set served from cache never generates — so each
        update bump would otherwise pin one full generation of heavyweight
        results indefinitely.  The serving layer calls this on its
        post-update version bump; returns the number of entries dropped.

        Only keys following the :data:`CacheKey` layout (version in the
        third slot) are considered; foreign keys are left untouched.
        """
        with self._lock:
            dead = [
                key
                for key in self._entries
                if isinstance(key, tuple)
                and len(key) >= 3
                and isinstance(key[2], int)
                and key[2] < version
            ]
            for key in dead:
                del self._entries[key]
            self._purged += len(dead)
            if self._obs is not None and dead:
                self._obs["purge"].inc(len(dead))
                self._obs["size"].set(len(self._entries))
            return len(dead)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._insertions = 0
            self._evictions = self._purged = 0

    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                insertions=self._insertions,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
                purged=self._purged,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ResultCache(size={stats.size}/{stats.capacity}, "
            f"hits={stats.hits}, misses={stats.misses})"
        )
