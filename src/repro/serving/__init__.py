"""Serving runtime: cached, batched, parallel reverse top-k query service.

This layer turns the synchronous :class:`~repro.core.ReverseTopKEngine` into
a serving system that amortizes work across requests:

``cache``
    Version-keyed LRU result cache (:class:`ResultCache`); index refinements
    bump :attr:`ReverseTopKIndex.version` and implicitly invalidate stale
    answers.
``batching``
    In-flight request dedup and same-``k`` batch planning
    (:class:`BatchScheduler`).
``parallel``
    Thread/process fan-out of read-only batches over an engine snapshot
    (:class:`ParallelExecutor`).
``snapshot``
    Content-addressed on-disk index archives for warm-start
    (:class:`SnapshotManager`).
``service``
    The :class:`ReverseTopKService` façade wiring the above together, with a
    metrics snapshot (:class:`ServiceMetrics`).

Answers are always identical to direct engine queries — the layer only
changes when and how often the engine runs.
"""

from .batching import BatchPlan, BatchScheduler, Request
from .cache import CacheKey, CacheStats, ResultCache
from .parallel import BACKENDS, ParallelExecutor, WorkerReport
from .service import ReverseTopKService, ServiceConfig, ServiceMetrics
from .snapshot import (
    SnapshotManager,
    graph_fingerprint,
    params_fingerprint,
    snapshot_key,
)

__all__ = [
    "BACKENDS",
    "BatchPlan",
    "BatchScheduler",
    "CacheKey",
    "CacheStats",
    "ParallelExecutor",
    "Request",
    "ResultCache",
    "ReverseTopKService",
    "ServiceConfig",
    "ServiceMetrics",
    "SnapshotManager",
    "WorkerReport",
    "graph_fingerprint",
    "params_fingerprint",
    "snapshot_key",
]
