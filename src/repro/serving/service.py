"""The :class:`ReverseTopKService` façade — cache, batch, fan out, measure.

The service owns a :class:`ReverseTopKEngine` and serves request bursts
through a fixed pipeline:

1. **cache** — each ``(query, k)`` is probed against the LRU result cache
   under the *current* index version;
2. **dedup + batch** — cache misses are deduplicated in-flight and grouped
   into same-``k`` batches (:class:`BatchScheduler`);
3. **execute** — batches run through the read-only engine entry point,
   optionally fanned across a thread or process pool
   (:class:`ParallelExecutor`);
4. **measure** — per-query latencies, cache counters, dedup savings and
   worker timings accumulate into the :meth:`ReverseTopKService.metrics`
   snapshot.

Serving never mutates the index.  Refinements that *should* persist go
through :meth:`ReverseTopKService.refine`, which bumps the index version and
thereby invalidates every cached answer computed against the older state.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import scipy.sparse as sp

from .._validation import (
    check_membership,
    check_node_index,
    check_non_negative_int,
    check_positive_int,
)
from ..core.config import IndexParams
from ..core.query import SCAN_MODES, QueryResult, ReverseTopKEngine
from ..exceptions import InvalidParameterError, ServiceClosedError
from ..graph.digraph import DiGraph
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.tracing import trace_span
from ..utils.timer import LatencyStats, Timer
from ..workloads.queries import QueryWorkload
from .batching import BATCH_SIZE_BUCKETS, BatchScheduler, Request
from .cache import CacheStats, ResultCache
from .parallel import BACKENDS, ParallelExecutor
from .snapshot import SnapshotManager

PathLikeOrManager = Union[str, "SnapshotManager"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving pipeline.

    Attributes
    ----------
    cache_capacity:
        Maximum entries in the LRU result cache; ``0`` disables caching.
    max_batch_size:
        Largest same-``k`` batch handed to the executor in one task.
    n_workers:
        Worker count for parallel batch execution; ``0`` or ``1`` runs
        batches sequentially in-process.
    backend:
        ``"thread"`` (shared engine) or ``"process"`` (snapshot per worker).
    scan_mode:
        Scan implementation forwarded to the engine (``"vectorized"`` /
        ``"scalar"``).
    """

    cache_capacity: int = 1024
    max_batch_size: int = 64
    n_workers: int = 0
    backend: str = "thread"
    scan_mode: str = "vectorized"

    def __post_init__(self) -> None:
        check_non_negative_int(self.cache_capacity, "cache_capacity")
        check_positive_int(self.max_batch_size, "max_batch_size")
        check_non_negative_int(self.n_workers, "n_workers")
        check_membership(self.backend, BACKENDS, "backend")
        check_membership(self.scan_mode, SCAN_MODES, "scan_mode")


@dataclass(frozen=True)
class ServiceMetrics:
    """Immutable snapshot of the service counters (the metrics "endpoint").

    Attributes
    ----------
    n_requests:
        Requests received (cache hits included).
    n_cache_hits / n_deduplicated:
        Requests answered from cache / collapsed onto an in-flight duplicate.
    n_engine_queries:
        Queries actually evaluated by the engine.
    n_batches:
        Executor tasks dispatched.
    n_refinements:
        ``update_index=True`` refinement queries served.
    index_version:
        The index mutation counter at snapshot time.
    serve_seconds:
        Wall-clock total across all ``serve`` calls.
    worker_seconds:
        Summed busy time across executor workers (> ``serve_seconds`` means
        real parallel overlap).
    cache:
        The underlying :class:`CacheStats`.
    latency:
        Summary of per-query engine latencies (:meth:`LatencyStats.as_dict`).
    """

    n_requests: int
    n_cache_hits: int
    n_deduplicated: int
    n_engine_queries: int
    n_batches: int
    n_refinements: int
    index_version: int
    serve_seconds: float
    worker_seconds: float
    cache: CacheStats
    latency: Dict[str, float]

    @property
    def throughput_qps(self) -> float:
        """Requests served per wall-clock second (0.0 before any serve)."""
        return self.n_requests / self.serve_seconds if self.serve_seconds else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "n_requests": self.n_requests,
            "n_cache_hits": self.n_cache_hits,
            "n_deduplicated": self.n_deduplicated,
            "n_engine_queries": self.n_engine_queries,
            "n_batches": self.n_batches,
            "n_refinements": self.n_refinements,
            "index_version": self.index_version,
            "serve_seconds": self.serve_seconds,
            "worker_seconds": self.worker_seconds,
            "throughput_qps": self.throughput_qps,
            "cache": self.cache.as_dict(),
            "latency": self.latency,
        }


class _ReadWriteLock:
    """Many concurrent readers xor one writer.

    ``serve`` holds the read side while its batches scan the index's columnar
    views; ``refine`` holds the write side while persisting state write-backs
    that rewrite those views in place.  Without this exclusion a scanning
    thread could observe a half-updated column (new lower bounds with the old
    residual mass) and return a wrong, then cached, answer.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            # Writer preference: new readers also yield to a *queued* writer,
            # otherwise overlapping serve bursts could keep the reader count
            # above zero forever and starve refine() indefinitely.
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class ReverseTopKService:
    """Cached, batched, parallel serving façade over a reverse top-k engine.

    Typical usage::

        service = ReverseTopKService.from_graph(graph, snapshot_dir="snapshots")
        results = service.serve([(42, 10), (7, 10), (42, 10)])  # third is a hit
        print(service.metrics().as_dict())

    Answers are always identical to direct ``engine.query`` calls: caching,
    deduplication and parallel fan-out only change *when* and *how often*
    the engine runs, never what it computes.
    """

    def __init__(
        self,
        engine: ReverseTopKEngine,
        config: Optional[ServiceConfig] = None,
        *,
        warm_started: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServiceConfig()
        self.warm_started = bool(warm_started)
        self._cache = ResultCache(self.config.cache_capacity)
        self._scheduler = BatchScheduler(self.config.max_batch_size)
        self._executor = ParallelExecutor(
            engine, n_workers=self.config.n_workers, backend=self.config.backend
        )
        self._lock = threading.Lock()
        self._index_lock = _ReadWriteLock()
        self._closed = False
        self._close_lock = threading.Lock()
        self._latency = LatencyStats()
        self._n_requests = 0
        self._n_cache_hits = 0
        self._n_deduplicated = 0
        self._n_engine_queries = 0
        self._n_batches = 0
        self._n_refinements = 0
        self._serve_seconds = 0.0
        self._worker_seconds = 0.0
        self.bind_registry(registry if registry is not None else get_registry())

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Bind (or re-bind) this service's telemetry to ``registry``.

        The instance counters stay authoritative for :meth:`metrics` (JSON
        shape unchanged, instance-local semantics preserved); the registry
        children are an additive mirror feeding the shared exposition.  The
        network server re-binds rollover clones onto its own registry so a
        generation swap never splits the time series.
        """
        self.registry = registry
        self._obs = {
            "requests": registry.counter(
                "repro_service_requests_total", "Requests received (cache hits included)"
            ),
            "cache_hits": registry.counter(
                "repro_service_cache_hits_total", "Requests answered from the result cache"
            ),
            "deduplicated": registry.counter(
                "repro_service_deduplicated_total",
                "Requests collapsed onto an in-flight duplicate",
            ),
            "engine_queries": registry.counter(
                "repro_service_engine_queries_total", "Queries evaluated by the engine"
            ),
            "batches": registry.counter(
                "repro_service_batches_total", "Executor batch tasks dispatched"
            ),
            "refinements": registry.counter(
                "repro_service_refinements_total",
                "Persisted (update_index=True) refinement queries",
            ),
            "index_version": registry.gauge(
                "repro_index_version", "Current index mutation counter"
            ),
        }
        # One sample list, two exports: the LatencyStats backs the registry
        # histogram, so exact percentiles (JSON) and bucket counts
        # (Prometheus) can never drift apart.
        self._obs["latency"] = registry.histogram(
            "repro_engine_query_seconds", "Per-query engine evaluation seconds"
        ).bind(self._latency)
        self._cache.bind_registry(registry)
        self._scheduler.batch_size_histogram = registry.histogram(
            "repro_batch_size",
            "Planned executor batch sizes (queries per batch)",
            buckets=BATCH_SIZE_BUCKETS,
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: DiGraph,
        params: Optional[IndexParams] = None,
        *,
        config: Optional[ServiceConfig] = None,
        snapshot_dir: Optional[PathLikeOrManager] = None,
        transition: Optional[sp.spmatrix] = None,
        n_shards: Optional[int] = None,
        memory_budget: Optional[int] = None,
        scan_workers: int = 0,
        scan_precision: str = "float64",
    ) -> "ReverseTopKService":
        """Build (or warm-start) a service for ``graph``.

        With ``snapshot_dir`` the index is loaded from a content-addressed
        snapshot when one matches ``(graph, params)`` — cold-start becomes a
        single archive read — and otherwise built once and archived for the
        next start.  ``service.warm_started`` records which path ran.

        ``n_shards`` switches the service to the partitioned index: ``P``
        contiguous node-range shards behind a
        :class:`~repro.core.sharding.ShardedReverseTopKEngine` router.
        ``memory_budget`` (bytes) selects the shard backing — when the index
        does not fit, shards are served as ``np.memmap`` views over the
        snapshot layout (``snapshot_dir`` required) instead of resident
        arrays — and ``scan_workers > 1`` fans the per-shard scan across a
        thread pool.  Answers are bit-identical to the monolithic engine.

        ``scan_precision="float32"`` screens the columnar scan stages
        against the float32 lower-bound mirror (for a sharded memmap layout,
        the half-size ``.lower32.npy`` shard files), re-checking borderline
        nodes at float64 — served answers stay bit-identical.
        """
        engine, _, warm_started = cls._prepare_engine(
            graph,
            params,
            snapshot_dir,
            transition,
            n_shards=n_shards,
            memory_budget=memory_budget,
            scan_workers=scan_workers,
            scan_precision=scan_precision,
        )
        return cls(engine, config, warm_started=warm_started)

    @staticmethod
    def _prepare_engine(
        graph: DiGraph,
        params: Optional[IndexParams],
        snapshot_dir: Optional[PathLikeOrManager],
        transition: Optional[sp.spmatrix],
        *,
        n_shards: Optional[int] = None,
        memory_budget: Optional[int] = None,
        scan_workers: int = 0,
        scan_precision: str = "float64",
    ) -> Tuple[ReverseTopKEngine, Optional["SnapshotManager"], bool]:
        """Shared warm-start wiring behind every ``from_graph`` classmethod.

        Returns ``(engine, snapshot_manager, warm_started)``; the manager is
        ``None`` when no snapshot directory was configured.  Kept in one
        place so the static and dynamic service façades can never drift in
        how they derive the transition, coerce the snapshot manager, or
        decide between archive load and fresh build — monolithic or sharded.
        """
        from ..core.sharding import ShardedReverseTopKEngine, build_sharded_index
        from ..graph.transition import transition_matrix

        if n_shards is None and (memory_budget is not None or scan_workers):
            # Silently serving a full-RAM monolithic engine to a caller who
            # asked for a budget (or a shard-scan pool) would defeat the one
            # thing they asked for — fail loudly instead.
            raise InvalidParameterError(
                "memory_budget and scan_workers only apply to the partitioned "
                "index; pass n_shards=... to enable it"
            )
        matrix = transition if transition is not None else transition_matrix(graph)
        manager = (
            snapshot_dir
            if snapshot_dir is None or isinstance(snapshot_dir, SnapshotManager)
            else SnapshotManager(snapshot_dir)
        )
        if n_shards is not None:
            if manager is None:
                index = build_sharded_index(
                    graph,
                    params,
                    transition=matrix,
                    n_shards=n_shards,
                    memory_budget=memory_budget,
                )
                from_snapshot = False
            else:
                index, from_snapshot = manager.build_or_load_sharded(
                    graph,
                    params,
                    transition=matrix,
                    n_shards=n_shards,
                    memory_budget=memory_budget,
                )
            engine = ShardedReverseTopKEngine(
                matrix,
                index,
                scan_workers=scan_workers,
                scan_precision=scan_precision,
            )
            return engine, manager, from_snapshot
        if manager is None:
            engine = ReverseTopKEngine.build(
                graph, params, transition=matrix, scan_precision=scan_precision
            )
            return engine, None, False
        index, from_snapshot = manager.load_or_build(graph, params, transition=matrix)
        return (
            ReverseTopKEngine(matrix, index, scan_precision=scan_precision),
            manager,
            from_snapshot,
        )

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def query(self, query: int, k: int = 10) -> QueryResult:
        """Serve a single request through the full pipeline."""
        return self.serve([(query, k)])[0]

    def serve(self, requests: Sequence[Request]) -> List[QueryResult]:
        """Serve a burst of ``(query, k)`` requests, preserving order.

        The burst goes through cache lookup, in-flight dedup, same-``k``
        batching, and (when configured) parallel fan-out.  Deduplicated and
        cached requests receive independent defensive copies of the shared
        computation (read-only answer arrays are shared; the mutable
        statistics are per-copy), so no caller can corrupt another caller's
        — or the cache's — result.
        """
        self._ensure_open()
        requests = [(int(q), int(k)) for q, k in requests]
        for query, _ in requests:
            check_node_index(query, self.engine.n_nodes, "query")
        use_cache = self.config.cache_capacity > 0
        worker_seconds = 0.0
        engine_latency = LatencyStats()
        with trace_span("service.serve") as span, Timer() as wall, \
                self._index_lock.read():
            # A close() racing this burst drains readers through the write
            # side of the index lock before releasing any resource, so a
            # burst that acquired the read side *after* the drain must not
            # proceed onto the shut-down executor.
            self._ensure_open()
            # Read the version only once the read lock is held: a refine()
            # completing in between would otherwise let this burst probe (and
            # repopulate) the cache under the already-dead version key.
            version = self.engine.index.version
            lookup = (
                (lambda request: self._cache.get((request[0], request[1], version)))
                if use_cache
                else None
            )
            with trace_span("batch.plan"):
                plan = self._scheduler.plan(requests, lookup)
            if span is not None:
                span.annotate(
                    n_requests=plan.n_requests,
                    n_cache_hits=plan.n_cache_hits,
                    n_deduplicated=plan.n_deduplicated,
                    n_batches=len(plan.batches),
                    index_version=version,
                )
            # Defensive copies all the way out: the cache keeps its own
            # pristine object, and every awaiting position gets a result
            # whose mutable statistics nobody else holds.
            answered: Dict[int, QueryResult] = {
                position: result.copy() for position, result in plan.cached.items()
            }
            # All batches dispatch together: heterogeneous-k bursts (and
            # same-k overflow chunks) fan across the pool concurrently.
            # (With n_workers > 1 the engine runs on pool threads, outside
            # this trace context; its spans then simply don't attach.)
            with trace_span("batch.execute"):
                groups, reports = self._executor.run_many(
                    plan.batches, scan_mode=self.config.scan_mode
                )
            worker_seconds += sum(report.seconds for report in reports)
            for (k, queries), batch_results in zip(plan.batches, groups):
                for query, result in zip(queries, batch_results):
                    engine_latency.record(result.statistics.seconds)
                    if use_cache:
                        self._cache.put((query, k, version), result)
                    for position in plan.assignments[(query, k)]:
                        answered[position] = result.copy()

        with self._lock:
            self._n_requests += plan.n_requests
            self._n_cache_hits += plan.n_cache_hits
            self._n_deduplicated += plan.n_deduplicated
            self._n_engine_queries += plan.n_unique_misses
            self._n_batches += len(plan.batches)
            self._serve_seconds += wall.elapsed
            self._worker_seconds += worker_seconds
            self._latency.merge(engine_latency)
        obs = self._obs
        obs["requests"].inc(plan.n_requests)
        obs["cache_hits"].inc(plan.n_cache_hits)
        obs["deduplicated"].inc(plan.n_deduplicated)
        obs["engine_queries"].inc(plan.n_unique_misses)
        obs["batches"].inc(len(plan.batches))
        obs["index_version"].set(version)
        return [answered[position] for position in range(len(requests))]

    def serve_workload(self, workload: QueryWorkload) -> List[QueryResult]:
        """Serve every query of a :class:`QueryWorkload` at its depth ``k``."""
        return self.serve([(query, workload.k) for query in workload])

    # ------------------------------------------------------------------ #
    # index refinement (the only write path)
    # ------------------------------------------------------------------ #
    def refine(self, query: int, k: int = 10) -> QueryResult:
        """Evaluate one query with ``update_index=True`` (persisting bounds).

        Any refinement written back bumps the index version: cached answers
        computed against the older state stop matching and are purged from
        the cache eagerly.  Process pool workers hold pickled snapshots, so
        their pool is discarded and respawned lazily against the updated
        index.

        Refinement takes the write side of the index lock, so it never
        rewrites the columnar views while an in-flight ``serve`` batch is
        scanning them (thread workers share those arrays).
        """
        self._ensure_open()
        with self._index_lock.write():
            self._ensure_open()
            version = self.engine.index.version
            result = self.engine.query(
                query, k, update_index=True, scan_mode=self.config.scan_mode
            )
            self._discard_stale_workers(version)
            # Eagerly drop the stranded cache generation: its keys can never
            # match the bumped version again, and LRU aging would leave them
            # pinning heavyweight results until insertion pressure arrives.
            self._cache.purge_versions_below(self.engine.index.version)
            # Capture the post-refinement version while the write lock still
            # pins it: once released, a concurrent refine() may bump it again
            # and the gauge would pair this refinement with a later version.
            version_after = self.engine.index.version
        with self._lock:
            self._n_refinements += 1
        self._obs["refinements"].inc()
        self._obs["index_version"].set(version_after)
        return result

    def _discard_stale_workers(self, version_before: int) -> None:
        """Respawn process-pool snapshots after an index mutation.

        Must run *before* the write side of the index lock is released: once
        a ``serve()`` burst can enter, it must find either the old version
        with the old pool or the new version with a fresh pool — never
        new-version results computed on stale workers.  Thread workers share
        the live engine and never go stale.  Shared by :meth:`refine` and
        the dynamic subsystem's graph-update path.
        """
        if (
            self.engine.index.version != version_before
            and self.config.backend == "process"
        ):
            self._executor.invalidate()

    # ------------------------------------------------------------------ #
    # metrics / lifecycle
    # ------------------------------------------------------------------ #
    def metrics(self) -> ServiceMetrics:
        """A consistent snapshot of every service counter.

        The index version is read under the read side of the index lock (a
        refine() mid-rewrite must not leak a half-bumped version), then the
        counter block is snapshotted under the counter lock.  The two locks
        are deliberately *not* nested: metrics() must never stall a running
        refinement, and keeping the acquisition sequential keeps the lock
        graph acyclic.
        """
        with self._index_lock.read():
            index_version = self.engine.index.version
        with self._lock:
            return ServiceMetrics(
                n_requests=self._n_requests,
                n_cache_hits=self._n_cache_hits,
                n_deduplicated=self._n_deduplicated,
                n_engine_queries=self._n_engine_queries,
                n_batches=self._n_batches,
                n_refinements=self._n_refinements,
                index_version=index_version,
                serve_seconds=self._serve_seconds,
                worker_seconds=self._worker_seconds,
                cache=self._cache.stats(),
                latency=self._latency.as_dict(),
            )

    def clear_cache(self) -> None:
        """Drop every cached answer (counters reset too)."""
        self._cache.clear()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (or is running)."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosedError(f"{type(self).__name__} is closed")

    def close(self) -> None:
        """Release the executor's worker pool (idempotent, concurrency-safe).

        Safe to call from any thread, any number of times, including while
        ``serve``/``refine`` calls are in flight:

        * the closed flag flips first, so new requests fail fast with
          :class:`~repro.exceptions.ServiceClosedError` instead of racing
          the teardown;
        * the write side of the index lock is then acquired once, draining
          every in-flight request before any resource is released (a burst
          that slipped past the flag re-checks it under the read lock);
        * concurrent ``close`` calls serialize on an internal lock — the
          second caller returns only after the teardown completed.

        A sharded engine may hold its own per-shard scan pool; the service
        owns the engine it serves, so that pool is released here too.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            # Drain: every in-flight serve() holds the read side and every
            # refine()/apply_updates() the write side; acquiring (and
            # immediately releasing) the write side waits them all out.
            with self._index_lock.write():
                pass
            self._executor.close()
            engine_close = getattr(self.engine, "close", None)
            if callable(engine_close):
                engine_close()

    def __enter__(self) -> "ReverseTopKService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ReverseTopKService(n_nodes={self.engine.n_nodes}, "
            f"cache={self.config.cache_capacity}, "
            f"batch={self.config.max_batch_size}, "
            f"workers={self.config.n_workers}/{self.config.backend})"
        )
