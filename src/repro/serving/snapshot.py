"""Warm-start snapshots: content-addressed on-disk index archives.

Cold start is the dominant serving cost — building the LBI index runs
batched BCA over every node.  The :class:`SnapshotManager` removes it from
the steady state: an index built for ``(graph, params, transition)`` is
stored under a name derived from a SHA-256 over the graph's canonical CSR
arrays, every :class:`IndexParams` field, and the transition matrix the
index was built against, so a service restart with the *same* inputs loads
the archive instead of rebuilding, while any change to any of them produces
a different key and triggers a clean rebuild (never a silently mismatched
index).

Archives are written through :meth:`ReverseTopKIndex.save`, which is atomic
(temp file + ``os.replace``): a crash mid-store can never corrupt an
existing snapshot, and a corrupted or unreadable archive is treated as a
miss, not an error.
"""

from __future__ import annotations

from dataclasses import fields, replace
import hashlib
import os
from pathlib import Path
from typing import Optional, Tuple, Union

import scipy.sparse as sp

from ..core.config import IndexParams
from ..core.index import ReverseTopKIndex
from ..core.lbi import build_index, build_index_parallel
from ..core.sharding import ShardedReverseTopKIndex, build_sharded_index
from ..exceptions import SerializationError
from ..graph.digraph import DiGraph

PathLike = Union[str, os.PathLike]

#: Hex digest length used in snapshot file names (collision-safe in practice).
_KEY_CHARS = 32


def graph_fingerprint(graph: DiGraph) -> str:
    """SHA-256 over the graph's canonical CSR arrays (and labels, if any).

    :class:`DiGraph` canonicalises its adjacency at construction (sorted
    indices, duplicates summed, explicit zeros removed), so two graphs built
    from equivalent edge sets hash identically regardless of input order.
    """
    adjacency = graph.adjacency
    digest = hashlib.sha256()
    digest.update(f"digraph:{adjacency.shape[0]}:{adjacency.nnz}".encode())
    digest.update(adjacency.indptr.tobytes())
    digest.update(adjacency.indices.tobytes())
    digest.update(adjacency.data.tobytes())
    if graph.node_names is not None:
        for name in graph.node_names:
            digest.update(name.encode())
            digest.update(b"\x00")
    return digest.hexdigest()


def transition_fingerprint(matrix: sp.spmatrix) -> str:
    """SHA-256 over a transition matrix's canonical CSR arrays."""
    # Copy before canonicalising: csr_matrix(csr) shares the caller's arrays
    # and sum_duplicates/sort_indices would otherwise mutate them in place.
    canonical = sp.csr_matrix(matrix, copy=True)
    canonical.sum_duplicates()
    canonical.sort_indices()
    digest = hashlib.sha256()
    digest.update(f"transition:{canonical.shape[0]}:{canonical.nnz}".encode())
    digest.update(canonical.indptr.tobytes())
    digest.update(canonical.indices.tobytes())
    digest.update(canonical.data.tobytes())
    return digest.hexdigest()


#: IndexParams fields that provably cannot change index *contents* and are
#: therefore excluded from the snapshot key.  ``block_size`` only shapes the
#: vectorized backend's working memory: per-source trajectories are bitwise
#: independent of the block composition (a tested kernel invariant), so
#: retuning it must not invalidate every warm-start archive.
_CONTENT_NEUTRAL_FIELDS = frozenset({"block_size"})


def params_fingerprint(params: IndexParams) -> str:
    """SHA-256 over every content-affecting :class:`IndexParams` field.

    Iterating ``dataclasses.fields`` means a future parameter added to
    ``IndexParams`` automatically changes the key — an old snapshot can
    never be mistaken for one built under the new parameter — unless it is
    explicitly declared content-neutral (:data:`_CONTENT_NEUTRAL_FIELDS`).
    """
    digest = hashlib.sha256()
    for spec in fields(params):
        if spec.name in _CONTENT_NEUTRAL_FIELDS:
            continue
        digest.update(f"{spec.name}={getattr(params, spec.name)!r};".encode())
    return digest.hexdigest()


def snapshot_key(
    graph: DiGraph,
    params: IndexParams,
    transition: Optional[sp.spmatrix] = None,
) -> str:
    """The combined content key for ``(graph, params, transition)``.

    The transition matrix the index was built against participates in the
    key: an index built for, say, the weighted transition must never be
    warm-started for the unweighted one.  ``None`` means "the graph's
    default transition" and hashes as a fixed marker, so callers that let
    :func:`build_index` derive the matrix stay consistent with each other
    (but use a different key than callers passing the same matrix
    explicitly — a spurious rebuild at worst, never a wrong hit).
    """
    digest = hashlib.sha256()
    digest.update(graph_fingerprint(graph).encode())
    digest.update(params_fingerprint(params).encode())
    if transition is None:
        digest.update(b"default-transition")
    else:
        digest.update(transition_fingerprint(transition).encode())
    return digest.hexdigest()[:_KEY_CHARS]


class SnapshotManager:
    """Loads and stores content-addressed index snapshots in one directory."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(
        self,
        graph: DiGraph,
        params: IndexParams,
        transition: Optional[sp.spmatrix] = None,
    ) -> Path:
        """The archive path a ``(graph, params, transition)`` snapshot lives at."""
        return self.directory / f"lbi-{snapshot_key(graph, params, transition)}.npz"

    def load(
        self,
        graph: DiGraph,
        params: IndexParams,
        transition: Optional[sp.spmatrix] = None,
    ) -> Optional[ReverseTopKIndex]:
        """Load the snapshot for ``(graph, params, transition)``; ``None`` on any miss.

        A missing, truncated, or otherwise unreadable archive is a miss —
        the caller rebuilds and overwrites it.
        """
        return self._read_archive(self.path_for(graph, params, transition))

    def _read_archive(self, path: Path) -> Optional[ReverseTopKIndex]:
        if not path.exists():
            return None
        try:
            return ReverseTopKIndex.load(path)
        except SerializationError:
            return None

    def store(
        self,
        index: Union[ReverseTopKIndex, ShardedReverseTopKIndex],
        graph: DiGraph,
        params: Optional[IndexParams] = None,
        *,
        transition: Optional[sp.spmatrix] = None,
    ) -> Path:
        """Persist ``index`` under its content key (atomic write).

        A :class:`ShardedReverseTopKIndex` is persisted as its on-disk
        sharded layout (one directory per content key and shard count); a
        monolithic index as the usual single ``.npz`` archive.  The dynamic
        service calls this after every maintenance batch, so a sharded
        deployment re-archives shard by shard instead of materialising one
        monolithic archive.
        """
        effective = params if params is not None else index.params
        if isinstance(index, ShardedReverseTopKIndex):
            return index.persist(
                self.sharded_path_for(
                    graph, effective, transition, n_shards=index.n_shards
                )
            )
        path = self.path_for(graph, effective, transition)
        index.save(path)
        return path

    def load_or_build(
        self,
        graph: DiGraph,
        params: Optional[IndexParams] = None,
        *,
        transition: Optional[sp.spmatrix] = None,
        store_on_miss: bool = True,
    ) -> Tuple[ReverseTopKIndex, bool]:
        """Warm-start: return ``(index, from_snapshot)`` for ``(graph, params)``.

        On a hit the archived index is loaded; on a miss the index is built
        (and, with ``store_on_miss``, archived for the next start).  The key
        is computed from the *effective* parameters — ``params.for_graph``
        clamps capacity and hub budget to the graph, exactly as
        :func:`build_index` does — so the snapshot matches what a fresh
        build would produce.  One shared implementation with
        :meth:`build_or_load` (the serial case), so the two contracts can
        never drift.
        """
        return self.build_or_load(
            graph, params, transition=transition, store_on_miss=store_on_miss
        )

    def build_or_load(
        self,
        graph: DiGraph,
        params: Optional[IndexParams] = None,
        *,
        transition: Optional[sp.spmatrix] = None,
        parallel: Optional[int] = None,
        store_on_miss: bool = True,
    ) -> Tuple[ReverseTopKIndex, bool]:
        """Warm-start with an optionally parallel cold path.

        Identical contract to :meth:`load_or_build` — ``(index,
        from_snapshot)`` under the content key of the *effective* parameters
        — but on a miss the index is built with the non-hub node range
        sharded across ``parallel`` worker processes
        (:func:`~repro.core.lbi.build_index_parallel`); the per-shard states
        are merged into one :class:`ReverseTopKIndex` that is bit-identical
        to a serial build, so hits and misses, parallel or not, all produce
        the same archive.  ``parallel=None`` (or ``<= 1``) builds serially.
        """
        effective = (params if params is not None else IndexParams()).for_graph(
            graph.n_nodes
        )
        # Hash the content key once; a cold start would otherwise pay the
        # graph/transition fingerprinting twice (load, then store).
        path = self.path_for(graph, effective, transition)
        cached = self._read_archive(path)
        if cached is not None:
            if cached.params.block_size != effective.block_size:
                # block_size is content-neutral (excluded from the key) but
                # sizes every downstream kernel's dense working set: a hit
                # must honor the caller's retune, not resurrect the width
                # the archive happened to be built with.
                cached.params = replace(
                    cached.params, block_size=effective.block_size
                )
            return cached, True
        if parallel is not None and parallel > 1:
            index = build_index_parallel(
                graph, effective, transition=transition, n_workers=parallel
            )
        else:
            index = build_index(graph, effective, transition=transition)
        if store_on_miss:
            index.save(path)
        return index, False

    # ------------------------------------------------------------------ #
    # sharded layouts
    # ------------------------------------------------------------------ #
    def sharded_path_for(
        self,
        graph: DiGraph,
        params: IndexParams,
        transition: Optional[sp.spmatrix] = None,
        *,
        n_shards: int,
    ) -> Path:
        """The layout directory a sharded snapshot lives at.

        The shard count participates in the name (not the content key): two
        partitionings of the same index hold identical values in different
        file layouts, so they coexist side by side and a changed ``n_shards``
        triggers a re-partition, never a mismatched load.
        """
        key = snapshot_key(graph, params, transition)
        return self.directory / f"lbi-{key}-s{int(n_shards)}"

    def build_or_load_sharded(
        self,
        graph: DiGraph,
        params: Optional[IndexParams] = None,
        *,
        transition: Optional[sp.spmatrix] = None,
        n_shards: int = 4,
        memory_budget: Optional[int] = None,
        parallel: Optional[int] = None,
        store_on_miss: bool = True,
    ) -> Tuple[ShardedReverseTopKIndex, bool]:
        """Warm-start a sharded index: ``(index, from_snapshot)``.

        Same content-key contract as :meth:`build_or_load`, but the archive
        is the partitioned on-disk layout.  On a miss the index is built
        shard by shard (:func:`~repro.core.sharding.build_sharded_index`,
        optionally across ``parallel`` worker processes) with **no
        monolithic merge step**; under a tight ``memory_budget`` each shard
        streams straight to the layout and is served memmap-backed, so peak
        build memory is one shard plus the hub matrix.  On a hit the layout
        is opened lazily (or materialised into RAM when the budget allows).
        """
        effective = (params if params is not None else IndexParams()).for_graph(
            graph.n_nodes
        )
        n_shards = min(int(n_shards), max(1, graph.n_nodes))
        path = self.sharded_path_for(
            graph, effective, transition, n_shards=n_shards
        )
        if path.exists():
            try:
                cached = ShardedReverseTopKIndex.load(
                    path, memory_budget=memory_budget
                )
            except SerializationError:
                cached = None  # torn or stale layout: rebuild below
            if cached is not None:
                if cached.params.block_size != effective.block_size:
                    # Content-neutral, but sizes kernel working sets — honor
                    # the caller's retune exactly as the monolithic hit does.
                    cached.params = replace(
                        cached.params, block_size=effective.block_size
                    )
                return cached, True
        index = build_sharded_index(
            graph,
            effective,
            transition=transition,
            n_shards=n_shards,
            directory=path if (store_on_miss or memory_budget is not None) else None,
            memory_budget=memory_budget,
            n_workers=parallel,
        )
        if store_on_miss and index.directory is None:
            # RAM-backed build: archive the layout for the next start.
            index.persist(path)
        return index, False

    def __repr__(self) -> str:
        return f"SnapshotManager(directory={str(self.directory)!r})"
