"""Batch planning: dedup in-flight requests and group same-``k`` work.

The scheduler turns a burst of ``(query, k)`` requests into an execution
plan:

* requests already answerable from the cache are split off as *hits*;
* duplicate misses — the same ``(query, k)`` appearing more than once in the
  burst — are collapsed so each unique pair is computed exactly once and
  fanned back out to every requesting position ("in-flight dedup");
* unique misses are grouped by ``k`` (the engine's batched
  ``query_many``/``query_many_readonly`` path shares validation and the
  columnar views across a same-``k`` group) and chopped into chunks of at
  most ``max_batch_size`` queries, which are also the unit of work handed to
  the parallel executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .._validation import check_positive_int
from ..core.query import QueryResult

#: One request: (query node, depth k).
Request = Tuple[int, int]


@dataclass
class BatchPlan:
    """Execution plan for one burst of requests.

    Attributes
    ----------
    n_requests:
        Total requests in the burst.
    cached:
        ``{position: result}`` for requests answered from the cache.
    assignments:
        ``{(query, k): [positions]}`` — every position waiting on each unique
        computation (length > 1 means in-flight dedup saved work).
    batches:
        ``[(k, [queries])]`` chunks to execute; all queries in a chunk share
        ``k`` and each chunk holds at most ``max_batch_size`` queries.
    """

    n_requests: int = 0
    cached: Dict[int, QueryResult] = field(default_factory=dict)
    assignments: Dict[Request, List[int]] = field(default_factory=dict)
    batches: List[Tuple[int, List[int]]] = field(default_factory=list)

    @property
    def n_cache_hits(self) -> int:
        """Requests served straight from the cache."""
        return len(self.cached)

    @property
    def n_unique_misses(self) -> int:
        """Distinct ``(query, k)`` pairs that must be computed."""
        return len(self.assignments)

    @property
    def n_deduplicated(self) -> int:
        """Requests avoided because an identical one is already in flight."""
        return (self.n_requests - self.n_cache_hits) - self.n_unique_misses


#: Batch-size histogram bucket edges: powers of two up to the default cap.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class BatchScheduler:
    """Plans request bursts into deduplicated, same-``k``, bounded batches."""

    def __init__(self, max_batch_size: int = 64) -> None:
        self.max_batch_size = check_positive_int(max_batch_size, "max_batch_size")
        #: Optional registry histogram observing each planned batch's size
        #: (set by the owning service's ``bind_registry``).
        self.batch_size_histogram = None

    def plan(
        self,
        requests: Sequence[Request],
        lookup: Optional[Callable[[Request], Optional[QueryResult]]] = None,
    ) -> BatchPlan:
        """Build a :class:`BatchPlan` for ``requests``.

        ``lookup`` is the cache probe (``None`` disables caching); it is
        called once per request position so the cache's hit/miss counters
        reflect the raw request stream, not the deduplicated one.
        """
        plan = BatchPlan(n_requests=len(requests))
        order: List[Request] = []  # unique misses in first-seen order
        for position, request in enumerate(requests):
            request = (int(request[0]), int(request[1]))
            result = lookup(request) if lookup is not None else None
            if result is not None:
                plan.cached[position] = result
                continue
            waiting = plan.assignments.get(request)
            if waiting is None:
                plan.assignments[request] = [position]
                order.append(request)
            else:
                waiting.append(position)

        # Group unique misses by k, preserving first-seen order within groups.
        by_k: Dict[int, List[int]] = {}
        for query, k in order:
            by_k.setdefault(k, []).append(query)
        for k, queries in by_k.items():
            for start in range(0, len(queries), self.max_batch_size):
                plan.batches.append((k, queries[start : start + self.max_batch_size]))
        if self.batch_size_histogram is not None:
            for _, queries in plan.batches:
                self.batch_size_histogram.observe(len(queries))
        return plan

    def __repr__(self) -> str:
        return f"BatchScheduler(max_batch_size={self.max_batch_size})"
