"""Parallel fan-out of read-only query batches over an engine snapshot.

The executor takes a same-``k`` batch of queries, splits it into contiguous
chunks, and evaluates the chunks concurrently through the engine's read-only
entry point (:meth:`ReverseTopKEngine.query_many_readonly`):

* ``backend="thread"`` shares one engine across a thread pool.  Read-only
  queries never mutate the index, the columnar views, or the cached CSR
  transpose, so no locking is needed; NumPy/SciPy kernels release the GIL
  for the heavy array work.
* ``backend="process"`` pickles the engine once per worker (via the pool
  initializer) and evaluates chunks against each worker's private snapshot.
  Graph, index, and engine all define slim ``__getstate__`` hooks that drop
  derived caches, so the hand-off ships only canonical state.  A sharded
  engine over clean memmap-backed shards ships *path references* instead of
  arrays: each worker reopens the content-addressed layout locally, so all
  workers share the page cache rather than receiving private copies — the
  per-worker snapshot cost stays O(hub matrix), not O(index).

When the engine is a :class:`~repro.core.sharding.ShardedReverseTopKEngine`
with ``scan_workers > 1``, thread-backend fan-out multiplies: each of the
``n_workers`` batch tasks fans its scan across the engine's shard pool.
Keep ``n_workers * scan_workers`` within the machine's core budget.

Every chunk reports its wall-clock time back as a :class:`WorkerReport`;
the service merges those into its latency/throughput metrics.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
import threading
from typing import List, Optional, Sequence, Tuple

from .._validation import check_membership, check_non_negative_int
from ..core.query import QueryResult, ReverseTopKEngine
from ..utils.timer import Timer

#: Supported executor backends.
BACKENDS = ("thread", "process")

#: Per-process engine snapshot, installed by the pool initializer.
_WORKER_ENGINE: Optional[ReverseTopKEngine] = None


def _initialize_worker(engine: ReverseTopKEngine) -> None:
    """Process-pool initializer: install the engine snapshot in this worker."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = engine


def _process_chunk(
    queries: List[int], k: int, scan_mode: str
) -> Tuple[List[QueryResult], float]:
    """Evaluate one chunk in a pool worker against its engine snapshot."""
    if _WORKER_ENGINE is None:  # pragma: no cover - initializer always runs
        raise RuntimeError("worker process has no engine snapshot installed")
    with Timer() as timer:
        results = _WORKER_ENGINE.query_many_readonly(queries, k, scan_mode=scan_mode)
    return results, timer.elapsed


@dataclass(frozen=True)
class WorkerReport:
    """Wall-clock accounting for one executed chunk."""

    worker: int
    n_queries: int
    seconds: float


class ParallelExecutor:
    """Evaluates same-``k`` query batches across a worker pool.

    ``n_workers <= 1`` degrades to sequential in-process execution (no pool
    is ever created), so the service has a single dispatch path.
    """

    def __init__(
        self,
        engine: ReverseTopKEngine,
        *,
        n_workers: int = 0,
        backend: str = "thread",
    ) -> None:
        self.engine = engine
        self.n_workers = check_non_negative_int(n_workers, "n_workers")
        self.backend = check_membership(backend, BACKENDS, "backend")
        self._pool: Optional[Executor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def is_parallel(self) -> bool:
        """Whether batches actually fan out across workers."""
        return self.n_workers > 1

    def _ensure_pool(self) -> Executor:
        with self._pool_lock:
            if self._pool is None:
                if self.backend == "thread":
                    self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
                else:
                    # Each worker unpickles its own snapshot once, up front.
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.n_workers,
                        initializer=_initialize_worker,
                        initargs=(self.engine,),
                    )
            return self._pool

    def invalidate(self) -> None:
        """Discard the pool (process snapshots go stale when the index mutates).

        Thread workers share the live engine and never go stale, but process
        workers hold private copies pickled at pool creation; after an
        ``update_index=True`` refinement the service calls this so the next
        batch respawns workers against the current index.
        """
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        self.invalidate()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        queries: Sequence[int],
        k: int,
        *,
        scan_mode: str = "vectorized",
    ) -> Tuple[List[QueryResult], List[WorkerReport]]:
        """Evaluate ``queries`` at depth ``k``; results keep the input order.

        A single same-``k`` batch is split into contiguous chunks across the
        workers (sequential executors keep it whole).
        """
        queries = [int(q) for q in queries]
        if not queries:
            return [], []
        if not self.is_parallel or len(queries) == 1:
            chunks = [queries]
        else:
            chunks = _split_evenly(queries, self.n_workers)
        groups, reports = self._dispatch(
            [(k, chunk) for chunk in chunks], scan_mode
        )
        return [result for group in groups for result in group], reports

    def run_many(
        self,
        batches: Sequence[Tuple[int, Sequence[int]]],
        *,
        scan_mode: str = "vectorized",
    ) -> Tuple[List[List[QueryResult]], List[WorkerReport]]:
        """Evaluate several ``(k, queries)`` batches, concurrently when parallel.

        A burst with heterogeneous ``k`` values (or more unique misses than
        one batch holds) produces several independent batches; dispatching
        them together keeps the pool busy instead of awaiting each batch in
        turn.  A single batch falls back to :meth:`run`, which splits it
        across the workers.  Result groups align with the input batches.
        """
        batches = [(int(k), [int(q) for q in queries]) for k, queries in batches]
        if not batches:
            return [], []
        if len(batches) == 1:
            k, queries = batches[0]
            results, reports = self.run(queries, k, scan_mode=scan_mode)
            return [results], reports
        return self._dispatch(batches, scan_mode)

    def _dispatch(
        self, tasks: List[Tuple[int, List[int]]], scan_mode: str
    ) -> Tuple[List[List[QueryResult]], List[WorkerReport]]:
        """Execute ``(k, queries)`` work units, one result group per unit.

        The single shared backend switch: in-process when sequential (or for
        a lone unit, where a pool buys nothing), otherwise one pool task per
        unit on the thread or process backend.
        """
        groups: List[List[QueryResult]] = []
        reports: List[WorkerReport] = []
        if not self.is_parallel or len(tasks) == 1:
            for worker, (k, queries) in enumerate(tasks):
                with Timer() as timer:
                    group = self.engine.query_many_readonly(
                        queries, k, scan_mode=scan_mode
                    )
                groups.append(group)
                reports.append(WorkerReport(worker, len(queries), timer.elapsed))
            return groups, reports

        pool = self._ensure_pool()
        if self.backend == "thread":
            engine = self.engine

            def task(queries: List[int], k: int) -> Tuple[List[QueryResult], float]:
                with Timer() as timer:
                    group = engine.query_many_readonly(queries, k, scan_mode=scan_mode)
                return group, timer.elapsed

            futures = [pool.submit(task, queries, k) for k, queries in tasks]
        else:
            futures = [
                pool.submit(_process_chunk, queries, k, scan_mode)
                for k, queries in tasks
            ]
        for worker, ((k, queries), future) in enumerate(zip(tasks, futures)):
            group, seconds = future.result()
            groups.append(group)
            reports.append(WorkerReport(worker, len(queries), seconds))
        return groups, reports

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(backend={self.backend!r}, n_workers={self.n_workers})"
        )


def _split_evenly(items: List[int], n_chunks: int) -> List[List[int]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced chunks."""
    n_chunks = min(n_chunks, len(items))
    base, extra = divmod(len(items), n_chunks)
    chunks: List[List[int]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks
