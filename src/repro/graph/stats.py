"""Graph summary statistics used by the evaluation harness and DESIGN docs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .digraph import DiGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a directed graph."""

    n_nodes: int
    n_edges: int
    density: float
    mean_out_degree: float
    max_out_degree: int
    max_in_degree: int
    n_dangling: int
    reciprocity: float

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary (for table printing)."""
        return {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "density": self.density,
            "mean_out_degree": self.mean_out_degree,
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "n_dangling": self.n_dangling,
            "reciprocity": self.reciprocity,
        }


def summarize(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    n, m = graph.n_nodes, graph.n_edges
    out_degree = graph.out_degree
    in_degree = graph.in_degree
    density = m / (n * (n - 1)) if n > 1 else 0.0
    adjacency = graph.adjacency
    pattern = adjacency.copy()
    pattern.data = np.ones_like(pattern.data)
    mutual = pattern.multiply(pattern.T).nnz
    reciprocity = mutual / m if m else 0.0
    return GraphStats(
        n_nodes=n,
        n_edges=m,
        density=float(density),
        mean_out_degree=float(out_degree.mean()) if n else 0.0,
        max_out_degree=int(out_degree.max()) if n else 0,
        max_in_degree=int(in_degree.max()) if n else 0,
        n_dangling=int((out_degree == 0).sum()),
        reciprocity=float(reciprocity),
    )


def degree_histogram(graph: DiGraph, *, direction: str = "out") -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(degree_values, counts)`` of the out- or in-degree distribution.

    Useful to confirm generators produce the heavy-tailed distributions the
    hub-selection heuristic relies on.
    """
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    degrees = graph.out_degree if direction == "out" else graph.in_degree
    values, counts = np.unique(degrees, return_counts=True)
    return values.astype(np.int64), counts.astype(np.int64)


def powerlaw_exponent_estimate(graph: DiGraph, *, direction: str = "in") -> float:
    """Crude Hill-style estimate of the degree-distribution exponent.

    Returns the maximum-likelihood power-law exponent of the degree tail
    (degrees >= 1).  The value is only used descriptively in benchmark output.
    """
    degrees = graph.in_degree if direction == "in" else graph.out_degree
    positive = degrees[degrees >= 1].astype(np.float64)
    if positive.size < 2:
        return float("nan")
    d_min = positive.min()
    return float(1.0 + positive.size / np.log(positive / d_min + 1e-12).sum())
