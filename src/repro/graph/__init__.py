"""Graph substrate: directed graphs, transition matrices, generators, datasets.

This package provides everything the reverse top-k algorithms need from the
underlying graph: a compact CSR-backed directed graph type, column-stochastic
transition matrices (uniform and weighted), synthetic graph generators that
mimic the structural properties of the paper's datasets, and simple edge-list
I/O.
"""

from . import datasets
from . import download
from .builder import GraphBuilder, from_edges
from .digraph import DiGraph
from .generators import (
    erdos_renyi_graph,
    scale_free_graph,
    copying_web_graph,
    trust_graph,
    coauthorship_graph,
    spam_host_graph,
    ring_graph,
    star_graph,
    complete_graph,
)
from .io import (
    read_edge_list,
    stream_edge_list,
    write_edge_list,
    read_node_labels,
    write_node_labels,
)
from .stats import GraphStats, degree_histogram, summarize
from .transition import (
    DanglingPolicy,
    transition_matrix,
    weighted_transition_matrix,
    rebuild_transition_columns,
    is_column_stochastic,
)

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "from_edges",
    "DanglingPolicy",
    "transition_matrix",
    "weighted_transition_matrix",
    "rebuild_transition_columns",
    "is_column_stochastic",
    "erdos_renyi_graph",
    "scale_free_graph",
    "copying_web_graph",
    "trust_graph",
    "coauthorship_graph",
    "spam_host_graph",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "datasets",
    "download",
    "read_edge_list",
    "stream_edge_list",
    "write_edge_list",
    "read_node_labels",
    "write_node_labels",
    "GraphStats",
    "degree_histogram",
    "summarize",
]
