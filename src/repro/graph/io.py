"""Edge-list and label I/O.

The paper's datasets are distributed as plain-text edge lists (SNAP / LAW
format): one ``source target [weight]`` triple per line, ``#`` comments
allowed.  Node labels (e.g. spam / normal) come as ``node label`` pairs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, Tuple, Union

import numpy as np

from ..exceptions import SerializationError
from .builder import from_edges
from .digraph import DiGraph

PathLike = Union[str, os.PathLike]


def read_edge_list(
    path: PathLike,
    *,
    comment: str = "#",
    delimiter: str | None = None,
    weighted: bool = False,
) -> DiGraph:
    """Read a directed graph from a plain-text edge list.

    Parameters
    ----------
    path:
        File containing one edge per line: ``source target`` or
        ``source target weight`` when ``weighted`` is true.
    comment:
        Lines starting with this prefix are skipped.
    delimiter:
        Column separator (default: any whitespace).
    weighted:
        Parse a third column as the edge weight.
    """
    path = Path(path)
    edges: list[Tuple[int, int, float]] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith(comment):
                    continue
                parts = line.split(delimiter)
                if len(parts) < 2:
                    raise SerializationError(
                        f"{path}:{line_number}: expected at least 2 columns, got {len(parts)}"
                    )
                source, target = int(parts[0]), int(parts[1])
                weight = float(parts[2]) if weighted and len(parts) > 2 else 1.0
                edges.append((source, target, weight))
    except OSError as exc:
        raise SerializationError(f"cannot read edge list {path}: {exc}") from exc
    if not edges:
        raise SerializationError(f"edge list {path} contains no edges")
    return from_edges(edges)


def write_edge_list(graph: DiGraph, path: PathLike, *, weighted: bool | None = None) -> None:
    """Write ``graph`` as a plain-text edge list.

    ``weighted=None`` (default) writes weights only when the graph is weighted.
    """
    path = Path(path)
    if weighted is None:
        weighted = graph.is_weighted
    try:
        with path.open("w", encoding="utf-8") as handle:
            handle.write(f"# repro edge list: {graph.n_nodes} nodes, {graph.n_edges} edges\n")
            for source, target, weight in graph.edges():
                if weighted:
                    handle.write(f"{source} {target} {weight:.10g}\n")
                else:
                    handle.write(f"{source} {target}\n")
    except OSError as exc:
        raise SerializationError(f"cannot write edge list {path}: {exc}") from exc


def read_node_labels(path: PathLike, *, comment: str = "#") -> Dict[int, str]:
    """Read ``node label`` pairs into a dictionary."""
    path = Path(path)
    labels: Dict[int, str] = {}
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith(comment):
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise SerializationError(
                        f"{path}:{line_number}: expected 'node label', got {line!r}"
                    )
                labels[int(parts[0])] = parts[1]
    except OSError as exc:
        raise SerializationError(f"cannot read labels {path}: {exc}") from exc
    return labels


def write_node_labels(labels: Dict[int, str] | Iterable[Tuple[int, str]], path: PathLike) -> None:
    """Write node labels as ``node label`` lines."""
    if isinstance(labels, dict):
        items = sorted(labels.items())
    else:
        items = sorted(labels)
    path = Path(path)
    try:
        with path.open("w", encoding="utf-8") as handle:
            for node, label in items:
                handle.write(f"{int(node)} {label}\n")
    except OSError as exc:
        raise SerializationError(f"cannot write labels {path}: {exc}") from exc


def labels_to_array(labels: Dict[int, str], n_nodes: int, *, positive: str) -> np.ndarray:
    """Convert a label dict into a 0/1 array where ``positive`` maps to 1."""
    array = np.zeros(n_nodes, dtype=np.int64)
    for node, label in labels.items():
        if 0 <= node < n_nodes and label == positive:
            array[node] = 1
    return array
