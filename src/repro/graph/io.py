"""Edge-list and label I/O.

The paper's datasets are distributed as plain-text edge lists (SNAP / LAW
format): one ``source target [weight]`` triple per line, ``#`` comments
allowed.  Node labels (e.g. spam / normal) come as ``node label`` pairs.
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union
import warnings

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphError, SerializationError
from .builder import from_edges
from .digraph import DiGraph

PathLike = Union[str, os.PathLike]

#: Default number of edges parsed per chunk by :func:`stream_edge_list`.
STREAM_CHUNK_EDGES = 1 << 20


def read_edge_list(
    path: PathLike,
    *,
    comment: str = "#",
    delimiter: str | None = None,
    weighted: bool = False,
) -> DiGraph:
    """Read a directed graph from a plain-text edge list.

    Parameters
    ----------
    path:
        File containing one edge per line: ``source target`` or
        ``source target weight`` when ``weighted`` is true.
    comment:
        Lines starting with this prefix are skipped.
    delimiter:
        Column separator (default: any whitespace).
    weighted:
        Parse a third column as the edge weight.
    """
    path = Path(path)
    edges: list[Tuple[int, int, float]] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith(comment):
                    continue
                parts = line.split(delimiter)
                if len(parts) < 2:
                    raise SerializationError(
                        f"{path}:{line_number}: expected at least 2 columns, got {len(parts)}"
                    )
                source, target = int(parts[0]), int(parts[1])
                weight = float(parts[2]) if weighted and len(parts) > 2 else 1.0
                edges.append((source, target, weight))
    except OSError as exc:
        raise SerializationError(f"cannot read edge list {path}: {exc}") from exc
    if not edges:
        raise SerializationError(f"edge list {path} contains no edges")
    return from_edges(edges)


def stream_edge_list(
    path: PathLike,
    *,
    comment: str = "#",
    delimiter: str | None = None,
    weighted: bool = False,
    n_nodes: int | None = None,
    allow_self_loops: bool = True,
    chunk_edges: int = STREAM_CHUNK_EDGES,
) -> DiGraph:
    """Stream a plain-text (optionally gzipped) edge list straight into CSR.

    Unlike :func:`read_edge_list`, which accumulates a Python list of edge
    tuples, this parses the file in chunks of ``chunk_edges`` rows directly
    into typed numpy arrays and hands them to one CSR construction — no
    per-edge Python objects are materialised, so million-edge files ingest
    in a few times the size of the final matrix.

    The result is bit-identical to ``from_edges`` over the same edges: node
    ids are used verbatim, duplicate edges are summed by CSR construction,
    and ``n_nodes`` / ``allow_self_loops`` behave the same way.  Files ending
    in ``.gz`` are decompressed on the fly.  When ``weighted`` is true every
    data row must carry three columns.
    """
    path = Path(path)
    if chunk_edges <= 0:
        raise SerializationError(f"chunk_edges must be positive, got {chunk_edges}")
    opener = gzip.open if path.suffix == ".gz" else open
    usecols = (0, 1, 2) if weighted else (0, 1)
    dtype = np.float64 if weighted else np.int64
    chunks: List[np.ndarray] = []
    try:
        with opener(path, "rt", encoding="utf-8") as handle:
            with warnings.catch_warnings():
                # loadtxt warns when a chunk read hits EOF with no data rows.
                warnings.simplefilter("ignore", UserWarning)
                while True:
                    chunk = np.loadtxt(
                        handle,
                        dtype=dtype,
                        comments=comment,
                        delimiter=delimiter,
                        usecols=usecols,
                        max_rows=chunk_edges,
                        ndmin=2,
                    )
                    if chunk.shape[0] == 0:
                        break
                    chunks.append(chunk)
    except OSError as exc:
        raise SerializationError(f"cannot read edge list {path}: {exc}") from exc
    except ValueError as exc:
        raise SerializationError(f"malformed edge list {path}: {exc}") from exc
    if not chunks:
        raise SerializationError(f"edge list {path} contains no edges")
    table = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
    del chunks
    if weighted:
        sources = table[:, 0].astype(np.int64)
        targets = table[:, 1].astype(np.int64)
        weights = np.ascontiguousarray(table[:, 2])
    else:
        sources = np.ascontiguousarray(table[:, 0])
        targets = np.ascontiguousarray(table[:, 1])
        weights = np.ones(table.shape[0], dtype=np.float64)
    del table
    if not allow_self_loops:
        keep = sources != targets
        if not bool(keep.all()):
            sources = sources[keep]
            targets = targets[keep]
            weights = weights[keep]
    if sources.size and (int(sources.min()) < 0 or int(targets.min()) < 0):
        raise GraphError("node ids must be non-negative integers")
    max_id = int(max(sources.max(), targets.max())) if sources.size else -1
    size = max(max_id + 1, n_nodes or 0)
    if size == 0:
        raise GraphError("cannot build an empty graph")
    matrix = sp.csr_matrix((weights, (sources, targets)), shape=(size, size))
    return DiGraph(matrix)


def write_edge_list(graph: DiGraph, path: PathLike, *, weighted: bool | None = None) -> None:
    """Write ``graph`` as a plain-text edge list.

    ``weighted=None`` (default) writes weights only when the graph is weighted.
    """
    path = Path(path)
    if weighted is None:
        weighted = graph.is_weighted
    try:
        with path.open("w", encoding="utf-8") as handle:
            handle.write(f"# repro edge list: {graph.n_nodes} nodes, {graph.n_edges} edges\n")
            for source, target, weight in graph.edges():
                if weighted:
                    handle.write(f"{source} {target} {weight:.10g}\n")
                else:
                    handle.write(f"{source} {target}\n")
    except OSError as exc:
        raise SerializationError(f"cannot write edge list {path}: {exc}") from exc


def read_node_labels(path: PathLike, *, comment: str = "#") -> Dict[int, str]:
    """Read ``node label`` pairs into a dictionary."""
    path = Path(path)
    labels: Dict[int, str] = {}
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith(comment):
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise SerializationError(
                        f"{path}:{line_number}: expected 'node label', got {line!r}"
                    )
                labels[int(parts[0])] = parts[1]
    except OSError as exc:
        raise SerializationError(f"cannot read labels {path}: {exc}") from exc
    return labels


def write_node_labels(labels: Dict[int, str] | Iterable[Tuple[int, str]], path: PathLike) -> None:
    """Write node labels as ``node label`` lines."""
    if isinstance(labels, dict):
        items = sorted(labels.items())
    else:
        items = sorted(labels)
    path = Path(path)
    try:
        with path.open("w", encoding="utf-8") as handle:
            for node, label in items:
                handle.write(f"{int(node)} {label}\n")
    except OSError as exc:
        raise SerializationError(f"cannot write labels {path}: {exc}") from exc


def labels_to_array(labels: Dict[int, str], n_nodes: int, *, positive: str) -> np.ndarray:
    """Convert a label dict into a 0/1 array where ``positive`` maps to 1."""
    array = np.zeros(n_nodes, dtype=np.int64)
    for node, label in labels.items():
        if 0 <= node < n_nodes and label == positive:
            array[node] = 1
    return array
