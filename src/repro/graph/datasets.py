"""Named dataset stand-ins mirroring the paper's evaluation graphs (§5.1).

The paper evaluates on four unlabeled graphs (Web-stanford-cs, Epinions,
Web-stanford, Web-google), the Webspam UK2006 labelled host graph and a DBLP
co-authorship network.  Those datasets cannot ship with this repository, so
each loader below generates a synthetic graph whose *structural* properties
(directedness, density, degree skew, community / farm structure) match the
original closely enough for the algorithmic comparisons to keep their shape.
Sizes are scaled down so the benchmarks run on a laptop; pass ``scale`` to
grow them.

| Paper dataset   | n (paper) | m (paper)  | Stand-in generator            |
|-----------------|-----------|------------|-------------------------------|
| Web-stanford-cs | 9,914     | 36,854     | copying web model             |
| Epinions        | 75,879    | 508,837    | scale-free trust network      |
| Web-stanford    | 281,903   | 2,312,497  | copying web model             |
| Web-google      | 875,713   | 5,105,039  | copying web model             |
| Webspam UK2006  | 11,402    | 730,774    | web + spam link farm          |
| DBLP subset     | 44,528    | 121,352    | weighted community coauthorship |
"""

from __future__ import annotations

from dataclasses import dataclass
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..exceptions import SerializationError
from ..utils.rng import SeedLike
from .digraph import DiGraph
from .download import (
    REMOTE_DATASETS,
    DatasetUnavailableError,
    dataset_cached,
    fetch_dataset,
    is_offline,
)
from .generators import (
    coauthorship_graph,
    copying_web_graph,
    copurchase_graph,
    spam_host_graph,
    trust_graph,
)
from .io import stream_edge_list

PathLike = Union[str, os.PathLike]

#: Environment variable selecting the default ``source`` for ``load_dataset``.
SOURCE_ENV = "REPRO_DATA_SOURCE"

#: Accepted values for the ``source`` parameter of :func:`load_dataset`.
DATASET_SOURCES = ("synthetic", "real", "auto")


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a paper dataset and its synthetic stand-in."""

    name: str
    paper_nodes: int
    paper_edges: int
    default_nodes: int
    description: str


#: Registry of the paper's evaluation graphs (Table 2 plus §5.4).
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "web-stanford-cs": DatasetSpec(
        "web-stanford-cs", 9_914, 36_854, 2_000,
        "small sparse web crawl (stanford.edu CS subdomain)"),
    "epinions": DatasetSpec(
        "epinions", 75_879, 508_837, 3_000,
        "who-trusts-whom consumer review network"),
    "web-stanford": DatasetSpec(
        "web-stanford", 281_903, 2_312_497, 5_000,
        "medium web crawl (stanford.edu)"),
    "web-google": DatasetSpec(
        "web-google", 875_713, 5_105_039, 8_000,
        "large web crawl released by Google"),
    "webspam": DatasetSpec(
        "webspam", 11_402, 730_774, 2_200,
        "labelled host graph with spam/normal labels"),
    "dblp": DatasetSpec(
        "dblp", 44_528, 121_352, 1_500,
        "weighted co-authorship network from DBLP top venues"),
}


def available_datasets() -> Tuple[str, ...]:
    """Names accepted by :func:`load_dataset`."""
    return tuple(PAPER_DATASETS)


def web_stanford_cs(*, scale: float = 1.0, seed: SeedLike = 0) -> DiGraph:
    """Stand-in for Web-stanford-cs: small, sparse web graph (~3.7 edges/node)."""
    spec = PAPER_DATASETS["web-stanford-cs"]
    n = max(50, int(spec.default_nodes * scale))
    return copying_web_graph(n, out_degree=4, copy_probability=0.5, seed=seed)


def epinions(*, scale: float = 1.0, seed: SeedLike = 1) -> DiGraph:
    """Stand-in for Epinions: denser trust network (~6.7 edges/node)."""
    spec = PAPER_DATASETS["epinions"]
    n = max(50, int(spec.default_nodes * scale))
    return trust_graph(n, out_degree_mean=7.0, reciprocity=0.3, seed=seed)


def web_stanford(*, scale: float = 1.0, seed: SeedLike = 2) -> DiGraph:
    """Stand-in for Web-stanford: medium web crawl (~8.2 edges/node)."""
    spec = PAPER_DATASETS["web-stanford"]
    n = max(50, int(spec.default_nodes * scale))
    return copying_web_graph(n, out_degree=8, copy_probability=0.55, seed=seed)


def web_google(*, scale: float = 1.0, seed: SeedLike = 3) -> DiGraph:
    """Stand-in for Web-google: large, sparse web crawl (~5.8 edges/node)."""
    spec = PAPER_DATASETS["web-google"]
    n = max(50, int(spec.default_nodes * scale))
    return copying_web_graph(n, out_degree=6, copy_probability=0.6, seed=seed)


def webspam(*, scale: float = 1.0, seed: SeedLike = 4) -> Tuple[DiGraph, np.ndarray]:
    """Stand-in for Webspam UK2006: labelled host graph, ~18% spam hosts."""
    spec = PAPER_DATASETS["webspam"]
    n = max(100, int(spec.default_nodes * scale))
    n_spam = max(10, int(n * 0.185))
    n_normal = n - n_spam
    return spam_host_graph(n_normal, n_spam, seed=seed)


def dblp(*, scale: float = 1.0, seed: SeedLike = 5) -> Tuple[DiGraph, np.ndarray]:
    """Stand-in for the DBLP co-authorship subset: weighted, with prolific authors."""
    spec = PAPER_DATASETS["dblp"]
    n = max(100, int(spec.default_nodes * scale))
    return coauthorship_graph(n, n_prolific=max(3, n // 400), seed=seed)


def amazon_copurchase(*, scale: float = 1.0, seed: SeedLike = 6) -> Tuple[DiGraph, np.ndarray]:
    """Product co-purchase graph for the §1 recommendation example."""
    n = max(100, int(1_500 * scale))
    return copurchase_graph(n, seed=seed)


def load_real_dataset(name: str, *, cache: Optional[PathLike] = None) -> DiGraph:
    """Load the *real* edge list behind a paper dataset name.

    Downloads (or serves from the ``REPRO_DATA_DIR`` cache) the SNAP snapshot
    registered in :data:`repro.graph.download.REMOTE_DATASETS` and streams it
    straight into CSR — no per-edge Python objects.  Raises
    :class:`DatasetUnavailableError` when the file is absent and the
    environment is offline or the download fails.
    """
    key = name.strip().lower()
    if key not in REMOTE_DATASETS:
        available = ", ".join(sorted(REMOTE_DATASETS))
        raise KeyError(f"no real download registered for {name!r}; available: {available}")
    spec = REMOTE_DATASETS[key]
    path = fetch_dataset(spec, cache=cache)
    return stream_edge_list(path, comment=spec.comment, weighted=spec.weighted)


def default_source() -> str:
    """Default ``source`` for :func:`load_dataset` (``REPRO_DATA_SOURCE`` env)."""
    value = os.environ.get(SOURCE_ENV, "synthetic").strip().lower()
    return value if value in DATASET_SOURCES else "synthetic"


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: Optional[SeedLike] = None,
    source: Optional[str] = None,
) -> DiGraph:
    """Load an unlabeled benchmark graph by paper dataset name.

    ``source`` selects where the graph comes from:

    * ``"synthetic"`` (default) — the seeded stand-in generators; fully
      deterministic and offline.
    * ``"real"`` — the actual SNAP edge list via the download/cache layer
      (raises when unavailable; ``scale``/``seed`` are ignored).
    * ``"auto"`` — the real dataset when it is already cached or can be
      fetched, silently falling back to the synthetic stand-in otherwise
      (e.g. under ``REPRO_OFFLINE=1``).

    When ``source`` is omitted, the ``REPRO_DATA_SOURCE`` environment
    variable chooses (defaulting to ``"synthetic"``).

    ``webspam`` and ``dblp`` carry side information (labels / paper counts);
    use their dedicated loaders when you need it — this function returns only
    the graph.
    """
    key = name.strip().lower()
    if source is None:
        source = default_source()
    if source not in DATASET_SOURCES:
        raise ValueError(f"source must be one of {DATASET_SOURCES}, got {source!r}")
    if source == "real":
        return load_real_dataset(key)
    if source == "auto" and key in REMOTE_DATASETS:
        if dataset_cached(key) or not is_offline():
            try:
                return load_real_dataset(key)
            except DatasetUnavailableError:
                pass  # fall back to the synthetic stand-in below
    loaders = {
        "web-stanford-cs": web_stanford_cs,
        "epinions": epinions,
        "web-stanford": web_stanford,
        "web-google": web_google,
    }
    if key in loaders:
        kwargs = {"scale": scale}
        if seed is not None:
            kwargs["seed"] = seed
        return loaders[key](**kwargs)
    if key == "webspam":
        graph, _ = webspam(scale=scale, **({"seed": seed} if seed is not None else {}))
        return graph
    if key == "dblp":
        graph, _ = dblp(scale=scale, **({"seed": seed} if seed is not None else {}))
        return graph
    raise KeyError(
        f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
    )


#: Logical RNG block of :func:`write_synthetic_edge_list` — each block draws
#: from its own keyed generator, so the file content is a pure function of
#: ``(n_nodes, avg_out_degree, seed)`` regardless of how I/O is batched.
_SYNTH_BLOCK_EDGES = 1 << 16


def write_synthetic_edge_list(
    path: PathLike,
    *,
    n_nodes: int,
    avg_out_degree: float = 6.0,
    seed: int = 0,
) -> int:
    """Write a deterministic synthetic edge list sized like a web crawl.

    Produces a ``source target`` text file (SNAP format, ``#`` header) with
    heavy-tailed in-degrees, generated and written in vectorised blocks so
    million-edge files take seconds and bounded memory.  This is the offline
    stand-in used by the large-graph benchmark when no real dataset is
    cached.  Returns the number of edges written (before duplicate merging).
    """
    if n_nodes <= 0:
        raise SerializationError(f"n_nodes must be positive, got {n_nodes}")
    n_edges = max(1, int(n_nodes * avg_out_degree))
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(
            f"# synthetic power-law edge list: {n_nodes} nodes, {n_edges} edges\n"
        )
        for block in range(0, n_edges, _SYNTH_BLOCK_EDGES):
            m = min(_SYNTH_BLOCK_EDGES, n_edges - block)
            rng = np.random.default_rng([int(seed), block // _SYNTH_BLOCK_EDGES])
            sources = rng.integers(0, n_nodes, size=m, dtype=np.int64)
            # Skewed target choice: u**3 concentrates mass on low ids, giving
            # the hub-heavy in-degree profile of real web graphs.
            targets = np.minimum(
                (n_nodes * rng.random(m) ** 3.0).astype(np.int64), n_nodes - 1
            )
            np.savetxt(handle, np.column_stack((sources, targets)), fmt="%d")
    return n_edges
