"""Named dataset stand-ins mirroring the paper's evaluation graphs (§5.1).

The paper evaluates on four unlabeled graphs (Web-stanford-cs, Epinions,
Web-stanford, Web-google), the Webspam UK2006 labelled host graph and a DBLP
co-authorship network.  Those datasets cannot ship with this repository, so
each loader below generates a synthetic graph whose *structural* properties
(directedness, density, degree skew, community / farm structure) match the
original closely enough for the algorithmic comparisons to keep their shape.
Sizes are scaled down so the benchmarks run on a laptop; pass ``scale`` to
grow them.

| Paper dataset   | n (paper) | m (paper)  | Stand-in generator            |
|-----------------|-----------|------------|-------------------------------|
| Web-stanford-cs | 9,914     | 36,854     | copying web model             |
| Epinions        | 75,879    | 508,837    | scale-free trust network      |
| Web-stanford    | 281,903   | 2,312,497  | copying web model             |
| Web-google      | 875,713   | 5,105,039  | copying web model             |
| Webspam UK2006  | 11,402    | 730,774    | web + spam link farm          |
| DBLP subset     | 44,528    | 121,352    | weighted community coauthorship |
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..utils.rng import SeedLike
from .digraph import DiGraph
from .generators import (
    coauthorship_graph,
    copying_web_graph,
    copurchase_graph,
    spam_host_graph,
    trust_graph,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a paper dataset and its synthetic stand-in."""

    name: str
    paper_nodes: int
    paper_edges: int
    default_nodes: int
    description: str


#: Registry of the paper's evaluation graphs (Table 2 plus §5.4).
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "web-stanford-cs": DatasetSpec(
        "web-stanford-cs", 9_914, 36_854, 2_000,
        "small sparse web crawl (stanford.edu CS subdomain)"),
    "epinions": DatasetSpec(
        "epinions", 75_879, 508_837, 3_000,
        "who-trusts-whom consumer review network"),
    "web-stanford": DatasetSpec(
        "web-stanford", 281_903, 2_312_497, 5_000,
        "medium web crawl (stanford.edu)"),
    "web-google": DatasetSpec(
        "web-google", 875_713, 5_105_039, 8_000,
        "large web crawl released by Google"),
    "webspam": DatasetSpec(
        "webspam", 11_402, 730_774, 2_200,
        "labelled host graph with spam/normal labels"),
    "dblp": DatasetSpec(
        "dblp", 44_528, 121_352, 1_500,
        "weighted co-authorship network from DBLP top venues"),
}


def available_datasets() -> Tuple[str, ...]:
    """Names accepted by :func:`load_dataset`."""
    return tuple(PAPER_DATASETS)


def web_stanford_cs(*, scale: float = 1.0, seed: SeedLike = 0) -> DiGraph:
    """Stand-in for Web-stanford-cs: small, sparse web graph (~3.7 edges/node)."""
    spec = PAPER_DATASETS["web-stanford-cs"]
    n = max(50, int(spec.default_nodes * scale))
    return copying_web_graph(n, out_degree=4, copy_probability=0.5, seed=seed)


def epinions(*, scale: float = 1.0, seed: SeedLike = 1) -> DiGraph:
    """Stand-in for Epinions: denser trust network (~6.7 edges/node)."""
    spec = PAPER_DATASETS["epinions"]
    n = max(50, int(spec.default_nodes * scale))
    return trust_graph(n, out_degree_mean=7.0, reciprocity=0.3, seed=seed)


def web_stanford(*, scale: float = 1.0, seed: SeedLike = 2) -> DiGraph:
    """Stand-in for Web-stanford: medium web crawl (~8.2 edges/node)."""
    spec = PAPER_DATASETS["web-stanford"]
    n = max(50, int(spec.default_nodes * scale))
    return copying_web_graph(n, out_degree=8, copy_probability=0.55, seed=seed)


def web_google(*, scale: float = 1.0, seed: SeedLike = 3) -> DiGraph:
    """Stand-in for Web-google: large, sparse web crawl (~5.8 edges/node)."""
    spec = PAPER_DATASETS["web-google"]
    n = max(50, int(spec.default_nodes * scale))
    return copying_web_graph(n, out_degree=6, copy_probability=0.6, seed=seed)


def webspam(*, scale: float = 1.0, seed: SeedLike = 4) -> Tuple[DiGraph, np.ndarray]:
    """Stand-in for Webspam UK2006: labelled host graph, ~18% spam hosts."""
    spec = PAPER_DATASETS["webspam"]
    n = max(100, int(spec.default_nodes * scale))
    n_spam = max(10, int(n * 0.185))
    n_normal = n - n_spam
    return spam_host_graph(n_normal, n_spam, seed=seed)


def dblp(*, scale: float = 1.0, seed: SeedLike = 5) -> Tuple[DiGraph, np.ndarray]:
    """Stand-in for the DBLP co-authorship subset: weighted, with prolific authors."""
    spec = PAPER_DATASETS["dblp"]
    n = max(100, int(spec.default_nodes * scale))
    return coauthorship_graph(n, n_prolific=max(3, n // 400), seed=seed)


def amazon_copurchase(*, scale: float = 1.0, seed: SeedLike = 6) -> Tuple[DiGraph, np.ndarray]:
    """Product co-purchase graph for the §1 recommendation example."""
    n = max(100, int(1_500 * scale))
    return copurchase_graph(n, seed=seed)


def load_dataset(
    name: str, *, scale: float = 1.0, seed: Optional[SeedLike] = None
) -> DiGraph:
    """Load an unlabeled benchmark graph by paper dataset name.

    ``webspam`` and ``dblp`` carry side information (labels / paper counts);
    use their dedicated loaders when you need it — this function returns only
    the graph.
    """
    key = name.strip().lower()
    loaders = {
        "web-stanford-cs": web_stanford_cs,
        "epinions": epinions,
        "web-stanford": web_stanford,
        "web-google": web_google,
    }
    if key in loaders:
        kwargs = {"scale": scale}
        if seed is not None:
            kwargs["seed"] = seed
        return loaders[key](**kwargs)
    if key == "webspam":
        graph, _ = webspam(scale=scale, **({"seed": seed} if seed is not None else {}))
        return graph
    if key == "dblp":
        graph, _ = dblp(scale=scale, **({"seed": seed} if seed is not None else {}))
        return graph
    raise KeyError(
        f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
    )
