"""A compact, immutable directed graph backed by SciPy CSR adjacency.

The reverse top-k algorithms need three things from a graph:

* fast access to the out-neighbours of a node (for ink propagation),
* the column-stochastic transition matrix ``A`` (for the power method),
* in/out degree vectors (for hub selection).

:class:`DiGraph` stores the adjacency once in CSR form (row = source) and
derives the rest lazily, caching the results.  Edge weights are optional; an
unweighted graph stores an implicit weight of ``1.0`` per edge.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .._validation import check_node_index
from ..exceptions import GraphError, NodeNotFoundError


class DiGraph:
    """Immutable directed graph with integer node ids ``0 .. n-1``.

    Parameters
    ----------
    adjacency:
        An ``n x n`` sparse (or dense) matrix where entry ``(i, j)`` is the
        weight of edge ``i -> j``.  Zero entries are absent edges.
    node_names:
        Optional sequence of ``n`` human-readable node labels (e.g. author
        names, host names).  Purely cosmetic; algorithms use integer ids.

    Notes
    -----
    The matrix is canonicalised to CSR with sorted indices, duplicate entries
    summed and explicit zeros removed, so two graphs built from equivalent
    edge sets compare equal structurally.
    """

    __slots__ = (
        "_adjacency",
        "_adjacency_csc",
        "_node_names",
        "_name_to_id",
        "_out_degree",
        "_in_degree",
        "_out_weight",
        "_is_weighted",
    )

    def __init__(
        self,
        adjacency: sp.spmatrix | np.ndarray,
        node_names: Optional[Sequence[str]] = None,
    ) -> None:
        matrix = sp.csr_matrix(adjacency, dtype=np.float64)
        if matrix.shape[0] != matrix.shape[1]:
            raise GraphError(
                f"adjacency must be square, got shape {matrix.shape}"
            )
        if matrix.nnz and not np.isfinite(matrix.data).all():
            # NaN slips through ordering comparisons (NaN < 0 is False) and
            # poisons every downstream proximity; Inf breaks normalization.
            raise GraphError("edge weights must be finite")
        if matrix.nnz and matrix.data.min() < 0:
            raise GraphError("edge weights must be non-negative")
        matrix.sum_duplicates()
        matrix.eliminate_zeros()
        matrix.sort_indices()
        self._adjacency: sp.csr_matrix = matrix
        self._adjacency_csc: Optional[sp.csc_matrix] = None
        self._out_degree: Optional[np.ndarray] = None
        self._in_degree: Optional[np.ndarray] = None
        self._out_weight: Optional[np.ndarray] = None
        self._name_to_id: Optional[dict] = None
        self._is_weighted: Optional[bool] = None
        if node_names is not None:
            names = list(node_names)
            if len(names) != matrix.shape[0]:
                raise GraphError(
                    f"expected {matrix.shape[0]} node names, got {len(names)}"
                )
            self._node_names: Optional[Tuple[str, ...]] = tuple(str(x) for x in names)
        else:
            self._node_names = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self._adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of directed edges (non-zero adjacency entries)."""
        return int(self._adjacency.nnz)

    @property
    def adjacency(self) -> sp.csr_matrix:
        """The CSR adjacency matrix (row = source, column = target)."""
        return self._adjacency

    @property
    def adjacency_csc(self) -> sp.csc_matrix:
        """CSC view of the adjacency, cached (column = target)."""
        if self._adjacency_csc is None:
            self._adjacency_csc = self._adjacency.tocsc()
        return self._adjacency_csc

    @property
    def node_names(self) -> Optional[Tuple[str, ...]]:
        """Optional node labels supplied at construction time."""
        return self._node_names

    @property
    def is_weighted(self) -> bool:
        """``True`` when any edge weight differs from 1 (computed once, cached)."""
        if self._is_weighted is None:
            self._is_weighted = bool(self._adjacency.nnz) and not np.allclose(
                self._adjacency.data, 1.0
            )
        return self._is_weighted

    # ------------------------------------------------------------------ #
    # degrees
    # ------------------------------------------------------------------ #
    @property
    def out_degree(self) -> np.ndarray:
        """Out-degree (number of out-edges) per node as ``int64``."""
        if self._out_degree is None:
            self._out_degree = np.diff(self._adjacency.indptr).astype(np.int64)
        return self._out_degree

    @property
    def in_degree(self) -> np.ndarray:
        """In-degree (number of in-edges) per node as ``int64``."""
        if self._in_degree is None:
            self._in_degree = np.diff(self.adjacency_csc.indptr).astype(np.int64)
        return self._in_degree

    @property
    def out_weight(self) -> np.ndarray:
        """Total outgoing edge weight per node as ``float64``."""
        if self._out_weight is None:
            self._out_weight = np.asarray(self._adjacency.sum(axis=1)).ravel()
        return self._out_weight

    def dangling_nodes(self) -> np.ndarray:
        """Return the ids of nodes with no outgoing edges."""
        return np.flatnonzero(self.out_degree == 0).astype(np.int64)

    # ------------------------------------------------------------------ #
    # neighbourhood access
    # ------------------------------------------------------------------ #
    def out_neighbors(self, node: int) -> np.ndarray:
        """Return the out-neighbour ids of ``node``."""
        node = self._check_node(node)
        start, stop = self._adjacency.indptr[node], self._adjacency.indptr[node + 1]
        return self._adjacency.indices[start:stop].astype(np.int64)

    def in_neighbors(self, node: int) -> np.ndarray:
        """Return the in-neighbour ids of ``node``."""
        node = self._check_node(node)
        csc = self.adjacency_csc
        start, stop = csc.indptr[node], csc.indptr[node + 1]
        return csc.indices[start:stop].astype(np.int64)

    def out_edges(self, node: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(target, weight)`` for each out-edge of ``node``."""
        node = self._check_node(node)
        start, stop = self._adjacency.indptr[node], self._adjacency.indptr[node + 1]
        for target, weight in zip(
            self._adjacency.indices[start:stop], self._adjacency.data[start:stop]
        ):
            yield int(target), float(weight)

    def has_edge(self, source: int, target: int) -> bool:
        """Return whether the directed edge ``source -> target`` exists.

        Binary search over the node's sorted CSR index slice — ``O(log d)``
        per lookup instead of a linear scan of the out-neighbour list.
        """
        source = self._check_node(source)
        target = self._check_node(target)
        start, stop = self._adjacency.indptr[source], self._adjacency.indptr[source + 1]
        row = self._adjacency.indices[start:stop]
        position = int(np.searchsorted(row, target))
        return position < row.size and int(row[position]) == target

    def edge_weight(self, source: int, target: int) -> float:
        """Return the weight of edge ``source -> target`` (0 when absent)."""
        source = self._check_node(source)
        target = self._check_node(target)
        return float(self._adjacency[source, target])

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield every edge as ``(source, target, weight)``."""
        coo = self._adjacency.tocoo()
        for source, target, weight in zip(coo.row, coo.col, coo.data):
            yield int(source), int(target), float(weight)

    def nodes(self) -> range:
        """Return the node id range ``0 .. n-1``."""
        return range(self.n_nodes)

    def name_of(self, node: int) -> str:
        """Return the label of ``node`` (falls back to ``str(node)``)."""
        node = self._check_node(node)
        if self._node_names is None:
            return str(node)
        return self._node_names[node]

    def node_id(self, name: str) -> int:
        """Return the id of the node labelled ``name``.

        The name→id mapping is built once on first use, so repeated lookups
        cost ``O(1)`` instead of an ``O(n)`` scan of the label tuple.  When a
        label occurs more than once, the first occurrence wins (matching the
        previous ``tuple.index`` behaviour).

        Raises
        ------
        NodeNotFoundError
            If the graph has no labels or ``name`` is not among them.
        """
        if self._node_names is None:
            raise NodeNotFoundError(name)
        if self._name_to_id is None:
            mapping: dict = {}
            for node, label in enumerate(self._node_names):
                mapping.setdefault(label, node)
            self._name_to_id = mapping
        try:
            return self._name_to_id[name]
        except KeyError as exc:
            raise NodeNotFoundError(name) from exc

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def reverse(self) -> "DiGraph":
        """Return the graph with every edge direction flipped."""
        return DiGraph(self._adjacency.T.tocsr(), self._node_names)

    def subgraph(self, nodes: Iterable[int]) -> "DiGraph":
        """Return the induced subgraph on ``nodes`` (relabelled 0..len-1).

        An empty ``nodes`` iterable yields the empty (0-node) graph rather
        than relying on SciPy's empty fancy-indexing behaviour, which has
        varied across versions.
        """
        ids = np.asarray(sorted(set(int(v) for v in nodes)), dtype=np.int64)
        if ids.size == 0:
            names: Optional[Sequence[str]] = (
                () if self._node_names is not None else None
            )
            return DiGraph(sp.csr_matrix((0, 0)), names)
        if ids[0] < 0 or ids[-1] >= self.n_nodes:
            raise GraphError("subgraph nodes outside the graph's node range")
        sub = self._adjacency[ids][:, ids]
        sub_names = None
        if self._node_names is not None:
            sub_names = [self._node_names[i] for i in ids]
        return DiGraph(sub, sub_names)

    def with_edges(
        self,
        added: Iterable[Tuple[int, int] | Tuple[int, int, float]] = (),
        removed: Iterable[Tuple[int, int]] = (),
    ) -> "DiGraph":
        """Return a new validated graph with edges removed and/or set.

        Parameters
        ----------
        added:
            Iterable of ``(source, target)`` or ``(source, target, weight)``
            items.  Each item *sets* the edge weight: a missing edge is
            inserted, an existing one is overwritten (last occurrence wins).
            Weights must be strictly positive — deleting goes through
            ``removed``.
        removed:
            Iterable of ``(source, target)`` edges to delete; every edge must
            exist in this graph.

        The node set (and any node labels) is preserved; an edge may not
        appear in both lists.  This is the compaction primitive of the
        dynamic-graph overlay, but is independently useful for one-shot
        edits of an otherwise immutable graph.
        """
        removed_edges: list = []
        for edge in removed:
            source, target = edge
            source = self._check_node(int(source))
            target = self._check_node(int(target))
            if not self.has_edge(source, target):
                raise GraphError(
                    f"cannot remove missing edge {source} -> {target}"
                )
            removed_edges.append((source, target))
        removed_set = set(removed_edges)
        set_edges: list = []
        for edge in added:
            if len(edge) == 2:
                source, target = edge  # type: ignore[misc]
                weight = 1.0
            elif len(edge) == 3:
                source, target, weight = edge  # type: ignore[misc]
            else:
                raise GraphError(f"added edges must be 2- or 3-tuples, got {edge!r}")
            source = self._check_node(int(source))
            target = self._check_node(int(target))
            weight = float(weight)
            if not (weight > 0 and math.isfinite(weight)):
                raise GraphError(
                    f"added edge weight must be positive and finite, got "
                    f"{weight} for {source} -> {target} (delete via 'removed')"
                )
            if (source, target) in removed_set:
                raise GraphError(
                    f"edge {source} -> {target} appears in both added and removed"
                )
            set_edges.append((source, target, weight))
        if not removed_edges and not set_edges:
            return self
        matrix = self._adjacency.tolil(copy=True)
        for source, target in removed_edges:
            matrix[source, target] = 0.0
        for source, target, weight in set_edges:
            matrix[source, target] = weight
        return DiGraph(matrix.tocsr(), self._node_names)

    def with_self_loops_on_dangling(self) -> "DiGraph":
        """Return a copy where every dangling node gets a self-loop.

        This is one of the two dangling-node policies mentioned in the paper
        (footnote 1 of Section 2.1).
        """
        dangling = self.dangling_nodes()
        if dangling.size == 0:
            return self
        loops = sp.csr_matrix(
            (np.ones(dangling.size), (dangling, dangling)),
            shape=self._adjacency.shape,
        )
        return DiGraph(self._adjacency + loops, self._node_names)

    def largest_out_component_heuristic(self) -> "DiGraph":
        """Drop nodes with neither in- nor out-edges (isolated nodes)."""
        keep = np.flatnonzero((self.out_degree > 0) | (self.in_degree > 0))
        if keep.size == self.n_nodes:
            return self
        return self.subgraph(keep)

    # ------------------------------------------------------------------ #
    # pickling (process-pool workers)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Pickle only the canonical adjacency and the node labels.

        Derived caches (CSC transpose, degree vectors, name→id map, the
        ``is_weighted`` flag) are dropped: they can be large, and every one
        of them is rebuilt lazily on first use after unpickling.  This keeps
        worker hand-off in the serving layer's process pool cheap.
        """
        return {"adjacency": self._adjacency, "node_names": self._node_names}

    def __setstate__(self, state: dict) -> None:
        self._adjacency = state["adjacency"]
        self._node_names = state["node_names"]
        self._adjacency_csc = None
        self._out_degree = None
        self._in_degree = None
        self._out_weight = None
        self._name_to_id = None
        self._is_weighted = None

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n_nodes

    def __contains__(self, node: object) -> bool:
        return isinstance(node, (int, np.integer)) and 0 <= int(node) < self.n_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if self.n_nodes != other.n_nodes or self.n_edges != other.n_edges:
            return False
        difference = (self._adjacency - other._adjacency)
        return difference.nnz == 0 or bool(np.allclose(difference.data, 0.0))

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        weighted = "weighted " if self.is_weighted else ""
        return f"DiGraph({weighted}n_nodes={self.n_nodes}, n_edges={self.n_edges})"

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #
    def _check_node(self, node: int) -> int:
        try:
            return check_node_index(node, self.n_nodes)
        except Exception as exc:
            raise NodeNotFoundError(node) from exc
