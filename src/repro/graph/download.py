"""Fetching and caching of real edge-list datasets.

The paper evaluates on public SNAP snapshots (web-Google, web-Stanford,
soc-Epinions1).  This module downloads those edge lists once into a local
cache directory and hands back the cached path; :mod:`repro.graph.datasets`
streams them into CSR via :func:`repro.graph.io.stream_edge_list`.

Design points:

* The cache directory honours the ``REPRO_DATA_DIR`` environment variable
  (default ``~/.cache/repro-datasets``); files are fetched atomically
  (temp file + ``os.replace``) so a crashed download never poisons the cache.
* Integrity: each cached file gets a ``<name>.sha256`` sidecar written on
  first download (trust-on-first-use); later fetches and cache hits verify
  against it.  A :class:`RemoteDataset` may also pin an expected digest.
* ``REPRO_OFFLINE=1`` forbids network access entirely — cached files are
  still served, anything else raises :class:`DatasetUnavailableError` so the
  caller (``load_dataset``) can fall back to the seeded synthetic generator.
* ``file://`` URLs are supported, which keeps the whole layer testable in
  hermetic CI environments.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
import os
from pathlib import Path
import shutil
import tempfile
from typing import Dict, Optional, Union
import urllib.error
import urllib.request

from ..exceptions import SerializationError

PathLike = Union[str, os.PathLike]

#: Environment variable overriding the dataset cache directory.
CACHE_ENV = "REPRO_DATA_DIR"

#: Environment variable disabling all network access when truthy.
OFFLINE_ENV = "REPRO_OFFLINE"

_TRUTHY = {"1", "true", "yes", "on"}


class DatasetUnavailableError(SerializationError):
    """A remote dataset could not be fetched (offline, network, or checksum)."""


@dataclass(frozen=True)
class RemoteDataset:
    """Description of one downloadable edge-list file."""

    name: str
    url: str
    filename: str
    weighted: bool = False
    #: Optional pinned SHA-256 hex digest of the (compressed) file.
    sha256: Optional[str] = None

    @property
    def comment(self) -> str:
        return "#"


#: Real datasets from the paper's evaluation, served by the SNAP archive.
REMOTE_DATASETS: Dict[str, RemoteDataset] = {
    "web-google": RemoteDataset(
        name="web-google",
        url="https://snap.stanford.edu/data/web-Google.txt.gz",
        filename="web-Google.txt.gz",
    ),
    "web-stanford": RemoteDataset(
        name="web-stanford",
        url="https://snap.stanford.edu/data/web-Stanford.txt.gz",
        filename="web-Stanford.txt.gz",
    ),
    "epinions": RemoteDataset(
        name="epinions",
        url="https://snap.stanford.edu/data/soc-Epinions1.txt.gz",
        filename="soc-Epinions1.txt.gz",
    ),
}


def cache_dir() -> Path:
    """Directory where downloaded datasets are cached.

    ``REPRO_DATA_DIR`` overrides the default ``~/.cache/repro-datasets``.
    The directory is created on demand.
    """
    override = os.environ.get(CACHE_ENV)
    if override:
        base = Path(override).expanduser()
    else:
        base = Path.home() / ".cache" / "repro-datasets"
    base.mkdir(parents=True, exist_ok=True)
    return base


def is_offline() -> bool:
    """Whether ``REPRO_OFFLINE`` forbids network access."""
    return os.environ.get(OFFLINE_ENV, "").strip().lower() in _TRUTHY


def file_sha256(path: PathLike, *, chunk_bytes: int = 1 << 20) -> str:
    """SHA-256 hex digest of a file, streamed in chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _sidecar(path: Path) -> Path:
    return path.with_name(path.name + ".sha256")


def _verify(path: Path, spec: RemoteDataset) -> None:
    """Check ``path`` against the pinned and/or sidecar digest."""
    actual = file_sha256(path)
    if spec.sha256 is not None and actual != spec.sha256:
        raise DatasetUnavailableError(
            f"checksum mismatch for {spec.name}: expected {spec.sha256}, got {actual}"
        )
    sidecar = _sidecar(path)
    if sidecar.exists():
        recorded = sidecar.read_text(encoding="utf-8").strip()
        if recorded and actual != recorded:
            raise DatasetUnavailableError(
                f"checksum mismatch for {spec.name}: cached sidecar has "
                f"{recorded}, file hashes to {actual}"
            )
    else:
        # Trust on first use: record what we fetched so later runs detect
        # corruption or silent upstream changes.
        sidecar.write_text(actual + "\n", encoding="utf-8")


def _download(url: str, destination: Path, *, timeout: float) -> None:
    """Fetch ``url`` into ``destination`` atomically."""
    destination.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        prefix=destination.name + ".", suffix=".part", dir=destination.parent
    )
    tmp_path = Path(tmp_name)
    try:
        with os.fdopen(handle, "wb") as out:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                shutil.copyfileobj(response, out, 1 << 20)
        os.replace(tmp_path, destination)
    except Exception:
        tmp_path.unlink(missing_ok=True)
        raise


def fetch_dataset(
    spec_or_name: Union[str, RemoteDataset],
    *,
    cache: Optional[PathLike] = None,
    force: bool = False,
    timeout: float = 60.0,
) -> Path:
    """Return the local path of a remote dataset, downloading it if needed.

    Cache hits are verified against the checksum sidecar before being served.
    Raises :class:`DatasetUnavailableError` when the file is absent and the
    environment is offline, the download fails, or a checksum does not match.
    """
    if isinstance(spec_or_name, RemoteDataset):
        spec = spec_or_name
    else:
        key = spec_or_name.strip().lower()
        if key not in REMOTE_DATASETS:
            available = ", ".join(sorted(REMOTE_DATASETS))
            raise KeyError(f"unknown remote dataset {spec_or_name!r}; available: {available}")
        spec = REMOTE_DATASETS[key]
    directory = Path(cache).expanduser() if cache is not None else cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / spec.filename
    if target.exists() and not force:
        _verify(target, spec)
        return target
    if is_offline():
        raise DatasetUnavailableError(
            f"dataset {spec.name} is not cached at {target} and "
            f"{OFFLINE_ENV} forbids downloading it"
        )
    try:
        _download(spec.url, target, timeout=timeout)
    except (urllib.error.URLError, OSError) as exc:
        raise DatasetUnavailableError(
            f"failed to download {spec.name} from {spec.url}: {exc}"
        ) from exc
    try:
        _verify(target, spec)
    except DatasetUnavailableError:
        # Do not leave a file that fails verification in the cache.
        target.unlink(missing_ok=True)
        _sidecar(target).unlink(missing_ok=True)
        raise
    return target


def dataset_cached(spec_or_name: Union[str, RemoteDataset], *, cache: Optional[PathLike] = None) -> bool:
    """Whether the dataset file is already present in the cache."""
    if isinstance(spec_or_name, RemoteDataset):
        spec = spec_or_name
    else:
        spec = REMOTE_DATASETS.get(spec_or_name.strip().lower())  # type: ignore[assignment]
        if spec is None:
            return False
    directory = Path(cache).expanduser() if cache is not None else cache_dir()
    return (directory / spec.filename).exists()
