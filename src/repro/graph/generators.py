"""Synthetic graph generators.

The paper evaluates on web crawls (Web-stanford-cs, Web-stanford, Web-google),
a trust network (Epinions), a labelled spam host graph (Webspam UK2006) and a
weighted DBLP co-authorship graph.  None of these are redistributable here, so
this module provides generators that reproduce the structural features the
algorithms depend on:

* heavy-tailed in/out-degree distributions (hubs exist, §4.1.1),
* power-law decay of proximity vectors (§3, observation 2),
* community / link-farm structure for the effectiveness studies (§5.4).

Every generator takes an explicit ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .._validation import (
    check_non_negative_int,
    check_positive_int,
    check_probability,
)
from ..exceptions import InvalidParameterError
from ..utils.rng import SeedLike, ensure_rng
from .builder import GraphBuilder
from .digraph import DiGraph


# --------------------------------------------------------------------------- #
# simple deterministic topologies (useful for unit tests)
# --------------------------------------------------------------------------- #
def ring_graph(n_nodes: int) -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    n = check_positive_int(n_nodes, "n_nodes")
    sources = np.arange(n, dtype=np.int64)
    targets = (sources + 1) % n
    matrix = sp.csr_matrix((np.ones(n), (sources, targets)), shape=(n, n))
    return DiGraph(matrix)


def star_graph(n_leaves: int) -> DiGraph:
    """Star with node 0 at the centre; edges in both directions to each leaf."""
    n_leaves = check_positive_int(n_leaves, "n_leaves")
    n = n_leaves + 1
    centre = np.zeros(n_leaves, dtype=np.int64)
    leaves = np.arange(1, n, dtype=np.int64)
    sources = np.concatenate([centre, leaves])
    targets = np.concatenate([leaves, centre])
    matrix = sp.csr_matrix((np.ones(sources.size), (sources, targets)), shape=(n, n))
    return DiGraph(matrix)


def complete_graph(n_nodes: int) -> DiGraph:
    """Complete directed graph without self-loops."""
    n = check_positive_int(n_nodes, "n_nodes")
    matrix = np.ones((n, n)) - np.eye(n)
    return DiGraph(sp.csr_matrix(matrix))


def paper_toy_graph() -> DiGraph:
    """The 6-node running example of Figures 1-2 of the paper.

    Edges are reconstructed so that nodes 1 and 2 (0-indexed: 0 and 1) are the
    highest in/out-degree nodes, matching the paper's statement that they are
    selected as hubs.  The exact proximity values of Figure 1 depend on the
    original (unpublished) edge list, so tests use this graph for structural
    and invariant checks rather than value-exact comparisons.
    """
    edges = [
        (0, 1), (1, 0),
        (1, 2), (2, 1),
        (0, 3), (3, 0),
        (3, 1),
        (4, 0), (4, 1), (0, 4),
        (5, 1), (5, 0), (1, 5),
        (2, 0),
    ]
    builder = GraphBuilder()
    for source, target in edges:
        builder.add_edge(source, target)
    return builder.build(node_names=[str(i + 1) for i in range(6)])


# --------------------------------------------------------------------------- #
# random graph families
# --------------------------------------------------------------------------- #
def erdos_renyi_graph(
    n_nodes: int,
    edge_probability: float,
    *,
    seed: SeedLike = None,
    allow_self_loops: bool = False,
) -> DiGraph:
    """Directed Erdős–Rényi ``G(n, p)`` graph.

    Used as a "no hub structure" control in the ablation benchmarks: degree
    hub selection brings little benefit on such graphs, which is precisely the
    behaviour the paper's degree-based heuristic predicts.
    """
    n = check_positive_int(n_nodes, "n_nodes")
    p = check_probability(edge_probability, "edge_probability", inclusive=True)
    rng = ensure_rng(seed)
    mask = rng.random((n, n)) < p
    if not allow_self_loops:
        np.fill_diagonal(mask, False)
    matrix = sp.csr_matrix(mask.astype(np.float64))
    return DiGraph(matrix)


def scale_free_graph(
    n_nodes: int,
    *,
    out_degree_mean: float = 6.0,
    exponent: float = 2.1,
    seed: SeedLike = None,
) -> DiGraph:
    """Directed scale-free graph via preferential attachment on targets.

    Each node draws an out-degree from a (shifted) Zipf-like distribution with
    the given mean, then chooses targets preferentially by current in-degree
    (plus one).  The result has a heavy-tailed in-degree distribution — the
    property the paper's degree-based hub selection exploits — while the
    out-degree tail is controlled by ``exponent``.
    """
    n = check_positive_int(n_nodes, "n_nodes")
    if n < 2:
        raise InvalidParameterError("scale_free_graph needs at least 2 nodes")
    if exponent <= 1.0:
        raise InvalidParameterError(f"exponent must exceed 1, got {exponent}")
    rng = ensure_rng(seed)

    # Heavy-tailed out-degrees with the requested mean, at least one edge each.
    raw = rng.pareto(exponent - 1.0, size=n) + 1.0
    out_degrees = np.maximum(1, np.round(raw * out_degree_mean / raw.mean()).astype(np.int64))
    out_degrees = np.minimum(out_degrees, n - 1)

    in_degree_weight = np.ones(n, dtype=np.float64)
    sources: list[int] = []
    targets: list[int] = []
    order = rng.permutation(n)
    for source in order:
        degree = int(out_degrees[source])
        weights = in_degree_weight.copy()
        weights[source] = 0.0
        total = weights.sum()
        if total <= 0:
            continue
        probabilities = weights / total
        chosen = rng.choice(n, size=degree, replace=False, p=probabilities)
        for target in chosen:
            sources.append(int(source))
            targets.append(int(target))
            in_degree_weight[target] += 1.0
    matrix = sp.csr_matrix(
        (np.ones(len(sources)), (np.asarray(sources), np.asarray(targets))),
        shape=(n, n),
    )
    return DiGraph(matrix)


def copying_web_graph(
    n_nodes: int,
    *,
    out_degree: int = 7,
    copy_probability: float = 0.55,
    seed: SeedLike = None,
) -> DiGraph:
    """Web-like graph from the classic "copying model" (Kumar et al.).

    Every new page links to ``out_degree`` existing pages; with probability
    ``copy_probability`` each link copies the destination of a randomly chosen
    prototype page, otherwise it points to a uniformly random page.  The model
    produces the power-law in-degree and tight-knit communities typical of web
    crawls, making it our stand-in for the paper's Web-stanford/Web-google
    datasets (see DESIGN.md substitution table).
    """
    n = check_positive_int(n_nodes, "n_nodes")
    d = check_positive_int(out_degree, "out_degree")
    p_copy = check_probability(copy_probability, "copy_probability", inclusive=True)
    rng = ensure_rng(seed)

    seed_size = min(max(d + 1, 4), n)
    sources: list[int] = []
    targets: list[int] = []
    # Fully connect the small seed clique.
    for source in range(seed_size):
        for target in range(seed_size):
            if source != target:
                sources.append(source)
                targets.append(target)

    out_links: list[list[int]] = [
        [t for s, t in zip(sources, targets) if s == node] for node in range(seed_size)
    ]
    for node in range(seed_size, n):
        prototype = int(rng.integers(0, node))
        prototype_links = out_links[prototype]
        links: set[int] = set()
        for slot in range(d):
            if prototype_links and rng.random() < p_copy:
                links.add(int(prototype_links[slot % len(prototype_links)]))
            else:
                links.add(int(rng.integers(0, node)))
        links.discard(node)
        out_links.append(sorted(links))
        for target in links:
            sources.append(node)
            targets.append(target)

    matrix = sp.csr_matrix(
        (np.ones(len(sources)), (np.asarray(sources), np.asarray(targets))),
        shape=(n, n),
    )
    return DiGraph(matrix)


def trust_graph(
    n_nodes: int,
    *,
    out_degree_mean: float = 7.0,
    reciprocity: float = 0.3,
    seed: SeedLike = None,
) -> DiGraph:
    """Epinions-style who-trusts-whom network.

    A scale-free directed graph where a fraction ``reciprocity`` of edges is
    reciprocated, reflecting that trust statements are often mutual.
    """
    reciprocity = check_probability(reciprocity, "reciprocity", inclusive=True)
    rng = ensure_rng(seed)
    base = scale_free_graph(
        n_nodes, out_degree_mean=out_degree_mean, seed=rng
    )
    coo = base.adjacency.tocoo()
    sources = list(coo.row)
    targets = list(coo.col)
    for source, target in zip(coo.row.tolist(), coo.col.tolist()):
        if rng.random() < reciprocity:
            sources.append(target)
            targets.append(source)
    matrix = sp.csr_matrix(
        (np.ones(len(sources)), (np.asarray(sources), np.asarray(targets))),
        shape=(base.n_nodes, base.n_nodes),
    )
    return DiGraph(matrix)


def spam_host_graph(
    n_normal: int,
    n_spam: int,
    *,
    normal_out_degree: int = 8,
    farm_out_degree: int = 12,
    spam_to_normal_probability: float = 0.05,
    seed: SeedLike = None,
) -> Tuple[DiGraph, np.ndarray]:
    """Labelled host graph with a spam link farm (Webspam stand-in, §5.4).

    Normal hosts link mostly to other normal hosts (copying-model web
    structure).  Spam hosts form link farms: they link densely to other spam
    hosts — concentrating their PageRank contribution on spam targets — and
    only rarely to normal hosts.  A small number of "honeypot" edges from
    normal to spam hosts exist, as in real crawls.

    Returns
    -------
    (graph, labels)
        ``labels[i]`` is ``1`` for spam hosts and ``0`` for normal hosts.
    """
    n_normal = check_positive_int(n_normal, "n_normal")
    n_spam = check_positive_int(n_spam, "n_spam")
    p_out = check_probability(
        spam_to_normal_probability, "spam_to_normal_probability", inclusive=True
    )
    rng = ensure_rng(seed)
    n = n_normal + n_spam

    normal_part = copying_web_graph(
        n_normal, out_degree=normal_out_degree, seed=rng
    )
    coo = normal_part.adjacency.tocoo()
    sources = list(coo.row)
    targets = list(coo.col)

    # Spam farm: each spam host links to `farm_out_degree` random spam hosts
    # (preferentially to a few designated "target" spam pages) and with small
    # probability to a random normal host.
    spam_ids = np.arange(n_normal, n, dtype=np.int64)
    n_targets = max(1, n_spam // 20)
    farm_targets = spam_ids[:n_targets]
    for spam in spam_ids:
        degree = max(1, int(rng.poisson(farm_out_degree)))
        for _ in range(degree):
            if rng.random() < p_out:
                target = int(rng.integers(0, n_normal))
            elif rng.random() < 0.5:
                target = int(rng.choice(farm_targets))
            else:
                target = int(rng.choice(spam_ids))
            if target != spam:
                sources.append(int(spam))
                targets.append(target)
    # Honeypot edges: a handful of normal hosts are tricked into linking to spam.
    n_honeypot = max(1, n_normal // 100)
    for _ in range(n_honeypot):
        source = int(rng.integers(0, n_normal))
        target = int(rng.choice(spam_ids))
        sources.append(source)
        targets.append(target)

    matrix = sp.csr_matrix(
        (np.ones(len(sources)), (np.asarray(sources), np.asarray(targets))),
        shape=(n, n),
    )
    labels = np.zeros(n, dtype=np.int64)
    labels[n_normal:] = 1
    return DiGraph(matrix), labels


def coauthorship_graph(
    n_authors: int,
    *,
    n_communities: int = 8,
    papers_per_author_mean: float = 4.0,
    authors_per_paper: int = 3,
    n_prolific: int = 3,
    prolific_boost: float = 12.0,
    seed: SeedLike = None,
) -> Tuple[DiGraph, np.ndarray]:
    """Weighted co-authorship network (DBLP stand-in, §5.4 / Table 3).

    Authors are split into research communities; papers are generated by
    sampling a first author and then co-authors mostly from the same
    community.  A handful of "prolific" authors participate in papers across
    all communities, which is what gives them reverse top-k lists much longer
    than their direct co-author count (the Table 3 effect).

    Edge weight ``w_{i,j}`` counts co-authored papers; the node attribute
    ``paper_counts[i]`` is the total number of papers of author ``i`` (the
    ``w_j`` normaliser of the weighted transition matrix).

    Returns
    -------
    (graph, paper_counts)
    """
    n = check_positive_int(n_authors, "n_authors")
    n_communities = check_positive_int(n_communities, "n_communities")
    authors_per_paper = max(2, check_positive_int(authors_per_paper, "authors_per_paper"))
    n_prolific = check_non_negative_int(n_prolific, "n_prolific")
    rng = ensure_rng(seed)

    community = rng.integers(0, n_communities, size=n)
    productivity = rng.gamma(shape=1.5, scale=papers_per_author_mean / 1.5, size=n)
    prolific = rng.choice(n, size=min(n_prolific, n), replace=False)
    productivity[prolific] *= prolific_boost

    n_papers = int(productivity.sum() / authors_per_paper) + 1
    paper_counts = np.zeros(n, dtype=np.int64)
    weights: dict[tuple[int, int], float] = {}
    selection_probability = productivity / productivity.sum()

    for _ in range(n_papers):
        first = int(rng.choice(n, p=selection_probability))
        team = {first}
        while len(team) < authors_per_paper:
            if first in set(prolific.tolist()) or rng.random() < 0.15:
                # Prolific authors (and occasional cross-community papers)
                # draw co-authors from the whole graph.
                candidate = int(rng.choice(n, p=selection_probability))
            else:
                same = np.flatnonzero(community == community[first])
                candidate = int(rng.choice(same))
            team.add(candidate)
        members = sorted(team)
        for member in members:
            paper_counts[member] += 1
        for i_pos, u in enumerate(members):
            for v in members[i_pos + 1:]:
                weights[(u, v)] = weights.get((u, v), 0.0) + 1.0
                weights[(v, u)] = weights.get((v, u), 0.0) + 1.0

    builder = GraphBuilder()
    for author in range(n):
        builder.add_node(author)
    for (u, v), weight in weights.items():
        builder.add_edge(u, v, weight)
    graph = builder.build(node_names=[f"author-{i}" for i in range(n)])
    return graph, paper_counts


def copurchase_graph(
    n_products: int,
    *,
    n_categories: int = 12,
    out_degree_mean: float = 5.0,
    seed: SeedLike = None,
) -> Tuple[DiGraph, np.ndarray]:
    """Product co-purchase graph (the §1 recommendation motivation).

    Directed edge ``i -> j`` means "customers who bought *i* also bought *j*";
    edges stay mostly within a product category with a popularity-skewed
    target choice.  Returns the graph and the category assignment.
    """
    n = check_positive_int(n_products, "n_products")
    n_categories = check_positive_int(n_categories, "n_categories")
    rng = ensure_rng(seed)
    category = rng.integers(0, n_categories, size=n)
    popularity = rng.pareto(1.6, size=n) + 1.0

    sources: list[int] = []
    targets: list[int] = []
    for product in range(n):
        degree = max(1, int(rng.poisson(out_degree_mean)))
        same = np.flatnonzero(category == category[product])
        for _ in range(degree):
            pool = same if (rng.random() < 0.8 and same.size > 1) else np.arange(n)
            weights = popularity[pool]
            target = int(rng.choice(pool, p=weights / weights.sum()))
            if target != product:
                sources.append(product)
                targets.append(target)
    matrix = sp.csr_matrix(
        (np.ones(len(sources)), (np.asarray(sources), np.asarray(targets))),
        shape=(n, n),
    )
    return DiGraph(matrix), category
