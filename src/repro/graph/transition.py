"""Column-stochastic RWR transition matrices (Section 2.1 of the paper).

The paper defines the transition matrix ``A`` so that ``a_{i,j} = 1/OD(j)``
when the edge ``j -> i`` exists: column ``j`` describes how node ``j`` spreads
probability over its out-neighbours.  Section 5.4 additionally uses a
*weighted* variant for the co-authorship graph, ``a_{i,j} = w_{i,j} / w_j``.

Dangling nodes (out-degree zero) break column stochasticity; the paper's
footnote offers two remedies which are both implemented here:

* ``DanglingPolicy.SELF_LOOP`` — give each dangling node a self-loop;
* ``DanglingPolicy.SINK`` — add one extra sink node that every dangling node
  points to and that loops onto itself;
* ``DanglingPolicy.REMOVE`` is handled at the graph level (delete the nodes)
  and ``DanglingPolicy.ERROR`` refuses to proceed.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphError
from .digraph import DiGraph


class DanglingPolicy(str, Enum):
    """How to make columns of dangling nodes stochastic."""

    SELF_LOOP = "self_loop"
    SINK = "sink"
    ERROR = "error"


def transition_matrix(
    graph: DiGraph,
    *,
    dangling: DanglingPolicy | str = DanglingPolicy.SELF_LOOP,
) -> sp.csc_matrix:
    """Return the column-stochastic transition matrix ``A`` of ``graph``.

    ``A[i, j] = 1 / OD(j)`` whenever the edge ``j -> i`` exists, regardless of
    edge weights (the paper's default, unweighted random walk).

    Parameters
    ----------
    graph:
        The directed graph.
    dangling:
        Policy for out-degree-zero nodes.  ``SELF_LOOP`` (default) adds a
        probability-1 self transition; ``SINK`` appends an absorbing sink node
        (the returned matrix is then ``(n+1) x (n+1)``); ``ERROR`` raises.

    Returns
    -------
    scipy.sparse.csc_matrix
        Column-stochastic matrix in CSC format (efficient column slicing,
        which is what BCA and the power method need).
    """
    dangling = DanglingPolicy(dangling)
    adjacency = graph.adjacency  # CSR, rows = source
    out_degree = graph.out_degree.astype(np.float64)
    n = graph.n_nodes

    dangling_ids = np.flatnonzero(out_degree == 0)
    if dangling_ids.size and dangling is DanglingPolicy.ERROR:
        raise GraphError(
            f"graph has {dangling_ids.size} dangling nodes and dangling policy is ERROR"
        )

    # Each existing edge j -> i contributes 1/OD(j) at A[i, j]: transpose the
    # binary adjacency and scale columns by 1/out-degree.
    pattern = adjacency.copy()
    pattern.data = np.ones_like(pattern.data)
    safe_degree = np.where(out_degree > 0, out_degree, 1.0)
    scale = sp.diags(1.0 / safe_degree)
    matrix = (scale @ pattern).T.tocsc()  # A[i, j] = 1/OD(j) for edge j->i

    if dangling_ids.size == 0:
        return _canonical(matrix)

    if dangling is DanglingPolicy.SELF_LOOP:
        loops = sp.csc_matrix(
            (np.ones(dangling_ids.size), (dangling_ids, dangling_ids)), shape=(n, n)
        )
        return _canonical(matrix + loops)

    # SINK: append node n; every dangling column sends all mass to it and the
    # sink loops onto itself.
    matrix = sp.bmat(
        [
            [matrix, sp.csc_matrix((n, 1))],
            [sp.csc_matrix((1, n)), sp.csc_matrix(np.array([[1.0]]))],
        ],
        format="lil",
    )
    for j in dangling_ids:
        matrix[n, j] = 1.0
    return _canonical(matrix.tocsc())


def weighted_transition_matrix(
    graph: DiGraph,
    *,
    dangling: DanglingPolicy | str = DanglingPolicy.SELF_LOOP,
) -> sp.csc_matrix:
    """Return the weighted column-stochastic transition matrix.

    ``A[i, j] = w_{j->i} / sum_k w_{j->k}``, i.e. probability proportional to
    edge weight.  This is the variant used in Section 5.4 for the DBLP
    co-authorship graph where ``w_{i,j}`` is the number of co-authored papers.
    """
    dangling = DanglingPolicy(dangling)
    adjacency = graph.adjacency
    out_weight = graph.out_weight
    n = graph.n_nodes

    dangling_ids = np.flatnonzero(out_weight == 0)
    if dangling_ids.size and dangling is DanglingPolicy.ERROR:
        raise GraphError(
            f"graph has {dangling_ids.size} zero-out-weight nodes and dangling policy is ERROR"
        )

    safe_weight = np.where(out_weight > 0, out_weight, 1.0)
    scale = sp.diags(1.0 / safe_weight)
    matrix = (scale @ adjacency).T.tocsc()

    if dangling_ids.size == 0:
        return _canonical(matrix)

    if dangling is DanglingPolicy.SELF_LOOP:
        loops = sp.csc_matrix(
            (np.ones(dangling_ids.size), (dangling_ids, dangling_ids)), shape=(n, n)
        )
        return _canonical(matrix + loops)

    matrix = sp.bmat(
        [
            [matrix, sp.csc_matrix((n, 1))],
            [sp.csc_matrix((1, n)), sp.csc_matrix(np.array([[1.0]]))],
        ],
        format="lil",
    )
    for j in dangling_ids:
        matrix[n, j] = 1.0
    return _canonical(matrix.tocsc())


def is_column_stochastic(matrix: sp.spmatrix, *, atol: float = 1e-9) -> bool:
    """Check that every column of ``matrix`` sums to 1 (within ``atol``).

    This is the invariant the RWR solvers rely on; property-based tests call
    it on transition matrices of randomly generated graphs.
    """
    if matrix.shape[0] != matrix.shape[1]:
        return False
    column_sums = np.asarray(matrix.sum(axis=0)).ravel()
    if not np.allclose(column_sums, 1.0, atol=atol):
        return False
    return matrix.nnz == 0 or float(matrix.tocsc().data.min()) >= -atol


def column_slice(matrix: sp.csc_matrix, column: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(row_indices, values)`` of a CSC column without copying the matrix."""
    start, stop = matrix.indptr[column], matrix.indptr[column + 1]
    return matrix.indices[start:stop], matrix.data[start:stop]


def _canonical(matrix: sp.spmatrix) -> sp.csc_matrix:
    result = sp.csc_matrix(matrix)
    result.sum_duplicates()
    result.eliminate_zeros()
    result.sort_indices()
    return result
