"""Column-stochastic RWR transition matrices (Section 2.1 of the paper).

The paper defines the transition matrix ``A`` so that ``a_{i,j} = 1/OD(j)``
when the edge ``j -> i`` exists: column ``j`` describes how node ``j`` spreads
probability over its out-neighbours.  Section 5.4 additionally uses a
*weighted* variant for the co-authorship graph, ``a_{i,j} = w_{i,j} / w_j``.

Dangling nodes (out-degree zero) break column stochasticity; the paper's
footnote offers two remedies which are both implemented here:

* ``DanglingPolicy.SELF_LOOP`` — give each dangling node a self-loop;
* ``DanglingPolicy.SINK`` — add one extra sink node that every dangling node
  points to and that loops onto itself;
* ``DanglingPolicy.REMOVE`` is handled at the graph level (delete the nodes)
  and ``DanglingPolicy.ERROR`` refuses to proceed.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphError
from .digraph import DiGraph


class DanglingPolicy(str, Enum):
    """How to make columns of dangling nodes stochastic."""

    SELF_LOOP = "self_loop"
    SINK = "sink"
    ERROR = "error"


def transition_matrix(
    graph: DiGraph,
    *,
    dangling: DanglingPolicy | str = DanglingPolicy.SELF_LOOP,
) -> sp.csc_matrix:
    """Return the column-stochastic transition matrix ``A`` of ``graph``.

    ``A[i, j] = 1 / OD(j)`` whenever the edge ``j -> i`` exists, regardless of
    edge weights (the paper's default, unweighted random walk).

    Parameters
    ----------
    graph:
        The directed graph.
    dangling:
        Policy for out-degree-zero nodes.  ``SELF_LOOP`` (default) adds a
        probability-1 self transition; ``SINK`` appends an absorbing sink node
        (the returned matrix is then ``(n+1) x (n+1)``); ``ERROR`` raises.

    Returns
    -------
    scipy.sparse.csc_matrix
        Column-stochastic matrix in CSC format (efficient column slicing,
        which is what BCA and the power method need).
    """
    dangling = DanglingPolicy(dangling)
    adjacency = graph.adjacency  # CSR, rows = source
    out_degree = graph.out_degree.astype(np.float64)
    n = graph.n_nodes

    dangling_ids = np.flatnonzero(out_degree == 0)
    if dangling_ids.size and dangling is DanglingPolicy.ERROR:
        raise GraphError(
            f"graph has {dangling_ids.size} dangling nodes and dangling policy is ERROR"
        )

    # Each existing edge j -> i contributes 1/OD(j) at A[i, j]: transpose the
    # binary adjacency and scale columns by 1/out-degree.
    pattern = adjacency.copy()
    pattern.data = np.ones_like(pattern.data)
    safe_degree = np.where(out_degree > 0, out_degree, 1.0)
    scale = sp.diags(1.0 / safe_degree)
    matrix = (scale @ pattern).T.tocsc()  # A[i, j] = 1/OD(j) for edge j->i

    if dangling_ids.size == 0:
        return _canonical(matrix)

    if dangling is DanglingPolicy.SELF_LOOP:
        loops = sp.csc_matrix(
            (np.ones(dangling_ids.size), (dangling_ids, dangling_ids)), shape=(n, n)
        )
        return _canonical(matrix + loops)

    # SINK: append node n; every dangling column sends all mass to it and the
    # sink loops onto itself.
    matrix = sp.bmat(
        [
            [matrix, sp.csc_matrix((n, 1))],
            [sp.csc_matrix((1, n)), sp.csc_matrix(np.array([[1.0]]))],
        ],
        format="lil",
    )
    for j in dangling_ids:
        matrix[n, j] = 1.0
    return _canonical(matrix.tocsc())


def weighted_transition_matrix(
    graph: DiGraph,
    *,
    dangling: DanglingPolicy | str = DanglingPolicy.SELF_LOOP,
) -> sp.csc_matrix:
    """Return the weighted column-stochastic transition matrix.

    ``A[i, j] = w_{j->i} / sum_k w_{j->k}``, i.e. probability proportional to
    edge weight.  This is the variant used in Section 5.4 for the DBLP
    co-authorship graph where ``w_{i,j}`` is the number of co-authored papers.
    """
    dangling = DanglingPolicy(dangling)
    adjacency = graph.adjacency
    out_weight = graph.out_weight
    n = graph.n_nodes

    dangling_ids = np.flatnonzero(out_weight == 0)
    if dangling_ids.size and dangling is DanglingPolicy.ERROR:
        raise GraphError(
            f"graph has {dangling_ids.size} zero-out-weight nodes and dangling policy is ERROR"
        )

    safe_weight = np.where(out_weight > 0, out_weight, 1.0)
    scale = sp.diags(1.0 / safe_weight)
    matrix = (scale @ adjacency).T.tocsc()

    if dangling_ids.size == 0:
        return _canonical(matrix)

    if dangling is DanglingPolicy.SELF_LOOP:
        loops = sp.csc_matrix(
            (np.ones(dangling_ids.size), (dangling_ids, dangling_ids)), shape=(n, n)
        )
        return _canonical(matrix + loops)

    matrix = sp.bmat(
        [
            [matrix, sp.csc_matrix((n, 1))],
            [sp.csc_matrix((1, n)), sp.csc_matrix(np.array([[1.0]]))],
        ],
        format="lil",
    )
    for j in dangling_ids:
        matrix[n, j] = 1.0
    return _canonical(matrix.tocsc())


def rebuild_transition_columns(
    transition: sp.csc_matrix,
    graph: DiGraph,
    sources: "np.ndarray | Tuple[int, ...] | list",
    *,
    weighted: bool = False,
    dangling: DanglingPolicy | str = DanglingPolicy.SELF_LOOP,
) -> Tuple[sp.csc_matrix, np.ndarray]:
    """Recompute only the transition columns of ``sources`` against ``graph``.

    This is the delta-maintenance path of the dynamic-graph subsystem: after
    a batch of edge mutations only the columns of the touched source nodes
    can differ, so instead of rebuilding the whole matrix the new columns are
    computed from ``graph`` and spliced into ``transition``.

    The per-column arithmetic replays :func:`transition_matrix` (or the
    weighted variant) operation for operation — ``1/OD(j)`` for the uniform
    walk, ``(1/W(j)) * w_{j,i}`` for the weighted one, a unit self-loop for
    dangling columns — so the spliced matrix is **bit-identical** to a full
    rebuild on ``graph``.  That guarantee is what lets the index maintainer
    keep unaffected BCA states verbatim.

    Parameters
    ----------
    transition:
        The current (canonical CSC) transition matrix, built for the graph
        *before* the mutations.
    graph:
        The graph *after* the mutations (same node count).
    sources:
        Node ids whose out-edges may have changed (a superset is fine).
    weighted:
        Replay :func:`weighted_transition_matrix` instead of the uniform walk.
    dangling:
        Only :attr:`DanglingPolicy.SELF_LOOP` is supported — the ``SINK``
        policy changes the matrix shape, which delta maintenance cannot do.

    Returns
    -------
    (matrix, changed):
        The spliced column-stochastic CSC matrix and the sorted array of
        sources whose column actually differs from ``transition`` (sources
        whose recomputed column is bit-identical are dropped — e.g. a weight
        change under the unweighted walk).
    """
    dangling = DanglingPolicy(dangling)
    if dangling is not DanglingPolicy.SELF_LOOP:
        raise GraphError(
            "rebuild_transition_columns supports only the SELF_LOOP dangling "
            f"policy, got {dangling.value!r}"
        )
    n = graph.n_nodes
    old = sp.csc_matrix(transition)
    if old.shape != (n, n):
        raise GraphError(
            f"transition shape {old.shape} does not match the graph ({n} nodes)"
        )
    source_ids = np.unique(np.asarray(list(sources), dtype=np.int64))
    if source_ids.size and (source_ids[0] < 0 or source_ids[-1] >= n):
        raise GraphError("sources outside the graph's node range")

    adjacency = graph.adjacency  # CSR, canonical: sorted indices, no zeros
    normalizer = graph.out_weight if weighted else graph.out_degree.astype(np.float64)
    replacements = {}
    changed = []
    for j in source_ids.tolist():
        start, stop = adjacency.indptr[j], adjacency.indptr[j + 1]
        if start == stop:
            indices = np.array([j], dtype=old.indices.dtype)
            data = np.array([1.0], dtype=np.float64)
        else:
            indices = adjacency.indices[start:stop].astype(old.indices.dtype)
            # Same rounding as the full builders: a diagonal-scale matmul
            # multiplies each entry by the precomputed reciprocal.
            inverse = 1.0 / normalizer[j]
            if weighted:
                data = inverse * adjacency.data[start:stop]
            else:
                data = np.full(indices.size, inverse, dtype=np.float64)
        old_start, old_stop = old.indptr[j], old.indptr[j + 1]
        same = (
            old_stop - old_start == indices.size
            and np.array_equal(old.indices[old_start:old_stop], indices)
            and np.array_equal(old.data[old_start:old_stop], data)
        )
        if same:
            continue
        replacements[j] = (indices, data)
        changed.append(j)

    if not replacements:
        return old, np.asarray([], dtype=np.int64)

    # Splice by contiguous spans, not per column: the unchanged stretches
    # between changed columns are copied as single slices, so the assembly
    # cost scales with the number of *changed* columns, not with n.
    column_indices = []
    column_data = []
    counts = np.diff(old.indptr).astype(np.int64)
    previous = 0
    for j in changed:  # already sorted (subset of the sorted source_ids)
        if previous < j:
            span = slice(old.indptr[previous], old.indptr[j])
            column_indices.append(old.indices[span])
            column_data.append(old.data[span])
        indices, data = replacements[j]
        column_indices.append(indices)
        column_data.append(data)
        counts[j] = indices.size
        previous = j + 1
    if previous < n:
        span = slice(old.indptr[previous], old.indptr[n])
        column_indices.append(old.indices[span])
        column_data.append(old.data[span])
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(old.indptr.dtype)
    matrix = sp.csc_matrix(
        (
            np.concatenate(column_data),
            np.concatenate(column_indices),
            indptr,
        ),
        shape=(n, n),
    )
    return matrix, np.asarray(changed, dtype=np.int64)


def is_column_stochastic(matrix: sp.spmatrix, *, atol: float = 1e-9) -> bool:
    """Check that every column of ``matrix`` sums to 1 (within ``atol``).

    This is the invariant the RWR solvers rely on; property-based tests call
    it on transition matrices of randomly generated graphs.
    """
    if matrix.shape[0] != matrix.shape[1]:
        return False
    column_sums = np.asarray(matrix.sum(axis=0)).ravel()
    if not np.allclose(column_sums, 1.0, atol=atol):
        return False
    return matrix.nnz == 0 or float(matrix.tocsc().data.min()) >= -atol


def column_slice(matrix: sp.csc_matrix, column: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(row_indices, values)`` of a CSC column without copying the matrix."""
    start, stop = matrix.indptr[column], matrix.indptr[column + 1]
    return matrix.indices[start:stop], matrix.data[start:stop]


def _canonical(matrix: sp.spmatrix) -> sp.csc_matrix:
    result = sp.csc_matrix(matrix)
    result.sum_duplicates()
    result.eliminate_zeros()
    result.sort_indices()
    return result
