"""Incremental construction of :class:`~repro.graph.digraph.DiGraph` objects.

The builder accepts edges with arbitrary hashable node keys (strings,
integers, tuples), assigns dense integer ids in insertion order, and produces
an immutable :class:`DiGraph` plus the id mapping.  This is the path used by
the edge-list reader and by the application modules that build graphs from
domain objects (authors, hosts, products).
"""

from __future__ import annotations

from array import array
import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..exceptions import GraphError
from .digraph import DiGraph

Edge = Tuple[Hashable, Hashable]
WeightedEdge = Tuple[Hashable, Hashable, float]


class GraphBuilder:
    """Accumulates edges and node labels, then freezes them into a DiGraph.

    Examples
    --------
    >>> builder = GraphBuilder()
    >>> builder.add_edge("a", "b")
    >>> builder.add_edge("b", "c", weight=2.0)
    >>> graph = builder.build()
    >>> graph.n_nodes, graph.n_edges
    (3, 2)
    """

    #: Accepted duplicate-edge policies.
    ON_DUPLICATE = ("sum", "last", "error")

    def __init__(
        self, *, allow_self_loops: bool = True, on_duplicate: str = "sum"
    ) -> None:
        if on_duplicate not in self.ON_DUPLICATE:
            raise GraphError(
                f"on_duplicate must be one of {self.ON_DUPLICATE}, got {on_duplicate!r}"
            )
        self._ids: Dict[Hashable, int] = {}
        # Compact typed storage (8 bytes per entry instead of a pointer to a
        # boxed Python object); ``build`` views these buffers zero-copy.
        self._sources = array("q")
        self._targets = array("q")
        self._weights = array("d")
        self._allow_self_loops = allow_self_loops
        self._on_duplicate = on_duplicate
        # Position of each (source, target) pair in the edge lists; only
        # needed (and maintained) when duplicates are not simply summed.
        self._edge_positions: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    @property
    def on_duplicate(self) -> str:
        """How repeated insertions of the same edge are resolved.

        ``"sum"`` (the default, and the historical behaviour) lets CSR
        construction sum the weights; ``"last"`` keeps only the most recent
        weight; ``"error"`` raises :class:`GraphError` on the second
        insertion of any ``(source, target)`` pair.
        """
        return self._on_duplicate

    def add_node(self, key: Hashable) -> int:
        """Register ``key`` as a node (idempotent) and return its integer id."""
        if key not in self._ids:
            self._ids[key] = len(self._ids)
        return self._ids[key]

    def add_edge(self, source: Hashable, target: Hashable, weight: float = 1.0) -> None:
        """Add a directed edge ``source -> target`` with the given weight.

        Repeated insertions of the same pair follow the builder's
        ``on_duplicate`` policy (sum weights, keep the last, or raise).
        """
        if not (weight >= 0 and math.isfinite(weight)):
            raise GraphError(
                f"edge weight must be non-negative and finite, got {weight}"
            )
        if source == target and not self._allow_self_loops:
            return
        source_id = self.add_node(source)
        target_id = self.add_node(target)
        if self._on_duplicate != "sum":
            position = self._edge_positions.get((source_id, target_id))
            if position is not None:
                if self._on_duplicate == "error":
                    raise GraphError(
                        f"duplicate edge {source!r} -> {target!r} "
                        f"(builder has on_duplicate='error')"
                    )
                self._weights[position] = float(weight)  # "last" wins
                return
            self._edge_positions[(source_id, target_id)] = len(self._sources)
        self._sources.append(source_id)
        self._targets.append(target_id)
        self._weights.append(float(weight))

    def add_edges(self, edges: Iterable[Edge | WeightedEdge]) -> None:
        """Add many edges; each item is ``(source, target)`` or ``(source, target, weight)``."""
        for edge in edges:
            if len(edge) == 2:
                source, target = edge  # type: ignore[misc]
                self.add_edge(source, target)
            elif len(edge) == 3:
                source, target, weight = edge  # type: ignore[misc]
                self.add_edge(source, target, weight)
            else:
                raise GraphError(f"edges must be 2- or 3-tuples, got {edge!r}")

    def add_undirected_edge(self, u: Hashable, v: Hashable, weight: float = 1.0) -> None:
        """Add both directions of an undirected edge (used by co-authorship graphs)."""
        self.add_edge(u, v, weight)
        self.add_edge(v, u, weight)

    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of distinct nodes registered so far."""
        return len(self._ids)

    @property
    def n_edges(self) -> int:
        """Number of edge insertions so far (duplicates not yet merged)."""
        return len(self._sources)

    def node_mapping(self) -> Dict[Hashable, int]:
        """Return a copy of the ``key -> integer id`` mapping."""
        return dict(self._ids)

    def build(self, *, node_names: Optional[Sequence[str]] = None) -> DiGraph:
        """Freeze the accumulated edges into an immutable :class:`DiGraph`.

        Under the default ``on_duplicate="sum"`` policy duplicate edges are
        merged by summing weights (``"last"`` and ``"error"`` resolve them at
        insertion time instead).  When ``node_names`` is omitted, the string
        form of each node key becomes its label.
        """
        n = len(self._ids)
        if n == 0:
            raise GraphError("cannot build an empty graph")
        # Zero-copy views over the typed arrays: CSR construction copies the
        # coordinates into its own index arrays, so no second full copy of the
        # accumulated edge list is ever held alongside the builder's storage.
        matrix = sp.csr_matrix(
            (
                np.frombuffer(self._weights, dtype=np.float64),
                (
                    np.frombuffer(self._sources, dtype=np.int64),
                    np.frombuffer(self._targets, dtype=np.int64),
                ),
            ),
            shape=(n, n),
        )
        if node_names is None:
            names: List[str] = [""] * n
            for key, idx in self._ids.items():
                names[idx] = str(key)
            node_names = names
        return DiGraph(matrix, node_names)


def from_edges(
    edges: Iterable[Edge | WeightedEdge],
    *,
    n_nodes: Optional[int] = None,
    allow_self_loops: bool = True,
) -> DiGraph:
    """Build a graph directly from an iterable of integer-id edges.

    Unlike :class:`GraphBuilder`, node keys here must already be integers and
    are used verbatim as ids; ``n_nodes`` can be given to include isolated
    trailing nodes.
    """
    sources: List[int] = []
    targets: List[int] = []
    weights: List[float] = []
    max_id = -1
    for edge in edges:
        if len(edge) == 2:
            source, target = edge  # type: ignore[misc]
            weight = 1.0
        else:
            source, target, weight = edge  # type: ignore[misc]
        source, target = int(source), int(target)
        if source < 0 or target < 0:
            raise GraphError("node ids must be non-negative integers")
        if source == target and not allow_self_loops:
            continue
        sources.append(source)
        targets.append(target)
        weights.append(float(weight))
        max_id = max(max_id, source, target)
    size = max(max_id + 1, n_nodes or 0)
    if size == 0:
        raise GraphError("cannot build an empty graph")
    matrix = sp.csr_matrix(
        (
            np.asarray(weights, dtype=np.float64),
            (np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)),
        ),
        shape=(size, size),
    )
    return DiGraph(matrix)
