"""Internal argument-validation helpers shared across the library.

These helpers raise :class:`repro.exceptions.InvalidParameterError` with
consistent, descriptive messages so that every public entry point reports
bad input the same way.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import InvalidParameterError


def check_probability(value: float, name: str, *, inclusive: bool = False) -> float:
    """Validate that ``value`` is a probability.

    Parameters
    ----------
    value:
        The value to check.
    name:
        Parameter name used in the error message.
    inclusive:
        When ``True`` the closed interval ``[0, 1]`` is accepted, otherwise
        the open interval ``(0, 1)`` is required.
    """
    value = float(value)
    if not np.isfinite(value):
        raise InvalidParameterError(f"{name} must be finite, got {value!r}")
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise InvalidParameterError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise InvalidParameterError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a strictly positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidParameterError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidParameterError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise InvalidParameterError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_positive_float(value: float, name: str) -> float:
    """Validate that ``value`` is a strictly positive finite float."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise InvalidParameterError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative_float(value: float, name: str) -> float:
    """Validate that ``value`` is a non-negative finite float."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise InvalidParameterError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_node_index(node: int, n_nodes: int, name: str = "node") -> int:
    """Validate that ``node`` is a valid node index for a graph of ``n_nodes``."""
    if isinstance(node, bool) or not isinstance(node, (int, np.integer)):
        raise InvalidParameterError(f"{name} must be an integer index, got {type(node).__name__}")
    node = int(node)
    if not 0 <= node < n_nodes:
        raise InvalidParameterError(
            f"{name} must be in [0, {n_nodes - 1}], got {node}"
        )
    return node


def check_k(k: int, n_nodes: int, *, maximum: int | None = None) -> int:
    """Validate a top-k parameter against the graph size and an optional cap."""
    k = check_positive_int(k, "k")
    if k > n_nodes:
        raise InvalidParameterError(f"k={k} exceeds the number of nodes ({n_nodes})")
    if maximum is not None and k > maximum:
        raise InvalidParameterError(f"k={k} exceeds the index capacity K={maximum}")
    return k


def check_membership(value: str, allowed: Sequence[str], name: str) -> str:
    """Validate that a string option is one of the allowed choices."""
    if value not in allowed:
        choices = ", ".join(repr(a) for a in allowed)
        raise InvalidParameterError(f"{name} must be one of {choices}, got {value!r}")
    return value


def as_node_array(nodes: Iterable[int], n_nodes: int, name: str = "nodes") -> np.ndarray:
    """Convert an iterable of node ids to a validated ``int64`` array."""
    array = np.asarray(list(nodes), dtype=np.int64)
    if array.ndim != 1:
        raise InvalidParameterError(f"{name} must be one-dimensional")
    if array.size and (array.min() < 0 or array.max() >= n_nodes):
        raise InvalidParameterError(
            f"{name} contains ids outside [0, {n_nodes - 1}]"
        )
    return array
