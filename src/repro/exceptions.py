"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch a single base class.  Specific subclasses distinguish user input
problems from algorithmic/state problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation is invalid for it."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node identifier does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EmptyGraphError(GraphError):
    """Raised when an algorithm requires a non-empty graph."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to converge within its budget."""

    def __init__(self, message: str, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class IndexError_(ReproError):
    """Raised when the reverse top-k index is missing or inconsistent."""


class IndexNotBuiltError(IndexError_):
    """Raised when a query is issued against an index that was never built."""


class InvalidParameterError(ReproError, ValueError):
    """Raised when a caller passes an out-of-range or inconsistent parameter."""


class QueryError(ReproError):
    """Raised when a reverse top-k query cannot be evaluated."""


class ConfigurationError(ReproError):
    """Raised when a requested feature is not available in this environment.

    The canonical case is selecting an optional compiled backend (e.g.
    ``backend="numba"``) on an installation without the corresponding extra:
    the registry raises this error with an actionable message instead of
    letting an ``ImportError`` escape from deep inside the kernel.
    """


class ServiceClosedError(ReproError, RuntimeError):
    """Raised when a request reaches a service whose resources are released.

    :meth:`ReverseTopKService.close` is idempotent and safe to call while
    requests are in flight: in-flight calls drain first, and every call that
    arrives afterwards fails fast with this error instead of touching a
    shut-down executor or a released shard pool.
    """


class SerializationError(ReproError):
    """Raised when index or graph (de)serialization fails."""
