"""Brute-force baselines for reverse top-k search (§3 and §5.3, Figure 8).

Three comparators are implemented:

* :func:`brute_force_reverse_topk` — the textbook baseline ("BF"): compute the
  full proximity matrix on the fly and scan it.  Only usable on tiny graphs;
  the ground-truth oracle for correctness tests.
* :class:`InfeasibleBruteForce` ("IBF") — precompute and keep the entire exact
  proximity matrix ``P``; each query then costs a single row scan.  The paper
  calls it infeasible because ``P`` needs ``O(n^2)`` memory (6.7 TB for
  Web-google), but it is the best possible per-query time.
* :class:`FeasibleBruteForce` ("FBF") — precompute only the exact top-K
  proximity value per node (the k-th thresholds), then answer queries with
  PMPN plus a comparison per node.  Same offline cost as IBF, bounded memory,
  slower queries than IBF.
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp

from .._validation import check_k, check_node_index
from ..rwr.power_method import DEFAULT_ALPHA, DEFAULT_TOLERANCE, proximity_vector
from ..rwr.proximity import ProximityMatrix
from ..utils.sparsetools import top_k_descending
from ..utils.timer import Timer
from .pmpn import proximity_to_node

#: Numerical slack when comparing a proximity against a k-th threshold.  The
#: reverse top-k definition includes ties (``p_u(q) >= p^kmax_u``); different
#: exact solvers agree only to ~1e-10, so a slightly larger slack keeps tied
#: nodes inside the answer regardless of which solver produced the values.
_TIE_SLACK = 1e-9


def brute_force_reverse_topk(
    transition: sp.spmatrix,
    query: int,
    k: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """Exact reverse top-k by computing every proximity vector (BF, §3).

    The ground-truth oracle used throughout the test suite.  ``O(n)`` power
    method runs — do not call on large graphs.
    """
    n = transition.shape[0]
    query = check_node_index(query, n, "query")
    k = check_k(k, n)
    result = []
    for node in range(n):
        vector = proximity_vector(transition, node, alpha=alpha, tolerance=tolerance).vector
        kth = float(np.partition(vector, -k)[-k])
        if vector[query] >= kth - _TIE_SLACK:
            result.append(node)
    return np.asarray(result, dtype=np.int64)


class InfeasibleBruteForce:
    """IBF: materialise the exact proximity matrix once, answer queries by row scan.

    Attributes
    ----------
    offline_seconds:
        Wall-clock time of the precomputation (the large upfront cost in
        Figure 8).
    """

    def __init__(
        self,
        transition: sp.spmatrix,
        capacity: int,
        *,
        alpha: float = DEFAULT_ALPHA,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        self.alpha = alpha
        self.capacity = capacity
        timer = Timer()
        with timer:
            self.matrix = ProximityMatrix.from_transition(
                transition, alpha=alpha, tolerance=tolerance
            )
            n = self.matrix.n_nodes
            # Exact k-th largest value of each column for every k <= capacity.
            capacity = min(capacity, n)
            self.capacity = capacity
            self._top_values = np.zeros((capacity, n))
            for node in range(n):
                self._top_values[:, node] = top_k_descending(
                    self.matrix.column(node), capacity
                )
        self.offline_seconds = timer.elapsed

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered."""
        return self.matrix.n_nodes

    def query(self, query: int, k: int) -> np.ndarray:
        """Answer a reverse top-k query by comparing the query row to thresholds."""
        query = check_node_index(query, self.n_nodes, "query")
        k = check_k(k, self.n_nodes, maximum=self.capacity)
        row = self.matrix.row(query)
        thresholds = self._top_values[k - 1, :]
        return np.flatnonzero(row >= thresholds - _TIE_SLACK).astype(np.int64)

    def storage_bytes(self) -> int:
        """Memory footprint of the dense matrix plus thresholds."""
        return int(self.matrix.nbytes() + self._top_values.nbytes)


class FeasibleBruteForce:
    """FBF: precompute exact per-node top-K thresholds, use PMPN at query time.

    Keeps only ``K`` values per node (like our index) but pays the full
    ``O(n)`` power-method precomputation and gains no pruning or refinement —
    every query costs one PMPN run plus an ``O(n)`` comparison, and the
    offline phase is as expensive as IBF's.
    """

    def __init__(
        self,
        transition: sp.spmatrix,
        capacity: int,
        *,
        alpha: float = DEFAULT_ALPHA,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        self.transition = sp.csc_matrix(transition)
        self.alpha = alpha
        self.tolerance = tolerance
        n = self.transition.shape[0]
        self.capacity = min(capacity, n)
        timer = Timer()
        with timer:
            self._top_values = np.zeros((self.capacity, n))
            for node in range(n):
                vector = proximity_vector(
                    self.transition, node, alpha=alpha, tolerance=tolerance
                ).vector
                self._top_values[:, node] = top_k_descending(vector, self.capacity)
        self.offline_seconds = timer.elapsed

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered."""
        return self.transition.shape[0]

    def query(self, query: int, k: int) -> np.ndarray:
        """Answer a query with one PMPN run plus a threshold comparison per node."""
        query = check_node_index(query, self.n_nodes, "query")
        k = check_k(k, self.n_nodes, maximum=self.capacity)
        row = proximity_to_node(
            self.transition, query, alpha=self.alpha, tolerance=self.tolerance
        ).proximities
        thresholds = self._top_values[k - 1, :]
        return np.flatnonzero(row >= thresholds - _TIE_SLACK).astype(np.int64)

    def storage_bytes(self) -> int:
        """Memory footprint of the stored thresholds."""
        return int(self._top_values.nbytes)
