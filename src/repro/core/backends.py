"""Registry and availability probes for the optional compiled backends.

The propagation kernel and the scan pipeline each offer a ``"numba"``
implementation that is only usable when the optional ``numba`` package is
installed (``pip install repro[fast]``).  This module centralises the probe
so that

* :func:`available_backends` reports exactly the backends that will work on
  this installation,
* :func:`require_backend` turns "numba selected but not installed" into a
  clear :class:`~repro.exceptions.ConfigurationError` instead of an
  ``ImportError`` escaping from deep inside the kernel, and
* :func:`load_numba_kernels` imports (and thereby JIT-registers) the
  compiled kernels exactly once.

NumPy remains the oracle: every numba code path has a NumPy twin that
produces the same decisions, and the library silently falls back to it when
``numba`` is absent *unless* the caller explicitly asked for ``"numba"``.
"""

from __future__ import annotations

import importlib
import importlib.util
from typing import Optional, Tuple

from ..exceptions import ConfigurationError

#: Memoised probe result: ``None`` = not probed yet.
_NUMBA_AVAILABLE: Optional[bool] = None

#: Memoised kernels module (imported at most once).
_NUMBA_KERNELS = None


def numba_available() -> bool:
    """Return ``True`` when the optional ``numba`` package can be imported.

    The probe is cheap (a find-spec, no import) and memoised; installing or
    removing numba mid-process is not supported.
    """
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        _NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None
    return _NUMBA_AVAILABLE


def available_backends() -> Tuple[str, ...]:
    """Propagation/scan backends usable on this installation.

    Always contains ``"scalar"``, ``"vectorized"`` and ``"sparse"`` (all
    pure NumPy/SciPy); ``"numba"`` is appended only when the optional
    dependency imports.
    """
    backends = ("scalar", "vectorized", "sparse")
    if numba_available():
        backends += ("numba",)
    return backends


def require_backend(backend: str) -> str:
    """Validate that ``backend`` is known *and* usable, or raise clearly.

    Unknown names raise :class:`~repro.exceptions.ConfigurationError` listing
    the known backends; known-but-unavailable ones (``"numba"`` without the
    extra installed) raise with an actionable install hint.  Returns the
    validated name so callers can use it inline.
    """
    from .config import PROPAGATION_BACKENDS

    if backend not in PROPAGATION_BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; known backends: {PROPAGATION_BACKENDS}"
        )
    if backend == "numba" and not numba_available():
        raise ConfigurationError(
            "backend 'numba' requires the optional numba package; install it "
            "with `pip install repro[fast]` or select one of "
            f"{available_backends()}"
        )
    return backend


def load_numba_kernels():
    """Import and return the compiled-kernel module (memoised).

    Raises :class:`~repro.exceptions.ConfigurationError` when numba is not
    installed, so callers never see a raw ``ImportError`` from the kernel
    internals.
    """
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is None:
        require_backend("numba")
        _NUMBA_KERNELS = importlib.import_module("repro.core._numba_kernels")
    return _NUMBA_KERNELS
