"""Partitioned index shards with a query router (out-of-core serving).

The monolithic :class:`~repro.core.index.ReverseTopKIndex` keeps the whole
``(K, n)`` columnar state — plus every per-node BCA state dict — resident in
one process.  That caps the graph size a single serving process can hold well
short of the ROADMAP's "millions of users" target.  This module partitions
the index the same way PR 4 already shards its *construction*:

``IndexShard``
    One contiguous node range ``[start, stop)`` holding that range's slice of
    the columnar views (lower-bound matrix columns, effective-residual-mass
    vector, exactness mask) and its node states.  A shard is backed either

    * **in RAM** — plain writable arrays plus a materialised state list, or
    * **by the on-disk layout** — the columnar slices and the flattened
      state arrays are ``np.memmap`` views over per-shard ``.npy`` files
      opened read-only, and states are materialised lazily, per node, by
      slicing single rows out of the mapped arrays.

    The on-disk layout is **immutable**: a refinement write-back promotes the
    owning shard's columnar arrays into RAM (copy-on-write) instead of
    mutating files that are content-addressed by the snapshot layer.  Written
    states live in a per-shard overlay consulted before the lazy arrays.

``ShardedReverseTopKIndex``
    The partitioned index: global hub data (hub set, hub proximity matrix,
    rounding deficits) shared across ``P`` contiguous shards, plus the same
    node-level API the query engine consumes on the monolithic index
    (``state`` / ``set_state`` / ``sync_state`` / ``states`` /
    ``replace_contents`` / ``version``).  Reads and write-backs route to the
    owning shard; the mutation version stays **global** — one counter, bumped
    exactly like the monolithic index, so the serving layer's version-keyed
    cache behaves identically.

``ShardedReverseTopKEngine``
    The query router: PMPN runs once globally (proximities to the query do
    not partition), then Algorithm 4's vectorized scan — whole-array prune,
    exact shortcut, batched staircase bound — runs **per shard** over that
    shard's columnar slice, sequentially or fanned across a thread pool.
    Per-shard outcomes concatenate in shard order (node ranges are contiguous
    and ascending), so candidates refine in exactly the monolithic scan
    order and answers, statistics counters, and refinement write-backs are
    bit-identical to :class:`~repro.core.query.ReverseTopKEngine` on the
    equivalent monolithic index.

``build_sharded_index``
    Constructs the sharded layout directly — each shard's states are built
    (optionally on PR 4's process-pool shard workers) and written out before
    the next shard starts, so peak memory is one shard plus the hub matrix
    and there is **no monolithic merge step**.

Bit-identity argument, in one place: the staircase bound, prune comparison
and exactness shortcut are all column-local (no cross-node arithmetic), so
evaluating them on a column slice yields the same floats as on the full
matrix; per-shard candidate lists concatenated in shard order reproduce the
monolithic ascending candidate order; and refinement operates on the same
:class:`NodeState` values through the same kernel.  ``float64`` round-trips
through ``.npy``/``.npz`` files are bitwise exact, so memmap-backed shards
scan the same values an in-RAM shard holds.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
import os
from pathlib import Path
import tempfile
import threading
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union
import zipfile

import numpy as np
import scipy.sparse as sp

from .._validation import (
    check_node_index,
    check_non_negative_int,
    check_positive_int,
)
from ..exceptions import InvalidParameterError, SerializationError
from ..graph.digraph import DiGraph
from ..obs.tracing import current_span
from .bounds import float32_prune_envelope
from .config import IndexParams
from .hubs import HubSet
from .index import (
    _UMASK,
    ColumnarView,
    NodeState,
    ReverseTopKIndex,
    _states_to_arrays,
    effective_state_residual_mass,
)
from .lbi import (
    _bca_shard,
    _collect_shard,
    _compute_hub_matrix,
    _init_shard_worker,
    _resolve_build_inputs,
)
from .propagation import PropagationKernel, initial_node_state
from .query import ReverseTopKEngine, _ScanTally, columnar_stage_decisions
from .statestore import (
    STATE_ARRAY_NAMES,
    ColumnarStateStore,
    StateArraysSink,
    assemble_store,
    count_materialization,
)

PathLike = Union[str, os.PathLike]

#: Accepted shard backings.
SHARD_BACKINGS = ("ram", "memmap")

#: On-disk layout format version (bumped on incompatible layout changes).
_LAYOUT_VERSION = 1

#: Name of the layout's global metadata archive.  It is written *last*:
#: a directory without a readable meta archive is a torn layout and is
#: treated as a snapshot miss, never loaded partially.
_META_NAME = "sharded-meta.npz"

#: Bytes per stored value/index in the resident-size estimate (mirrors the
#: monolithic index's Table 2 accounting).
_VALUE_BYTES = 8
_INDEX_BYTES = 8

#: Flattened per-shard state arrays (the :func:`_states_to_arrays` layout).
#: Each is persisted as its own ``.npy`` file so shards can memmap them and
#: materialise *single nodes* by slicing — loading a whole shard's states
#: because one candidate needed refinement would erode the memory budget.
#: The layout is canonically defined by the columnar state store — the
#: build path hands shards the same arrays it would otherwise persist.
_STATE_ARRAY_NAMES = STATE_ARRAY_NAMES


def shard_boundaries(n_nodes: int, n_shards: int) -> np.ndarray:
    """Contiguous, balanced node-range boundaries: ``P + 1`` ascending offsets.

    Shard ``i`` covers ``[boundaries[i], boundaries[i + 1])``.  Sizes differ
    by at most one (the first ``n_nodes % P`` shards get the extra node), and
    ``n_shards`` is clamped to ``n_nodes`` so no shard is ever empty.
    """
    check_positive_int(n_nodes, "n_nodes")
    check_positive_int(n_shards, "n_shards")
    n_shards = min(n_shards, n_nodes)
    base, extra = divmod(n_nodes, n_shards)
    sizes = np.full(n_shards, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


def _shard_stem(ordinal: int) -> str:
    return f"shard-{ordinal:05d}"


def _atomic_write(path: Path, writer: Callable) -> None:
    """Write a file via a uniquely-named temp sibling plus ``os.replace``."""
    try:
        descriptor, name = tempfile.mkstemp(prefix=f"{path.name}.tmp-", dir=path.parent)
    except OSError as exc:
        raise SerializationError(f"cannot write {path}: {exc}") from exc
    temporary = Path(name)
    try:
        with os.fdopen(descriptor, "wb") as handle:
            os.fchmod(descriptor, 0o666 & ~_UMASK)
            writer(handle)
            handle.flush()
            os.fsync(descriptor)
        os.replace(temporary, path)
    except OSError as exc:
        raise SerializationError(f"cannot write {path}: {exc}") from exc
    finally:
        if temporary.exists():
            temporary.unlink()


class IndexShard:
    """One contiguous node-range slice of a sharded reverse top-k index.

    Constructed through :meth:`from_states` (in-RAM backing) or
    :meth:`from_layout` (memmap backing over the immutable on-disk layout).
    Node indices at this level are *local* (``0 .. stop - start``); the
    owning :class:`ShardedReverseTopKIndex` translates.
    """

    def __init__(self, start: int, stop: int, capacity: int) -> None:
        if stop <= start:
            raise InvalidParameterError(
                f"shard range [{start}, {stop}) must be non-empty"
            )
        self.start = int(start)
        self.stop = int(stop)
        self.capacity = int(capacity)
        self.backing = "ram"
        self.directory: Optional[Path] = None
        self.ordinal: int = 0
        # Columnar slice (None = not yet opened for memmap shards).
        self._lower: Optional[np.ndarray] = None
        self._mass: Optional[np.ndarray] = None
        self._exact: Optional[np.ndarray] = None
        # float32 mirror of the lower slice (lazy; memmapped when the layout
        # carries a ``.lower32.npy`` file, derived from ``_lower`` otherwise).
        self._lower32: Optional[np.ndarray] = None
        # Per-k float64 screening rows derived from the mirror, cached so a
        # query workload converts each threshold row once, not per query.
        self._screen_bounds: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        # State storage: a full list (RAM) or lazy flattened arrays plus a
        # write overlay (memmap).
        self._states: Optional[List[NodeState]] = None
        self._state_arrays: Optional[Dict[str, np.ndarray]] = None
        self._overlay: Dict[int, NodeState] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_states(
        cls,
        start: int,
        stop: int,
        capacity: int,
        states: Sequence[NodeState],
        mass_of: Callable[[NodeState], float],
    ) -> "IndexShard":
        """In-RAM shard over ``states`` (one per node of the range, in order)."""
        shard = cls(start, stop, capacity)
        if len(states) != shard.n_nodes:
            raise InvalidParameterError(
                f"shard [{start}, {stop}) needs {shard.n_nodes} states, "
                f"got {len(states)}"
            )
        shard._states = list(states)
        shard._lower = np.zeros((capacity, shard.n_nodes), dtype=np.float64)
        shard._mass = np.zeros(shard.n_nodes, dtype=np.float64)
        shard._exact = np.zeros(shard.n_nodes, dtype=bool)
        for local, state in enumerate(shard._states):
            shard._write_column(local, state, mass_of(state))
        return shard

    @classmethod
    def from_columns(
        cls,
        start: int,
        stop: int,
        capacity: int,
        columns: ColumnarView,
        states: Sequence[NodeState],
    ) -> "IndexShard":
        """In-RAM shard adopting pre-built columnar slices (copied)."""
        shard = cls(start, stop, capacity)
        if len(states) != shard.n_nodes:
            raise InvalidParameterError(
                f"shard [{start}, {stop}) needs {shard.n_nodes} states, "
                f"got {len(states)}"
            )
        shard._states = list(states)
        shard._lower = np.array(columns.lower, dtype=np.float64, copy=True)
        shard._mass = np.array(columns.residual_mass, dtype=np.float64, copy=True)
        shard._exact = np.array(columns.is_exact, dtype=bool, copy=True)
        return shard

    @classmethod
    def from_store(
        cls,
        start: int,
        stop: int,
        capacity: int,
        store: ColumnarStateStore,
        mass: np.ndarray,
    ) -> "IndexShard":
        """In-RAM shard adopting a columnar state store (no state objects).

        The store's flattened arrays become the shard's lazy state backing
        directly — exactly the representation :meth:`write` persists and
        :meth:`from_layout` memmaps back — so building, persisting and
        scanning a shard never materialises per-node ``NodeState`` objects;
        states stay lazy per node, as on a memmap shard.  ``mass`` is the
        per-node effective residual mass (the store computes it bitwise
        exactly as ``effective_state_residual_mass``).
        """
        shard = cls(start, stop, capacity)
        if store.n_states != shard.n_nodes:
            raise InvalidParameterError(
                f"shard [{start}, {stop}) needs {shard.n_nodes} states, "
                f"got {store.n_states}"
            )
        if int(store.capacity) != shard.capacity:
            raise InvalidParameterError(
                f"store capacity {store.capacity} does not match the shard "
                f"capacity {capacity}"
            )
        mass = np.ascontiguousarray(mass, dtype=np.float64)
        if mass.shape != (shard.n_nodes,):
            raise InvalidParameterError(
                f"shard [{start}, {stop}) needs {shard.n_nodes} masses, "
                f"got shape {mass.shape}"
            )
        shard._state_arrays = store.to_arrays()
        shard._lower = store.lower_matrix()
        shard._mass = mass
        shard._exact = store.is_exact_mask()
        return shard

    @classmethod
    def from_layout(
        cls, directory: PathLike, ordinal: int, start: int, stop: int, capacity: int
    ) -> "IndexShard":
        """Memmap shard over the immutable layout files in ``directory``.

        Nothing is opened here; columnar memmaps and state arrays load
        lazily on first access, so constructing a sharded index from a large
        layout is O(P) metadata work.
        """
        shard = cls(start, stop, capacity)
        shard.backing = "memmap"
        shard.directory = Path(directory)
        shard.ordinal = int(ordinal)
        suffixes = ["lower.npy", "mass.npy", "exact.npy"]
        suffixes += [f"states.{name}.npy" for name in _STATE_ARRAY_NAMES]
        for suffix in suffixes:
            path = shard.directory / f"{_shard_stem(ordinal)}.{suffix}"
            if not path.exists():
                raise SerializationError(f"sharded layout is missing {path}")
        return shard

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of nodes in this shard's range."""
        return self.stop - self.start

    @property
    def is_promoted(self) -> bool:
        """Whether a write-back copied this shard's columns into RAM."""
        return self.backing == "memmap" and self._lower is not None and (
            self._lower.flags.writeable
        )

    @property
    def columns(self) -> ColumnarView:
        """This shard's columnar slice (read-only for callers)."""
        self._ensure_columns()
        return ColumnarView(
            lower=self._lower, residual_mass=self._mass, is_exact=self._exact
        )

    def _ensure_columns(self) -> None:
        if self._lower is not None:
            return
        stem = _shard_stem(self.ordinal)
        try:
            lower = np.load(self.directory / f"{stem}.lower.npy", mmap_mode="r")
            mass = np.load(self.directory / f"{stem}.mass.npy", mmap_mode="r")
            exact = np.load(self.directory / f"{stem}.exact.npy", mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise SerializationError(
                f"cannot open shard {self.ordinal} columns under {self.directory}: {exc}"
            ) from exc
        if lower.shape != (self.capacity, self.n_nodes):
            raise SerializationError(
                f"shard {self.ordinal} lower matrix has shape {lower.shape}, "
                f"expected {(self.capacity, self.n_nodes)}"
            )
        # Concurrent read-side opens are benign duplicates, but the guard
        # field (_lower) must be published *last*: a reader that sees it set
        # must never find the companions still None.
        self._mass = mass
        self._exact = exact
        self._lower = lower

    def lower32(self) -> np.ndarray:
        """The float32 mirror of this shard's lower-bound slice (read-only).

        Memmap shards open the layout's ``.lower32.npy`` companion when it
        exists (written by current layouts; absent from older ones), so the
        screening pass streams half the bytes off disk; otherwise — and for
        RAM or promoted shards, whose live float64 columns are the only
        authoritative values — the mirror is derived from ``_lower`` and
        cached.  Write-backs keep a derived mirror in sync and drop a
        memmapped one (promotion makes the on-disk file stale).
        """
        self._ensure_columns()
        if self._lower32 is None:
            path = (
                self.directory / f"{_shard_stem(self.ordinal)}.lower32.npy"
                if self.backing == "memmap" and not self.is_promoted
                else None
            )
            if path is not None and path.exists():
                try:
                    mirror = np.load(path, mmap_mode="r")
                except (OSError, ValueError) as exc:
                    raise SerializationError(
                        f"cannot open shard {self.ordinal} float32 plane "
                        f"under {self.directory}: {exc}"
                    ) from exc
                if mirror.shape != self._lower.shape or mirror.dtype != np.float32:
                    raise SerializationError(
                        f"shard {self.ordinal} float32 plane has shape "
                        f"{mirror.shape} dtype {mirror.dtype}, expected "
                        f"{self._lower.shape} float32"
                    )
                self._lower32 = mirror
            else:
                self._lower32 = np.asarray(self._lower, dtype=np.float32)
        return self._lower32

    def screen_bounds(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(hi, lo)`` float64 prune screens for rank ``k``.

        ``hi``/``lo`` bracket the float32 threshold row by the conservative
        rounding envelope: a proximity at or above ``hi`` provably survives
        the float64 prune, one below ``lo`` provably does not, and only the
        sliver in between needs the float64 row.  The rows depend solely on
        the (immutable until write-back) float32 mirror, so they are computed
        once per ``k`` instead of once per query.
        """
        cached = self._screen_bounds.get(k)
        if cached is None:
            thresholds = np.asarray(self.lower32()[k - 1], dtype=np.float64)
            envelope = float32_prune_envelope(thresholds)
            cached = (thresholds + envelope, thresholds - envelope)
            self._screen_bounds[k] = cached
        return cached

    def _ensure_state_arrays(self) -> Dict[str, np.ndarray]:
        """Open the per-array state memmaps (lazy; O(1) resident memory).

        The arrays stay memory-mapped: :meth:`_materialize_state` slices one
        node's rows out of them, so only the pages a refinement candidate
        actually touches ever become resident — states are lazy *per node*,
        not per shard.
        """
        if self._state_arrays is None:
            stem = _shard_stem(self.ordinal)
            arrays: Dict[str, np.ndarray] = {}
            try:
                for name in _STATE_ARRAY_NAMES:
                    arrays[name] = np.load(
                        self.directory / f"{stem}.states.{name}.npy", mmap_mode="r"
                    )
            except (OSError, ValueError) as exc:
                raise SerializationError(
                    f"cannot open shard states under {self.directory}: {exc}"
                ) from exc
            self._state_arrays = arrays
        return self._state_arrays

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #
    def state(self, local: int) -> NodeState:
        """The state of local node ``local`` (materialised lazily on memmap).

        Lazy shards *pin* the materialised state in the overlay: the
        monolithic index's contract is that ``state()`` returns the stored
        mutable object (callers mutate it in place and call ``sync_state``),
        so repeated reads must observe one identity — an ephemeral copy
        would silently drop in-place mutations.  Only nodes actually read
        through this path (refinement candidates) are pinned; the scan never
        touches states, and bulk iteration uses :meth:`iter_states`.
        """
        if self._states is not None:
            return self._states[local]
        overlaid = self._overlay.get(local)
        if overlaid is not None:
            return overlaid
        state = self._materialize_state(local)
        self._overlay[local] = state
        return state

    def iter_states(self) -> Iterator[NodeState]:
        """States of the range in node order (overlay-aware, non-pinning).

        Bulk consumers (persistence, maintenance materialisation) read every
        state once by value; pinning them all would defeat the lazy backing.
        """
        if self._states is not None:
            yield from self._states
            return
        for local in range(self.n_nodes):
            overlaid = self._overlay.get(local)
            yield overlaid if overlaid is not None else self._materialize_state(local)

    def _materialize_state(self, local: int) -> NodeState:
        count_materialization()
        arrays = self._ensure_state_arrays()
        parts: Dict[str, Dict[int, float]] = {}
        for name in ("residual", "retained", "hub_ink"):
            indptr = arrays[f"{name}_indptr"]
            lo, hi = int(indptr[local]), int(indptr[local + 1])
            # tolist() detaches the memmap slice in one read: iterating the
            # slice directly would bounce through memmap.__getitem__ per
            # element, which dominates refinement-candidate materialisation.
            keys = np.asarray(arrays[f"{name}_keys"][lo:hi]).tolist()
            values = np.asarray(arrays[f"{name}_values"][lo:hi]).tolist()
            parts[name] = dict(zip(keys, values))
        return NodeState(
            residual=parts["residual"],
            retained=parts["retained"],
            hub_ink=parts["hub_ink"],
            lower_bounds=np.array(arrays["lower_bounds"][local], dtype=np.float64),
            iterations=int(arrays["iterations"][local]),
            is_hub=bool(arrays["is_hub"][local]),
        )

    def set_state(self, local: int, state: NodeState, mass: float) -> None:
        """Store a state write-back and refresh its column.

        Memmap shards promote their columnar arrays to RAM first (the disk
        layout is immutable) and record the state in the overlay.
        """
        if self._states is not None:
            self._states[local] = state
        else:
            self._overlay[local] = state
        self._promote_columns()
        self._write_column(local, state, mass)

    def _promote_columns(self) -> None:
        """Copy-on-write: make the columnar arrays private and writable."""
        self._ensure_columns()
        if not self._lower.flags.writeable:
            self._lower = np.array(self._lower, dtype=np.float64, copy=True)
            self._mass = np.array(self._mass, dtype=np.float64, copy=True)
            self._exact = np.array(self._exact, dtype=bool, copy=True)
            # The on-disk float32 plane mirrors the *unpromoted* columns;
            # drop it so the next screened scan re-derives from the promoted
            # float64 truth instead of reading a stale file.
            self._lower32 = None
            self._screen_bounds.clear()

    def _write_column(self, local: int, state: NodeState, mass: float) -> None:
        count = min(self.capacity, state.lower_bounds.size)
        self._lower[:count, local] = state.lower_bounds[:count]
        self._lower[count:, local] = 0.0
        self._mass[local] = mass
        self._exact[local] = state.is_exact
        if self._lower32 is not None:
            self._lower32[:, local] = self._lower[:, local]
        if self._screen_bounds:
            self._screen_bounds.clear()

    # ------------------------------------------------------------------ #
    # accounting / persistence
    # ------------------------------------------------------------------ #
    def stored_entries(self) -> int:
        """Total sparse state entries in this shard (for size accounting).

        A lazy shard answers by peeking at the on-disk index pointers
        *without* populating the state-array cache — size accounting (the
        layout meta records it) must not force the whole shard resident.
        """
        if self._states is not None:
            return sum(state.stored_entries() for state in self._states)
        # Overlaid write-backs supersede their on-disk rows: count the disk
        # totals (an O(1) memmap peek at the indptr tails), then swap each
        # overlaid node's disk entries for its live state's.
        arrays = self._ensure_state_arrays()
        total = sum(
            int(arrays[f"{name}_indptr"][-1])
            for name in ("residual", "retained", "hub_ink")
        )
        for local, state in self._overlay.items():
            on_disk = sum(
                int(
                    arrays[f"{name}_indptr"][local + 1]
                    - arrays[f"{name}_indptr"][local]
                )
                for name in ("residual", "retained", "hub_ink")
            )
            total += state.stored_entries() - on_disk
        return total

    def resident_bytes(self) -> int:
        """Rough bytes this shard currently keeps in RAM (not on disk)."""
        total = 0
        if self._lower is not None and (
            self.backing == "ram" or self._lower.flags.writeable
        ):
            total += self._lower.nbytes + self._mass.nbytes + self._exact.nbytes
        if self._lower32 is not None and not isinstance(self._lower32, np.memmap):
            total += self._lower32.nbytes
        if self._states is not None:
            entries = sum(state.stored_entries() for state in self._states)
            total += entries * (_VALUE_BYTES + _INDEX_BYTES)
            total += self.n_nodes * self.capacity * _VALUE_BYTES
        if self._state_arrays is not None:
            # Memmapped state arrays are backed by the page cache, not the
            # process heap; only materialised (heap) arrays count.
            total += sum(
                array.nbytes
                for array in self._state_arrays.values()
                if not isinstance(array, np.memmap)
            )
        for state in self._overlay.values():
            total += state.stored_entries() * (_VALUE_BYTES + _INDEX_BYTES)
            total += self.capacity * _VALUE_BYTES
        return total

    def write(self, directory: PathLike, ordinal: int) -> None:
        """Persist this shard's columnar slices and state arrays (atomic)."""
        directory = Path(directory)
        stem = _shard_stem(ordinal)
        columns = self.columns
        lower = np.ascontiguousarray(columns.lower, dtype=np.float64)
        mass = np.ascontiguousarray(columns.residual_mass, dtype=np.float64)
        exact = np.ascontiguousarray(columns.is_exact, dtype=bool)
        if self._states is None and not self._overlay:
            # Array-backed (or clean memmap) shard with no overlaid writes:
            # the flattened arrays *are* the persisted representation —
            # write them out directly, never materialising a per-node
            # state object.
            arrays = self._ensure_state_arrays()
        else:
            states = list(self.iter_states())
            arrays = _states_to_arrays(states, self.capacity)
        _atomic_write(
            directory / f"{stem}.lower.npy", lambda handle: np.save(handle, lower)
        )
        # The float32 screening plane: written alongside the float64 truth so
        # memmap-backed scans stream half the bytes; derived data, so layouts
        # without it (older writers) simply fall back to the float64 slice.
        lower32 = lower.astype(np.float32)
        _atomic_write(
            directory / f"{stem}.lower32.npy", lambda handle: np.save(handle, lower32)
        )
        _atomic_write(
            directory / f"{stem}.mass.npy", lambda handle: np.save(handle, mass)
        )
        _atomic_write(
            directory / f"{stem}.exact.npy", lambda handle: np.save(handle, exact)
        )
        for name in _STATE_ARRAY_NAMES:
            array = arrays[name]
            _atomic_write(
                directory / f"{stem}.states.{name}.npy",
                lambda handle, array=array: np.save(handle, array),
            )

    # ------------------------------------------------------------------ #
    # pickling (process-pool workers)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Ship paths for clean memmap shards, arrays for everything else.

        A clean disk-backed shard pickles to its directory reference only —
        process-pool workers reopen the memmaps locally and share the page
        cache instead of receiving a full copy of the arrays.
        """
        state = self.__dict__.copy()
        # The float32 mirror and its screening rows are derived (and possibly
        # memmap-backed); receivers re-derive or reopen them lazily.
        state["_lower32"] = None
        state["_screen_bounds"] = {}
        if self.backing == "memmap":
            # State memmaps never ship (np.memmap pickles by value); the
            # receiver reopens them lazily.  Columns ship only once promoted
            # — a promoted shard's RAM copies are the authoritative values.
            state["_state_arrays"] = None
            if not self.is_promoted:
                state["_lower"] = None
                state["_mass"] = None
                state["_exact"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return (
            f"IndexShard([{self.start}, {self.stop}), backing={self.backing!r}"
            f"{', promoted' if self.is_promoted else ''})"
        )


class ShardedReverseTopKIndex:
    """A reverse top-k index partitioned into contiguous node-range shards.

    Exposes the node-level surface the query engine and the dynamic
    maintainer consume on :class:`~repro.core.index.ReverseTopKIndex`
    (``state`` / ``set_state`` / ``sync_state`` / ``states`` /
    ``replace_contents`` / ``kth_lower_bounds`` / ``version``), routing each
    call to the owning shard.  Hub data is global — every shard's states
    reference the same hub proximity matrix — and so is the mutation
    version: one counter, bumped once per write-back exactly like the
    monolithic index, which keeps the serving layer's version-keyed cache
    semantics unchanged.
    """

    def __init__(
        self,
        params: IndexParams,
        hubs: HubSet,
        hub_matrix: sp.spmatrix,
        hub_deficit: np.ndarray,
        shards: Sequence[IndexShard],
        *,
        build_seconds: float = 0.0,
        directory: Optional[Path] = None,
    ) -> None:
        self.params = params
        self.hubs = hubs
        self.hub_matrix = hub_matrix.tocsc()
        self.hub_deficit = np.asarray(hub_deficit, dtype=np.float64)
        self.shards: List[IndexShard] = list(shards)
        self.build_seconds = float(build_seconds)
        #: Layout directory the shards were loaded from (``None`` for pure
        #: in-RAM indexes); informational — persistence always takes an
        #: explicit target.
        self.directory = directory
        self._version = 0
        if not self.shards:
            raise InvalidParameterError("a sharded index needs at least one shard")
        expected = 0
        for shard in self.shards:
            if shard.start != expected:
                raise InvalidParameterError(
                    f"shard ranges must be contiguous from 0; found a shard "
                    f"starting at {shard.start} where {expected} was expected"
                )
            expected = shard.stop
        self._boundaries = np.array(
            [shard.start for shard in self.shards] + [expected], dtype=np.int64
        )
        if self.hub_matrix.shape[1] != len(hubs):
            raise ValueError(
                f"hub matrix has {self.hub_matrix.shape[1]} columns but "
                f"{len(hubs)} hubs"
            )
        if self.hub_deficit.size != len(hubs):
            raise ValueError("hub_deficit length must equal the number of hubs")
        if self.hub_matrix.shape[0] not in (0, expected):
            raise ValueError(
                f"hub matrix has {self.hub_matrix.shape[0]} rows but the "
                f"shards cover {expected} nodes"
            )

    # ------------------------------------------------------------------ #
    # basic accessors (monolithic-index surface)
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of indexed nodes across all shards."""
        return int(self._boundaries[-1])

    @property
    def n_shards(self) -> int:
        """Number of partitions ``P``."""
        return len(self.shards)

    @property
    def capacity(self) -> int:
        """The maximum k supported by this index (``K``)."""
        return self.params.capacity

    @property
    def version(self) -> int:
        """Global monotonic mutation counter (see the monolithic index)."""
        return self._version

    @property
    def boundaries(self) -> np.ndarray:
        """``P + 1`` ascending shard-range offsets (copy)."""
        return self._boundaries.copy()

    def shard_of(self, node: int) -> Tuple[IndexShard, int]:
        """The shard owning ``node`` and the node's local offset within it."""
        node = check_node_index(node, self.n_nodes)
        ordinal = int(np.searchsorted(self._boundaries, node, side="right")) - 1
        shard = self.shards[ordinal]
        return shard, node - shard.start

    def state(self, node: int) -> NodeState:
        """The state of ``node``, routed to (and materialised by) its shard."""
        shard, local = self.shard_of(node)
        return shard.state(local)

    def set_state(self, node: int, state: NodeState) -> None:
        """Persist a state write-back into the owning shard (version bump)."""
        shard, local = self.shard_of(node)
        shard.set_state(local, state, self.state_residual_mass(state))
        self._version += 1

    def sync_state(self, node: int) -> None:
        """Refresh the owning shard's column for ``node`` (version bump)."""
        shard, local = self.shard_of(node)
        state = shard.state(local)
        shard.set_state(local, state, self.state_residual_mass(state))
        self._version += 1

    def states(self) -> Iterable[Tuple[int, NodeState]]:
        """Iterate ``(node, state)`` pairs in node order across shards."""
        for shard in self.shards:
            for local, state in enumerate(shard.iter_states()):
                yield shard.start + local, state

    def state_residual_mass(self, state: NodeState) -> float:
        """Effective residual mass of a (possibly detached) state."""
        return effective_state_residual_mass(state, self.hubs, self.hub_deficit)

    def effective_residual_mass(self, node: int) -> float:
        """Residue mass of ``node``'s state, including the rounding deficit."""
        return self.state_residual_mass(self.state(node))

    def apply_updates(
        self,
        states: Dict[int, NodeState],
        *,
        hub_matrix: Optional[sp.spmatrix] = None,
        hub_deficit: Optional[np.ndarray] = None,
    ) -> None:
        """Targeted maintenance writes with a single version bump.

        The delta-maintenance fast path's sharded twin of
        :meth:`ReverseTopKIndex.apply_updates`: each rewritten node routes
        to its owning shard (memmap shards promote copy-on-write and record
        the state in their overlay), untouched shards and nodes stay lazy,
        and the global version bumps exactly once.  The hub set itself is
        unchanged by construction.
        """
        if hub_matrix is not None:
            new_matrix = hub_matrix.tocsc()
            if new_matrix.shape[0] not in (0, self.n_nodes):
                raise ValueError(
                    f"hub matrix has {new_matrix.shape[0]} rows but the "
                    f"index covers {self.n_nodes} nodes"
                )
            if new_matrix.shape[1] != len(self.hubs):
                raise ValueError(
                    f"hub matrix has {new_matrix.shape[1]} columns but "
                    f"{len(self.hubs)} hubs"
                )
            self.hub_matrix = new_matrix
        if hub_deficit is not None:
            new_deficit = np.asarray(hub_deficit, dtype=np.float64)
            if new_deficit.size != len(self.hubs):
                raise ValueError(
                    "hub_deficit length must equal the number of hubs"
                )
            self.hub_deficit = new_deficit
        for node, state in states.items():
            shard, local = self.shard_of(node)
            shard.set_state(local, state, self.state_residual_mass(state))
        self._version += 1

    def kth_lower_bounds(self, k: int) -> np.ndarray:
        """The k-th lower bound of every node, concatenated across shards."""
        k = check_positive_int(k, "k")
        if k > self.capacity:
            raise InvalidParameterError(
                f"k={k} exceeds the index capacity K={self.capacity}"
            )
        return np.concatenate(
            [np.asarray(shard.columns.lower[k - 1]) for shard in self.shards]
        )

    def replace_contents(
        self,
        *,
        hubs: Optional[HubSet] = None,
        hub_matrix: Optional[sp.spmatrix] = None,
        hub_deficit: Optional[np.ndarray] = None,
        states: Optional[List[NodeState]] = None,
    ) -> None:
        """Swap index components wholesale after dynamic-graph maintenance.

        Mirrors :meth:`ReverseTopKIndex.replace_contents`: all components are
        validated together, every shard is rebuilt (in RAM — the immutable
        disk layout, if any, is now stale and must be re-persisted by the
        snapshot layer under the new graph's content key), and the global
        version is bumped exactly once.  Shard boundaries are preserved, so
        maintenance invalidations land in their owning shards.
        """
        new_hubs = hubs if hubs is not None else self.hubs
        new_matrix = hub_matrix.tocsc() if hub_matrix is not None else self.hub_matrix
        new_deficit = (
            np.asarray(hub_deficit, dtype=np.float64)
            if hub_deficit is not None
            else self.hub_deficit
        )
        if new_matrix.shape[0] != self.n_nodes:
            raise ValueError(
                f"hub matrix has {new_matrix.shape[0]} rows but the index "
                f"covers {self.n_nodes} nodes"
            )
        if new_matrix.shape[1] != len(new_hubs):
            raise ValueError(
                f"hub matrix has {new_matrix.shape[1]} columns but "
                f"{len(new_hubs)} hubs"
            )
        if new_deficit.size != len(new_hubs):
            raise ValueError("hub_deficit length must equal the number of hubs")
        if states is not None and len(states) != self.n_nodes:
            raise ValueError(f"expected {self.n_nodes} states, got {len(states)}")
        if states is None:
            states = [state for _, state in self.states()]
        self.hubs = new_hubs
        self.hub_matrix = new_matrix
        self.hub_deficit = new_deficit
        mass_of = self.state_residual_mass
        rebuilt = [
            IndexShard.from_states(
                shard.start,
                shard.stop,
                self.capacity,
                states[shard.start : shard.stop],
                mass_of,
            )
            for shard in self.shards
        ]
        self.shards = rebuilt
        self.directory = None
        self._version += 1

    def adopt(self, fresh: "ShardedReverseTopKIndex") -> None:
        """Swap in another sharded index's components, in place.

        The dynamic maintainer's full-rebuild escape hatch builds a fresh
        sharded index for the new graph and splices it into the *live*
        object, so every holder of a reference (engine, serving façade)
        keeps observing the same index and the same monotonic version
        counter — bumped exactly once, like :meth:`replace_contents`.
        """
        if fresh.n_nodes != self.n_nodes:
            raise ValueError(
                f"cannot adopt an index over {fresh.n_nodes} nodes into one "
                f"covering {self.n_nodes}"
            )
        self.params = fresh.params
        self.hubs = fresh.hubs
        self.hub_matrix = fresh.hub_matrix
        self.hub_deficit = fresh.hub_deficit
        self.shards = list(fresh.shards)
        self._boundaries = fresh._boundaries.copy()
        self.directory = fresh.directory
        self._version += 1

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def storage_bytes(self) -> Dict[str, int]:
        """Approximate logical storage per component (Table 2 accounting)."""
        lower = self.capacity * self.n_nodes * _VALUE_BYTES
        state_entries = sum(shard.stored_entries() for shard in self.shards)
        state_bytes = state_entries * (_VALUE_BYTES + _INDEX_BYTES)
        hub_bytes = self.hub_matrix.nnz * (_VALUE_BYTES + _INDEX_BYTES)
        return {
            "lower_bounds": lower,
            "bca_state": state_bytes,
            "hub_matrix": hub_bytes,
            "total": lower + state_bytes + hub_bytes,
        }

    def total_bytes(self) -> int:
        """Total approximate logical index size in bytes."""
        return self.storage_bytes()["total"]

    def resident_bytes(self) -> int:
        """Rough bytes currently held in RAM across shards and hub data.

        Memmap-backed shards whose columns and states were never touched
        contribute nothing; the gap between this and :meth:`total_bytes` is
        what the partitioned layout saves a serving process.
        """
        hub_bytes = self.hub_matrix.nnz * (_VALUE_BYTES + _INDEX_BYTES)
        return hub_bytes + sum(shard.resident_bytes() for shard in self.shards)

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_index(
        cls,
        index: ReverseTopKIndex,
        n_shards: int,
        *,
        directory: Optional[PathLike] = None,
        memory_budget: Optional[int] = None,
    ) -> "ShardedReverseTopKIndex":
        """Partition a monolithic index into ``n_shards`` contiguous shards.

        ``memory_budget`` (bytes) selects the backing: ``None`` keeps every
        shard in RAM; otherwise, when the index's approximate size exceeds
        the budget the layout is persisted under ``directory`` and loaded
        back memmap-backed (``directory`` is then required).
        """
        boundaries = shard_boundaries(index.n_nodes, n_shards)
        columns = index.columns
        all_states = [state for _, state in index.states()]
        shards = [
            IndexShard.from_columns(
                int(start),
                int(stop),
                index.capacity,
                ColumnarView(
                    lower=columns.lower[:, start:stop],
                    residual_mass=columns.residual_mass[start:stop],
                    is_exact=columns.is_exact[start:stop],
                ),
                all_states[start:stop],
            )
            for start, stop in zip(boundaries[:-1], boundaries[1:])
        ]
        sharded = cls(
            index.params,
            index.hubs,
            index.hub_matrix,
            index.hub_deficit,
            shards,
            build_seconds=index.build_seconds,
        )
        if _resolve_backing(sharded.total_bytes(), memory_budget) == "memmap":
            path = _require_directory(directory, memory_budget)
            sharded.persist(path)
            return cls.load(path, memory_budget=memory_budget)
        return sharded

    def to_index(self) -> ReverseTopKIndex:
        """Materialise the equivalent monolithic index (RAM-heavy; tests)."""
        states = [state for _, state in self.states()]
        index = ReverseTopKIndex(
            self.params,
            self.hubs,
            self.hub_matrix,
            self.hub_deficit,
            states,
            build_seconds=self.build_seconds,
        )
        return index

    # ------------------------------------------------------------------ #
    # persistence (the on-disk layout)
    # ------------------------------------------------------------------ #
    def persist(self, directory: PathLike) -> Path:
        """Write the full sharded layout under ``directory``.

        Per-shard files first, the global ``sharded-meta.npz`` last — a torn
        write leaves a directory without a readable meta archive, which
        :meth:`load` rejects, so readers never observe a partial layout.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for ordinal, shard in enumerate(self.shards):
            shard.write(directory, ordinal)
        self._write_meta(directory)
        return directory

    def _write_meta(self, directory: Path) -> None:
        """Write (and thereby seal) the layout's global metadata archive."""
        hub_matrix = self.hub_matrix.tocoo()
        params = self.params
        meta = {
            "layout_version": np.array([_LAYOUT_VERSION], dtype=np.int64),
            "boundaries": self._boundaries,
            "alpha": np.array([params.alpha]),
            "capacity": np.array([params.capacity]),
            "propagation_threshold": np.array([params.propagation_threshold]),
            "residue_threshold": np.array([params.residue_threshold]),
            "rounding_threshold": np.array([params.rounding_threshold]),
            "hub_budget": np.array([params.hub_budget]),
            "tolerance": np.array([params.tolerance]),
            "backend": np.array([params.backend]),
            "block_size": np.array([params.block_size]),
            "hubs": np.asarray(self.hubs.nodes, dtype=np.int64),
            "hub_deficit": self.hub_deficit,
            "hub_rows": hub_matrix.row.astype(np.int64),
            "hub_cols": hub_matrix.col.astype(np.int64),
            "hub_vals": hub_matrix.data.astype(np.float64),
            "hub_shape": np.asarray(self.hub_matrix.shape, dtype=np.int64),
            "build_seconds": np.array([self.build_seconds]),
            "total_bytes": np.array([self.total_bytes()], dtype=np.int64),
        }
        _atomic_write(
            directory / _META_NAME,
            lambda handle: np.savez_compressed(handle, **meta),
        )

    @classmethod
    def load(
        cls, directory: PathLike, *, memory_budget: Optional[int] = None
    ) -> "ShardedReverseTopKIndex":
        """Load a layout written by :meth:`persist`.

        ``memory_budget`` decides the backing exactly as at build time:
        ``None`` materialises every shard into RAM; with a budget the shards
        stay memmap-backed (lazy columns, per-node lazy states) whenever the
        recorded index size exceeds it.
        """
        directory = Path(directory)
        meta_path = directory / _META_NAME
        try:
            with np.load(meta_path, allow_pickle=False) as data:
                if int(data["layout_version"][0]) != _LAYOUT_VERSION:
                    raise SerializationError(
                        f"unsupported sharded layout version "
                        f"{int(data['layout_version'][0])} at {directory}"
                    )
                params = IndexParams(
                    alpha=float(data["alpha"][0]),
                    capacity=int(data["capacity"][0]),
                    propagation_threshold=float(data["propagation_threshold"][0]),
                    residue_threshold=float(data["residue_threshold"][0]),
                    rounding_threshold=float(data["rounding_threshold"][0]),
                    hub_budget=int(data["hub_budget"][0]),
                    tolerance=float(data["tolerance"][0]),
                    backend=str(data["backend"][0]),
                    block_size=int(data["block_size"][0]),
                )
                hubs = HubSet.from_iterable(data["hubs"].tolist())
                shape = tuple(int(x) for x in data["hub_shape"])
                hub_matrix = sp.coo_matrix(
                    (data["hub_vals"], (data["hub_rows"], data["hub_cols"])),
                    shape=shape,
                ).tocsc()
                hub_deficit = np.array(data["hub_deficit"], dtype=np.float64)
                boundaries = np.array(data["boundaries"], dtype=np.int64)
                build_seconds = float(data["build_seconds"][0])
                total_bytes = int(data["total_bytes"][0])
        except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            raise SerializationError(
                f"cannot load sharded layout from {directory}: {exc}"
            ) from exc
        shards = [
            IndexShard.from_layout(
                directory, ordinal, int(start), int(stop), params.capacity
            )
            for ordinal, (start, stop) in enumerate(
                zip(boundaries[:-1], boundaries[1:])
            )
        ]
        sharded = cls(
            params,
            hubs,
            hub_matrix,
            hub_deficit,
            shards,
            build_seconds=build_seconds,
            directory=directory,
        )
        if _resolve_backing(total_bytes, memory_budget) == "ram":
            sharded._materialize_all()
        return sharded

    def _materialize_all(self) -> None:
        """Promote every shard to an in-RAM shard (no disk-lazy storage).

        Clean memmap shards (no overlaid writes) promote by copying their
        flattened state arrays into RAM wholesale — states stay lazy *per
        node* and no ``NodeState`` objects are created.  Shards carrying
        overlay writes or materialised state lists fall back to the
        object-based rebuild, which folds the overlay in.
        """
        promoted: List[IndexShard] = []
        for shard in self.shards:
            if shard._states is None and not shard._overlay:
                arrays = shard._ensure_state_arrays()
                columns = shard.columns
                fresh = IndexShard(shard.start, shard.stop, self.capacity)
                fresh._state_arrays = {
                    name: np.array(arrays[name]) for name in _STATE_ARRAY_NAMES
                }
                fresh._lower = np.array(columns.lower, dtype=np.float64, copy=True)
                fresh._mass = np.array(
                    columns.residual_mass, dtype=np.float64, copy=True
                )
                fresh._exact = np.array(columns.is_exact, dtype=bool, copy=True)
            else:
                fresh = IndexShard.from_columns(
                    shard.start,
                    shard.stop,
                    self.capacity,
                    shard.columns,
                    list(shard.iter_states()),
                )
            promoted.append(fresh)
        self.shards = promoted
        # Boundaries are unchanged; keep the recorded directory so callers
        # can tell where this index came from.

    def __repr__(self) -> str:
        backings = {shard.backing for shard in self.shards}
        return (
            f"ShardedReverseTopKIndex(n_nodes={self.n_nodes}, "
            f"K={self.capacity}, hubs={len(self.hubs)}, "
            f"shards={self.n_shards}, backing={'/'.join(sorted(backings))})"
        )


def _resolve_backing(total_bytes: int, memory_budget: Optional[int]) -> str:
    """Pick the shard backing for an index of ``total_bytes`` under a budget.

    ``None`` budget means "hold everything in RAM" (the monolithic default);
    otherwise the index goes out-of-core exactly when it does not fit.  A
    budget of ``0`` therefore always selects the memmap layout.
    """
    if memory_budget is None:
        return "ram"
    check_non_negative_int(memory_budget, "memory_budget")
    return "ram" if total_bytes <= memory_budget else "memmap"


def _require_directory(
    directory: Optional[PathLike], memory_budget: Optional[int]
) -> Path:
    if directory is None:
        raise InvalidParameterError(
            f"memory_budget={memory_budget} requires the memmap layout, "
            "which needs a directory (pass directory=..., or configure a "
            "snapshot_dir on the service)"
        )
    return Path(directory)


# ----------------------------------------------------------------------- #
# direct sharded construction (no monolithic merge step)
# ----------------------------------------------------------------------- #
def build_sharded_index(
    graph: Union[DiGraph, sp.spmatrix],
    params: Optional[IndexParams] = None,
    *,
    hubs: Optional[HubSet] = None,
    transition: Optional[sp.spmatrix] = None,
    n_shards: int = 4,
    directory: Optional[PathLike] = None,
    memory_budget: Optional[int] = None,
    n_workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ShardedReverseTopKIndex:
    """Build a sharded index shard-by-shard, without a monolithic merge.

    The exact hub proximity matrix is computed once; then each contiguous
    node range is built in turn — non-hub sources through the propagation
    kernel (optionally on ``n_workers`` process-pool workers, reusing the
    parallel shard build of :func:`~repro.core.lbi.build_index_parallel`'s
    worker functions), hub nodes from their exact top-K proximities — and,
    whenever a ``memory_budget`` is given, written straight to the layout
    before the next range starts, so peak build memory is one shard plus the
    hub matrix.  The backing is then decided from the sealed layout's
    *recorded* total (exactly :meth:`ShardedReverseTopKIndex.load`'s rule):
    an index that fits the budget is materialised back into RAM, one that
    does not stays memmap-backed.

    The kernel is bitwise deterministic per source, so the resulting shards
    hold exactly the states (and columnar values) a serial
    :func:`~repro.core.lbi.build_index` would produce for the same range.

    ``progress`` fires once per completed shard with ``(done_nodes, total)``.
    """
    from ..utils.timer import Timer

    matrix, n, params, hubs = _resolve_build_inputs(
        graph, params, hubs, transition, None
    )
    with Timer() as timer:
        hub_matrix, hub_deficit, hub_top_k = _compute_hub_matrix(matrix, hubs, params)
        hub_mask = hubs.mask(n)
        boundaries = shard_boundaries(n, n_shards)
        ranges = list(zip(boundaries[:-1], boundaries[1:]))

        # State sizes are unknown until the build runs, so a budgeted build
        # always streams to the layout first and decides RAM vs memmap from
        # the *recorded* total afterwards — the exact rule :meth:`load`
        # applies, so a cold build and a warm start of the same layout can
        # never resolve the same budget to opposite backings.  A directory
        # without a budget means "build in RAM but archive the layout".
        budgeted = memory_budget is not None
        if budgeted:
            target = _require_directory(directory, memory_budget)
        else:
            target = Path(directory) if directory is not None else None
        if target is not None:
            target.mkdir(parents=True, exist_ok=True)

        def assemble(start: int, stop: int, built: Dict[int, NodeState]) -> List[NodeState]:
            states: List[NodeState] = []
            for node in range(start, stop):
                if hub_mask[node]:
                    state = initial_node_state(node, True)
                    state.lower_bounds = hub_top_k[int(node)].copy()
                else:
                    state = built[node]
                states.append(state)
            return states

        mass_of = lambda state: effective_state_residual_mass(  # noqa: E731
            state, hubs, hub_deficit
        )
        shards: List[IndexShard] = []
        done = 0

        def finish_shard(ordinal: int, start: int, stop: int, shard: IndexShard) -> None:
            nonlocal done
            if target is not None:
                shard.write(target, ordinal)
                if budgeted:
                    # Stream out-of-core: keep only the lazy view; whether
                    # the finished index fits the budget is decided from the
                    # sealed layout's recorded total below.
                    shard = IndexShard.from_layout(
                        target, ordinal, int(start), int(stop), params.capacity
                    )
            shards.append(shard)
            done += stop - start
            if progress is not None:
                progress(done, n)

        def shard_from_objects(start: int, stop: int, built: Dict[int, NodeState]) -> IndexShard:
            return IndexShard.from_states(
                int(start), int(stop), params.capacity, assemble(start, stop, built), mass_of
            )

        def shard_from_collected(start: int, stop: int, part) -> IndexShard:
            store = assemble_store(
                int(start), int(stop), params.capacity, [part], hub_mask, hub_top_k
            )
            return IndexShard.from_store(
                int(start),
                int(stop),
                params.capacity,
                store,
                store.column_masses(hubs, hub_deficit),
            )

        # Non-scalar backends spill converged columns straight into flat
        # arrays (no per-node NodeState objects on the build path); the
        # scalar reference backend keeps the object pipeline.
        columnar = params.backend != "scalar"
        source_lists = [
            [node for node in range(start, stop) if not hub_mask[node]]
            for start, stop in ranges
        ]
        if n_workers is not None and n_workers > 1:
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_init_shard_worker,
                initargs=(matrix, hub_mask, params, hubs, hub_matrix),
            ) as pool:
                if columnar:
                    for (start, stop), part in zip(
                        ranges, pool.map(_collect_shard, source_lists)
                    ):
                        finish_shard(
                            len(shards), start, stop,
                            shard_from_collected(start, stop, part),
                        )
                else:
                    for (start, stop), (sources, states) in zip(
                        ranges, pool.map(_bca_shard, source_lists)
                    ):
                        finish_shard(
                            len(shards), start, stop,
                            shard_from_objects(start, stop, dict(zip(sources, states))),
                        )
        else:
            kernel = PropagationKernel(
                matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
            )
            for (start, stop), sources in zip(ranges, source_lists):
                if columnar:
                    sink = StateArraysSink(params.capacity)
                    kernel.run(sources, sink=sink)
                    shard = shard_from_collected(start, stop, sink.collected())
                else:
                    built = dict(zip(sources, kernel.run(sources)))
                    shard = shard_from_objects(start, stop, built)
                finish_shard(len(shards), start, stop, shard)

    sharded = ShardedReverseTopKIndex(
        params,
        hubs,
        hub_matrix,
        hub_deficit,
        shards,
        build_seconds=timer.elapsed,
        directory=target,
    )
    if target is not None:
        # Seal the layout: the per-shard files streamed out above become
        # loadable only once the meta archive lands (written last, atomically).
        sharded._write_meta(target)
        if budgeted and _resolve_backing(sharded.total_bytes(), memory_budget) == "ram":
            # The finished index fits the budget after all: serve it from
            # RAM (the layout stays on disk for the next warm start).
            sharded._materialize_all()
    return sharded


# ----------------------------------------------------------------------- #
# the query router
# ----------------------------------------------------------------------- #
class ShardedReverseTopKEngine(ReverseTopKEngine):
    """Algorithm 4 over a :class:`ShardedReverseTopKIndex`.

    PMPN (the exact proximities to the query) runs once, globally; the
    vectorized scan then visits each shard's columnar slice — sequentially,
    or fanned across a thread pool when ``scan_workers > 1`` (the scan phase
    is pure reads over disjoint slices, and the NumPy kernels release the
    GIL).  Undecided candidates refine through the inherited per-node
    pipeline, whose index accesses route to the owning shard.

    Answers, statistics counters and refinement write-backs are bit-identical
    to the monolithic :class:`~repro.core.query.ReverseTopKEngine` over the
    equivalent unpartitioned index (property-tested).
    """

    def __init__(
        self,
        transition: sp.spmatrix,
        index: ShardedReverseTopKIndex,
        *,
        scan_workers: int = 0,
        scan_precision: str = "float64",
    ) -> None:
        self.scan_workers = check_non_negative_int(scan_workers, "scan_workers")
        self._scan_pool: Optional[ThreadPoolExecutor] = None
        self._scan_pool_lock = threading.Lock()
        super().__init__(transition, index, scan_precision=scan_precision)

    @classmethod
    def build(
        cls,
        graph: Union[DiGraph, sp.spmatrix],
        params: Optional[IndexParams] = None,
        *,
        transition: Optional[sp.spmatrix] = None,
        hubs: Optional[HubSet] = None,
        n_shards: int = 4,
        directory: Optional[PathLike] = None,
        memory_budget: Optional[int] = None,
        n_workers: Optional[int] = None,
        scan_workers: int = 0,
        scan_precision: str = "float64",
    ) -> "ShardedReverseTopKEngine":
        """Build a sharded index for ``graph`` and wrap it in a router."""
        if isinstance(graph, DiGraph):
            from ..graph.transition import transition_matrix

            matrix = transition if transition is not None else transition_matrix(graph)
        else:
            matrix = graph if transition is None else transition
        index = build_sharded_index(
            graph,
            params,
            hubs=hubs,
            transition=matrix,
            n_shards=n_shards,
            directory=directory,
            memory_budget=memory_budget,
            n_workers=n_workers,
        )
        return cls(
            matrix, index, scan_workers=scan_workers, scan_precision=scan_precision
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def rebind(
        self,
        transition: sp.spmatrix,
        index: Optional[ShardedReverseTopKIndex] = None,
    ) -> None:
        """Re-derive transition caches, preserving the scan-pool setting."""
        workers = self.scan_workers
        precision = self.scan_precision
        self.close()
        self.__init__(
            transition,
            index if index is not None else self.index,
            scan_workers=workers,
            scan_precision=precision,
        )

    def close(self) -> None:
        """Shut down the per-shard scan pool (idempotent)."""
        with self._scan_pool_lock:
            if self._scan_pool is not None:
                self._scan_pool.shutdown(wait=True)
                self._scan_pool = None

    def __enter__(self) -> "ShardedReverseTopKEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_scan_pool(self) -> ThreadPoolExecutor:
        with self._scan_pool_lock:
            if self._scan_pool is None:
                self._scan_pool = ThreadPoolExecutor(max_workers=self.scan_workers)
            return self._scan_pool

    # ------------------------------------------------------------------ #
    # pickling (process-pool workers)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Ship the transition, the sharded index, and the pool setting."""
        return {
            "transition": self.transition,
            "index": self.index,
            "scan_workers": self.scan_workers,
            "scan_precision": self.scan_precision,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["transition"],
            state["index"],
            scan_workers=state["scan_workers"],
            scan_precision=state.get("scan_precision", "float64"),
        )

    # ------------------------------------------------------------------ #
    # the per-shard scan
    # ------------------------------------------------------------------ #
    def _scan_vectorized(self, proximity_to_q, k, params, stages, jit=None):
        """Columnar scan routed across shards; refinement stays global.

        Per-shard stages are column-local, so evaluating them slice by slice
        yields the monolithic scan's floats; shard outcomes concatenate in
        range order, reproducing the monolithic ascending candidate order —
        and therefore identical refinement trajectories, write-back order,
        version bumps and statistics counters.  Precision screening and the
        compiled scan compose: each shard scans its own float32 plane (the
        memmapped ``.lower32.npy`` when the layout carries one) through the
        same shared stage pipeline the monolithic engine uses.
        """
        tally = _ScanTally()
        shards = self.index.shards
        screened = self.scan_precision == "float32"
        workspace = self._bounds_workspace
        with stages.time("scan"):
            if self.scan_workers > 1 and len(shards) > 1:
                pool = self._ensure_scan_pool()
                outcomes = list(
                    pool.map(
                        lambda shard: _scan_shard(
                            shard,
                            proximity_to_q,
                            k,
                            screened=screened,
                            workspace=workspace,
                            jit=jit,
                        ),
                        shards,
                    )
                )
            else:
                outcomes = [
                    _scan_shard(
                        shard,
                        proximity_to_q,
                        k,
                        screened=screened,
                        workspace=workspace,
                        jit=jit,
                    )
                    for shard in shards
                ]
            exact_parts: List[np.ndarray] = []
            candidate_parts: List[np.ndarray] = []
            hit_parts: List[np.ndarray] = []
            traced = current_span() is not None
            for shard, outcome in zip(shards, outcomes):
                start, exact_local, cand_local, hits, n_pruned, seconds = outcome
                tally.n_pruned += n_pruned
                tally.n_exact += int(exact_local.size)
                tally.n_candidates += int(cand_local.size)
                tally.n_hits += int(np.count_nonzero(hits))
                if traced:
                    tally.shard_records.append(
                        (start, shard.stop - shard.start, seconds, int(n_pruned))
                    )
                exact_parts.append(exact_local + start)
                candidate_parts.append(cand_local + start)
                hit_parts.append(hits)
            exact_nodes = np.concatenate(exact_parts)
            candidates = np.concatenate(candidate_parts)
            hits = (
                np.concatenate(hit_parts)
                if candidates.size
                else np.zeros(0, dtype=bool)
            )

        refined_results: List[int] = []
        with stages.time("refine"):
            for node in candidates[~hits]:
                outcome = self._refine_candidate(
                    int(node), float(proximity_to_q[node]), k, params
                )
                tally.absorb_refinement(outcome)
                if outcome.is_result:
                    refined_results.append(int(node))

        nodes = np.sort(
            np.concatenate(
                [
                    exact_nodes,
                    candidates[hits],
                    np.asarray(refined_results, dtype=np.int64),
                ]
            )
        ).astype(np.int64)
        return nodes, tally


def _scan_shard(
    shard: IndexShard,
    proximity_to_q: np.ndarray,
    k: int,
    *,
    screened: bool = False,
    workspace=None,
    jit=None,
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, int, float]:
    """Prune / exact-shortcut / batched-bound stages over one shard's slice.

    Returns ``(start, exact_local, candidates_local, hits, n_pruned,
    seconds)`` with local (shard-relative) node offsets; pure reads, safe to
    fan across threads (the bounds workspace is thread-local).  Delegates to
    the shared :func:`~repro.core.query.columnar_stage_decisions` pipeline,
    so decisions are bit-identical to the monolithic scan in every
    configuration.
    """
    scan_start = time.perf_counter()
    local = proximity_to_q[shard.start : shard.stop]
    exact_local, candidates_local, hits, n_pruned = columnar_stage_decisions(
        local,
        shard.columns,
        k,
        lower32=shard.lower32() if screened else None,
        screen=shard.screen_bounds(k) if screened and jit is None else None,
        workspace=workspace,
        jit=jit,
    )
    seconds = time.perf_counter() - scan_start
    return shard.start, exact_local, candidates_local, hits, n_pruned, seconds
