"""Unified ink-propagation kernel: one layer, three backends (Algorithm 1 core).

Every component that moves BCA ink — offline index construction, the dynamic
maintainer's invalidation rebuilds, and query-time candidate refinement —
goes through one :class:`PropagationKernel` instead of hand-rolling the
propagation loop.  The kernel offers interchangeable backends selected
via :attr:`IndexParams.backend`:

``"scalar"``
    The original dict-based per-neighbour loop (:func:`bca_iteration`), kept
    bit-identical to the seed implementation.  It remains the reference for
    equivalence tests and the fallback for pathological parameters.

``"vectorized"``
    A blocked multi-source engine.  The residual / retained / hub-ink state
    of a block of ``B`` source nodes is held as dense ``(n, B)`` float64
    arrays and *all* sources advance together per iteration with a single
    sparse-dense product ``A @ ((1-alpha) * active)`` — eta-thresholding,
    alpha retention and the hub-mask split are whole-array operations.
    Sources that converge are spilled into :class:`NodeState` objects and
    their block column is refilled from the pending worklist, so stragglers
    never hold the whole block hostage.

``"numba"``
    The blocked engine with its per-iteration inner loop JIT-compiled
    (:mod:`repro.core._numba_kernels`): column statistics and the snapshot /
    retain / scatter / hub-split sequence run as one fused parallel pass per
    iteration instead of a chain of whole-array NumPy operations.  Requires
    the optional ``fast`` extra; constructing a kernel without it raises
    :class:`~repro.exceptions.ConfigurationError`
    (see :func:`repro.core.backends.available_backends`).

``"sparse"``
    A blocked multi-source engine whose per-block state is held as *sparse*
    CSC matrices instead of dense ``(n, B)`` planes.  Memory and per-
    iteration cost scale with the live residue frontier rather than with
    ``n * B``, which is what makes million-node builds feasible: the dense
    planes alone would cost ``~40 * B`` bytes per node.  Each chunk of ``B``
    sources runs to full convergence (no mid-stream refill); per-column
    arithmetic is element-wise or per-column sparse products, so — like the
    dense backends — every source's trajectory is bitwise independent of
    which other sources share its chunk.  Agreement with the scalar
    reference is to tolerance (like the dense backends), not bit-for-bit.

Columnar spill (``sink=``)
--------------------------
:meth:`PropagationKernel.run` accepts an optional
:class:`~repro.core.statestore.StateArraysSink`.  With a sink, converged
columns spill as flat ``(counts, keys, values)`` segments — produced by the
same ``np.nonzero`` gather as the dict path, so keys/values are identical —
and **no** :class:`NodeState` objects are constructed; ``run`` then returns
an empty list and the caller assembles a columnar store from the sink.  The
scalar backend has no columnar spill (it builds dicts natively) and rejects
a sink.

Buffer reuse (:class:`KernelWorkspace`)
---------------------------------------
Both blocked backends draw their dense ``(n, B)`` planes from a
:class:`KernelWorkspace` — a thread-local, grow-only scratch pool — and the
per-iteration sparse-dense product accumulates **in place** into the residual
plane via SciPy's low-level ``csc_matvecs`` routine, so the steady-state
iteration allocates nothing.  Long-lived owners (the query engine, the
dynamic maintainer, the per-process build workers) keep one workspace and
reuse it across every run, block and refinement step.  Passing
``reuse_buffers=False`` restores the historical allocate-per-iteration
behaviour (useful for A/B benchmarks); the in-place product accumulates
arrivals in a different order than the legacy ``residual += transition @
shares``, so the two modes agree to the backend tolerance rather than bit
for bit.

Per-source bitwise determinism
------------------------------
Each block column only ever reads and writes its own column: element-wise
operations are element-wise, row/column reductions are per-column, and
SciPy's sparse-dense product accumulates each output column independently in
ascending matrix-column order.  A source therefore produces the *bit-identical*
trajectory no matter which other sources share its block — which is what lets
the dynamic maintainer rebuild invalidated nodes as one block, and the
parallel snapshot builder shard the node range across processes, while both
stay bit-identical to a serial from-scratch build under the same backend.

The vectorized and scalar backends agree to floating-point accumulation
order: reconstructed proximity vectors match within ``1e-12`` with identical
top-K node sets (enforced by a Hypothesis property test), but are not
bitwise equal — accumulation order across a batch necessarily differs.
"""

from __future__ import annotations

from dataclasses import dataclass
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..obs.profiler import NULL_PROFILER
from ..utils.sparsetools import top_k_descending
from ..utils.timer import StageTimer
from ..utils.workspace import ArrayWorkspace
from .config import PROPAGATION_BACKENDS, IndexParams
from .hubs import HubSet
from .index import NodeState

try:  # pragma: no cover - exercised implicitly by every blocked run
    # Low-level accumulating sparse-dense product: Y += A @ X with caller-
    # owned output storage.  Private but stable (it backs scipy's own @);
    # guard the import so a reorganised SciPy degrades to the allocating
    # product instead of breaking the kernel.
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    _CSC_MATVECS = getattr(_scipy_sparsetools, "csc_matvecs", None)
except ImportError:  # pragma: no cover
    _CSC_MATVECS = None

#: Progress hook invoked with the source node id as each source converges.
SourceCallback = Callable[[int], None]


class KernelWorkspace(ArrayWorkspace):
    """Reusable scratch planes for the blocked propagation backends.

    One workspace preallocates the ``(n, B)`` residual / retained / hub-ink /
    active / amounts / shares planes (plus the per-column bookkeeping
    vectors) the first time a kernel runs and hands the same storage back on
    every subsequent run, block and single-source refinement step.  Buffers
    only grow, and each thread sees its own set, so a workspace may be
    shared by an engine serving concurrent read-only queries.

    Kernels create a private workspace by default; pass one explicitly to
    share buffers across kernels with compatible lifetimes (e.g. the dynamic
    maintainer's incremental rebuilds, or a per-process build worker).
    """


def _column_to_dict(
    column: np.ndarray, labels: Optional[np.ndarray] = None
) -> Dict[int, float]:
    """Sparse ``{index: value}`` view of a dense column (optionally relabelled)."""
    positions = np.flatnonzero(column)
    if not positions.size:
        return {}
    keys = positions if labels is None else labels[positions]
    return dict(zip(keys.tolist(), column[positions].tolist()))


def _columns_to_dicts(
    matrix: np.ndarray, columns: np.ndarray, labels: Optional[np.ndarray] = None
) -> List[Dict[int, float]]:
    """Per-column sparse dicts for a batch of columns, in one numpy pass."""
    sub = matrix.T[columns]  # (m, n): one gathered, C-contiguous row per column
    rows, entries = np.nonzero(sub)
    keys = entries if labels is None else labels[entries]
    keys = keys.tolist()
    values = sub[rows, entries].tolist()
    counts = np.bincount(rows, minlength=columns.size).tolist()
    dicts: List[Dict[int, float]] = []
    start = 0
    for count in counts:
        stop = start + count
        dicts.append(dict(zip(keys[start:stop], values[start:stop])))
        start = stop
    return dicts


def _flat_columns(
    matrix: np.ndarray, columns: np.ndarray, labels: Optional[np.ndarray] = None
) -> tuple:
    """Flat ``(counts, keys, values)`` segments for a batch of dense columns.

    The columnar twin of :func:`_columns_to_dicts`: the same ``np.nonzero``
    gather, so segment ``i`` holds exactly the (key, value) pairs — in the
    same ascending-key order — that the dict path would produce for
    ``columns[i]``.
    """
    sub = matrix.T[columns]  # (m, n): one gathered, C-contiguous row per column
    rows, entries = np.nonzero(sub)
    keys = entries if labels is None else labels[entries]
    keys = np.asarray(keys, dtype=np.int64)
    values = sub[rows, entries]
    counts = np.bincount(rows, minlength=columns.size).astype(np.int64)
    return counts, keys, values


def _batched_top_k(vectors: np.ndarray, k: int) -> np.ndarray:
    """Column-wise :func:`top_k_descending`: ``(k, m)`` for an ``(n, m)`` input.

    Produces exactly the values ``top_k_descending`` would per column — the
    ``k`` largest entries in descending order, zero-padded below ``k``.
    """
    n, m = vectors.shape
    if k >= n:
        ordered = np.sort(vectors, axis=0)[::-1]
        if k > n:
            ordered = np.vstack([ordered, np.zeros((k - n, m), dtype=np.float64)])
        return ordered
    largest = np.partition(vectors, n - k, axis=0)[n - k :]
    return np.sort(largest, axis=0)[::-1]


# ----------------------------------------------------------------------- #
# scalar primitives (the seed implementation, moved here verbatim)
# ----------------------------------------------------------------------- #
def bca_iteration(
    state: NodeState,
    transition: sp.csc_matrix,
    hub_mask: np.ndarray,
    params: IndexParams,
    *,
    propagation_threshold: Optional[float] = None,
) -> bool:
    """Run one batched BCA iteration in place (Eq. 6, 8, 9).

    Returns ``True`` when at least one node propagated ink, ``False`` when no
    non-hub node holds ``eta`` or more residue (the state cannot be refined
    further at this threshold).  ``propagation_threshold`` overrides the
    configured ``eta`` for a single step — query-time refinement lowers it
    adaptively so candidates can always be decided.
    """
    eta = params.propagation_threshold if propagation_threshold is None else propagation_threshold
    alpha = params.alpha
    active = [(node, amount) for node, amount in state.residual.items() if amount >= eta]
    if not active:
        return False

    residual = state.residual
    retained = state.retained
    hub_ink = state.hub_ink
    indptr, indices, data = transition.indptr, transition.indices, transition.data
    for node, amount in active:
        # Consume exactly the snapshot amount (Eq. 9 operates on r_{t-1});
        # ink pushed to this node by earlier members of the same batch stays
        # as residue for the next iteration.
        remaining = residual.get(node, 0.0) - amount
        if remaining > 1e-18:
            residual[node] = remaining
        else:
            residual.pop(node, None)
        retained[node] = retained.get(node, 0.0) + alpha * amount
        # ...and push the rest to out-neighbours (transition column = node).
        start, stop = indptr[node], indptr[node + 1]
        if start == stop:
            # Dangling nodes never occur with the default self-loop policy,
            # but guard anyway: the (1-alpha) share is simply lost as residue.
            continue
        share = (1.0 - alpha) * amount
        for neighbor, weight in zip(indices[start:stop], data[start:stop]):
            portion = share * weight
            if hub_mask[neighbor]:
                hub_ink[int(neighbor)] = hub_ink.get(int(neighbor), 0.0) + portion
            else:
                residual[int(neighbor)] = residual.get(int(neighbor), 0.0) + portion
    state.iterations += 1
    return True


def initial_node_state(node: int, is_hub: bool) -> NodeState:
    """Fresh BCA state for ``node``: one unit of residue ink at the node itself.

    Hub nodes do not run BCA; their state simply references their own exact
    hub column (``s = e_node``), so the reconstructed vector is ``P_H e_node``.
    """
    if is_hub:
        return NodeState(hub_ink={int(node): 1.0}, is_hub=True)
    return NodeState(residual={int(node): 1.0})


def run_node_bca(
    state: NodeState,
    transition: sp.csc_matrix,
    hub_mask: np.ndarray,
    params: IndexParams,
    *,
    max_iterations: Optional[int] = None,
) -> NodeState:
    """Run batched BCA on ``state`` until the residue drops below ``delta``.

    The loop also stops when no node reaches the propagation threshold or the
    iteration cap is hit, whichever comes first.
    """
    if max_iterations is None:
        max_iterations = params.max_index_iterations
    while state.residual_mass > params.residue_threshold and state.iterations < max_iterations:
        if not bca_iteration(state, transition, hub_mask, params):
            break
    return state


class _HubExpansion:
    """Expands a node state into a dense approximate proximity vector.

    Thin helper shared by index construction (before the
    :class:`ReverseTopKIndex` exists) and by query-time refinement (where the
    index itself provides the hub matrix).
    """

    def __init__(self, n_nodes: int, hubs: HubSet, hub_matrix: sp.csc_matrix) -> None:
        self.n_nodes = n_nodes
        self.hubs = hubs
        self.hub_matrix = hub_matrix

    def expand(self, state: NodeState) -> np.ndarray:
        vector = np.zeros(self.n_nodes, dtype=np.float64)
        for target, value in state.retained.items():
            vector[target] += value
        for hub, ink in state.hub_ink.items():
            position = self.hubs.position(hub)
            start, stop = (
                self.hub_matrix.indptr[position],
                self.hub_matrix.indptr[position + 1],
            )
            vector[self.hub_matrix.indices[start:stop]] += ink * self.hub_matrix.data[start:stop]
        return vector


def materialize_lower_bounds(
    state: NodeState, index_like: _HubExpansion, capacity: int
) -> None:
    """Recompute ``state.lower_bounds`` from the current ``w`` and ``s`` (Eq. 7)."""
    vector = index_like.expand(state)
    state.lower_bounds = top_k_descending(vector, capacity)


# ----------------------------------------------------------------------- #
# build report
# ----------------------------------------------------------------------- #
@dataclass(frozen=True)
class BuildReport:
    """Per-phase cost breakdown of one index build.

    Attributes
    ----------
    backend:
        Propagation backend the build ran with.
    block_size:
        Multi-source block width (meaningful for the vectorized backend).
    n_nodes / n_targets:
        Graph size and how many nodes were actually (re)indexed.
    stage_seconds:
        Seconds per phase: ``hub_matrix`` (exact hub proximities + rounding),
        ``bca`` (ink propagation) and ``materialize`` (hub expansion and
        top-K extraction).  For parallel builds the worker-side propagation
        and materialization are both accounted under ``bca`` (the pool's
        wall-clock), and ``materialize`` covers only the parent-side merge.
    """

    backend: str
    block_size: int
    n_nodes: int
    n_targets: int
    stage_seconds: Dict[str, float]

    @property
    def build_seconds(self) -> float:
        """Total build cost — exactly the sum of the recorded phases."""
        return float(sum(self.stage_seconds.values()))

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "backend": self.backend,
            "block_size": self.block_size,
            "n_nodes": self.n_nodes,
            "n_targets": self.n_targets,
            "stage_seconds": dict(self.stage_seconds),
            "build_seconds": self.build_seconds,
        }


# ----------------------------------------------------------------------- #
# the kernel
# ----------------------------------------------------------------------- #
class PropagationKernel:
    """One entry point for all BCA ink movement over a fixed transition matrix.

    Parameters
    ----------
    transition:
        Column-stochastic CSC transition matrix.
    hub_mask:
        Boolean mask marking hub nodes (ink arriving there is parked).
    params:
        :class:`IndexParams`; ``params.backend`` selects the implementation
        and ``params.block_size`` bounds the vectorized block width.
    hubs / hub_matrix:
        The hub set and its proximity columns ``P_H``.  When given, states
        produced by :meth:`run` have their top-K lower bounds materialized;
        without them the kernel only propagates (callers materialize later).
    backend:
        Optional override of ``params.backend`` for this kernel instance.
    workspace:
        Optional :class:`KernelWorkspace` to draw scratch planes from; by
        default the kernel owns a private one.  Pass a shared workspace when
        several kernels with compatible lifetimes should reuse buffers.
    reuse_buffers:
        When ``False``, the blocked path allocates fresh planes per run and
        a fresh arrivals array per iteration (the historical behaviour) —
        kept for A/B benchmarking of the workspace; leave ``True`` otherwise.
    profiler:
        Optional profiling sink (:class:`~repro.obs.profiler.KernelProfiler`
        or compatible).  Defaults to the shared no-op sink; hot paths check
        its ``enabled`` flag once per run, so the disabled cost is nil.
    """

    def __init__(
        self,
        transition: sp.spmatrix,
        hub_mask: np.ndarray,
        params: IndexParams,
        *,
        hubs: Optional[HubSet] = None,
        hub_matrix: Optional[sp.csc_matrix] = None,
        backend: Optional[str] = None,
        workspace: Optional[KernelWorkspace] = None,
        reuse_buffers: bool = True,
        profiler=None,
    ) -> None:
        self.transition = sp.csc_matrix(transition)
        self.hub_mask = np.asarray(hub_mask, dtype=bool)
        self.params = params
        self.backend = params.backend if backend is None else backend
        if self.backend not in PROPAGATION_BACKENDS:
            raise ValueError(
                f"backend must be one of {PROPAGATION_BACKENDS}, got {self.backend!r}"
            )
        if self.backend == "numba":
            # Raises ConfigurationError with an install hint when the
            # optional extra is missing — never a deep ImportError.
            from .backends import load_numba_kernels

            self._jit = load_numba_kernels()
        else:
            self._jit = None
        self.workspace = workspace if workspace is not None else KernelWorkspace()
        self.reuse_buffers = bool(reuse_buffers)
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.hubs = hubs
        self.hub_matrix = hub_matrix.tocsc() if hub_matrix is not None else None
        self.expansion: Optional[_HubExpansion] = None
        if self.hubs is not None and self.hub_matrix is not None:
            self.expansion = _HubExpansion(self.n_nodes, self.hubs, self.hub_matrix)
        self._hub_nodes = np.flatnonzero(self.hub_mask)
        self._hub_position: Optional[np.ndarray] = None
        if self._jit is not None:
            # node id -> hub row (or -1): the compiled iteration splits hub
            # arrivals inline instead of post-hoc masking.
            self._hub_position = np.full(self.n_nodes, -1, dtype=np.int64)
            self._hub_position[self._hub_nodes] = np.arange(
                self._hub_nodes.size, dtype=np.int64
            )

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered by the transition matrix."""
        return self.transition.shape[0]

    # ------------------------------------------------------------------ #
    # full runs (index construction, invalidation rebuilds)
    # ------------------------------------------------------------------ #
    def run(
        self,
        sources: Sequence[int],
        *,
        stages: Optional[StageTimer] = None,
        on_done: Optional[SourceCallback] = None,
        sink=None,
    ) -> List[NodeState]:
        """Run BCA to convergence from every (non-hub) source node.

        Returns one :class:`NodeState` per source, aligned with ``sources``.
        ``stages`` accumulates ``bca`` / ``materialize`` phase timings;
        ``on_done`` fires once per source as it converges (progress hook).

        With a ``sink`` (a :class:`~repro.core.statestore.StateArraysSink`),
        converged columns spill as flat array segments instead of
        :class:`NodeState` objects and the return value is an empty list —
        the caller assembles a columnar store from the sink.  Only the
        blocked backends support a sink (the scalar path builds dicts
        natively and raises ``ValueError``).
        """
        sources = [int(source) for source in sources]
        for source in sources:
            if self.hub_mask[source]:
                raise ValueError(
                    f"node {source} is a hub; hub states are built from the "
                    "exact hub proximities, not with BCA"
                )
        if sink is not None and self.backend == "scalar":
            raise ValueError(
                "the scalar backend does not support columnar sinks; use the "
                "vectorized, numba or sparse backend"
            )
        if stages is None:
            stages = StageTimer()
        stages.add("bca", 0.0)
        stages.add("materialize", 0.0)
        if not sources:
            return []
        self._sparse_peak_bytes = 0
        if self.backend in ("vectorized", "numba"):
            states = self._run_vectorized(sources, stages, on_done, sink)
        elif self.backend == "sparse":
            states = self._run_sparse(sources, stages, on_done, sink)
        else:
            states = self._run_scalar(sources, stages, on_done)
        if self.profiler.enabled:
            plane_bytes = 0
            if self.backend in ("vectorized", "numba"):
                block = max(1, min(int(self.params.block_size), len(sources)))
                n_dense = 3 if self._jit is not None else 5
                plane_bytes = (
                    self.n_nodes * block * 8 * n_dense
                    + self._hub_nodes.size * block * 8
                )
            elif self.backend == "sparse":
                plane_bytes = self._sparse_peak_bytes
            self.profiler.on_run(
                backend=self.backend,
                n_sources=len(sources),
                plane_bytes=plane_bytes,
                workspace=self.workspace.stats(),
            )
        return states

    def _run_scalar(
        self,
        sources: List[int],
        stages: StageTimer,
        on_done: Optional[SourceCallback],
    ) -> List[NodeState]:
        """Per-source reference path — bit-identical to the seed build loop."""
        states: List[NodeState] = []
        for source in sources:
            state = initial_node_state(source, False)
            with stages.time("bca"):
                run_node_bca(state, self.transition, self.hub_mask, self.params)
            if self.expansion is not None:
                with stages.time("materialize"):
                    materialize_lower_bounds(state, self.expansion, self.params.capacity)
            states.append(state)
            if on_done is not None:
                on_done(source)
        return states

    def _run_vectorized(
        self,
        sources: List[int],
        stages: StageTimer,
        on_done: Optional[SourceCallback],
        sink=None,
    ) -> List[NodeState]:
        """Blocked multi-source engine: dense ``(n, B)`` state, one product per step."""
        params = self.params
        n = self.n_nodes
        eta = params.propagation_threshold
        delta = params.residue_threshold
        alpha = params.alpha
        scale = 1.0 - alpha
        max_iterations = params.max_index_iterations
        hub_nodes = self._hub_nodes
        block = max(1, min(int(params.block_size), len(sources)))
        matrix = self.transition
        jit = self._jit
        # In-place accumulating product: needs reusable planes and the SciPy
        # routine; otherwise fall back to the allocating legacy product.
        fused = self.reuse_buffers and _CSC_MATVECS is not None

        if self.reuse_buffers:
            ws = self.workspace
            residual = ws.zeros("residual", (n, block))
            retained = ws.zeros("retained", (n, block))
            hub_ink = ws.zeros("hub_ink", (hub_nodes.size, block))
            iterations = ws.zeros("iterations", block, np.int64)
            column_source = ws.take("column_source", block, np.int64)
            # Work planes fully (re)written before every read; bookkeeping
            # vectors for parked columns are masked off by ``live``.
            amounts = ws.take("amounts", (n, block))
            column_mass = ws.take("column_mass", block)
            column_active = ws.take("column_active", block, bool)
            active = ws.take("active", (n, block), bool) if jit is None else None
            shares = ws.take("shares", (n, block)) if jit is None else None
        else:
            residual = np.zeros((n, block), dtype=np.float64)
            retained = np.zeros((n, block), dtype=np.float64)
            hub_ink = np.zeros((hub_nodes.size, block), dtype=np.float64)
            iterations = np.zeros(block, dtype=np.int64)
            column_source = np.full(block, -1, dtype=np.int64)
            amounts = np.zeros((n, block), dtype=np.float64)
            column_mass = np.zeros(block, dtype=np.float64)
            column_active = np.zeros(block, dtype=bool)
            active = np.zeros((n, block), dtype=bool) if jit is None else None
            shares = np.zeros((n, block), dtype=np.float64) if jit is None else None

        results: Dict[int, NodeState] = {}
        next_source = 0
        # Hoisted once: the profiling-off cost inside the loop is `prof is
        # not None` checks, no attribute loads or clock reads.
        prof = self.profiler if self.profiler.enabled else None

        def refill(columns: np.ndarray) -> None:
            """Load the next pending sources into a batch of freed columns."""
            nonlocal next_source
            take = min(len(sources) - next_source, columns.size)
            fill, park = columns[:take], columns[take:]
            if take:
                fresh = np.asarray(
                    sources[next_source : next_source + take], dtype=np.int64
                )
                next_source += take
                residual[:, fill] = 0.0
                retained[:, fill] = 0.0
                hub_ink[:, fill] = 0.0
                residual[fresh, fill] = 1.0
                iterations[fill] = 0
                column_source[fill] = fresh
            column_source[park] = -1

        refill(np.arange(block))

        while True:
            live = column_source >= 0
            if not live.any():
                break
            with stages.time("bca"):
                if jit is not None:
                    # Fused per-column mass + has-active statistics.
                    jit.block_stats(residual, live, eta, column_mass, column_active)
                    has_active = column_active
                    mass = column_mass
                else:
                    np.greater_equal(residual, eta, out=active)
                    if not live.all():
                        active[:, ~live] = False
                    has_active = active.any(axis=0)
                    mass = residual.sum(axis=0)
                stepping = live & has_active & (mass > delta) & (iterations < max_iterations)
            finished = live & ~stepping
            if finished.any():
                # Spill every converged source in one batch and refill the
                # freed columns; the next pass re-evaluates the fresh ones.
                with stages.time("materialize"):
                    spill_start = time.perf_counter() if prof is not None else 0.0
                    columns = np.flatnonzero(finished)
                    self._spill_columns(
                        columns, column_source, residual, retained, hub_ink,
                        iterations, hub_nodes, results, on_done, sink,
                    )
                    refill(columns)
                    if prof is not None:
                        prof.on_spill(
                            n_sources=int(columns.size),
                            seconds=time.perf_counter() - spill_start,
                        )
                continue
            with stages.time("bca"):
                product_start = time.perf_counter() if prof is not None else 0.0
                if jit is not None:
                    # Snapshot, retain, scatter and hub-split fused into one
                    # compiled parallel pass over the stepping columns.
                    jit.bca_block_iteration(
                        residual, retained, hub_ink, amounts,
                        self._hub_position, matrix.indptr, matrix.indices,
                        matrix.data, stepping, eta, alpha, scale,
                    )
                    iterations[stepping] += 1
                    if prof is not None:
                        prof.on_block_iteration(
                            backend=self.backend,
                            n_live=int(np.count_nonzero(stepping)),
                            seconds=time.perf_counter() - product_start,
                        )
                    continue
                # Snapshot the propagating amounts (Eq. 9 operates on r_{t-1})
                # and advance every live source with one sparse-dense product.
                np.multiply(residual, active, out=amounts)
                residual -= amounts
                np.multiply(amounts, scale, out=shares)
                if live.all():
                    if fused:
                        # Accumulate arrivals straight into the residual plane
                        # (hub rows hold zero residue by invariant, so their
                        # accumulated sums equal the legacy arrivals and can
                        # be moved to hub_ink afterwards).
                        _CSC_MATVECS(
                            n, n, block, matrix.indptr, matrix.indices,
                            matrix.data, shares.ravel(), residual.ravel(),
                        )
                        if hub_nodes.size:
                            hub_ink += residual[hub_nodes, :]
                            residual[hub_nodes, :] = 0.0
                    else:
                        arrivals = matrix @ shares
                        if hub_nodes.size:
                            hub_ink += arrivals[hub_nodes, :]
                            arrivals[hub_nodes, :] = 0.0
                        residual += arrivals
                else:
                    # Drain phase: the worklist is exhausted and some columns
                    # are parked all-zero — restrict the product to the live
                    # columns so tail stragglers stop paying for the whole
                    # block.  Per-column results are unchanged bit for bit:
                    # the gathered columns start from the same values and
                    # accumulate contributions in the same ascending
                    # matrix-column order as the full-width pass.
                    columns = np.flatnonzero(stepping)
                    if fused:
                        # Trailing fancy indexing yields F-ordered copies;
                        # the accumulating product needs C layout (it reads
                        # and writes raveled row-major storage).
                        live_shares = np.ascontiguousarray(shares[:, columns])
                        live_residual = np.ascontiguousarray(residual[:, columns])
                        _CSC_MATVECS(
                            n, n, columns.size, matrix.indptr, matrix.indices,
                            matrix.data, live_shares.ravel(), live_residual.ravel(),
                        )
                        if hub_nodes.size:
                            hub_ink[:, columns] += live_residual[hub_nodes, :]
                            live_residual[hub_nodes, :] = 0.0
                        residual[:, columns] = live_residual
                    else:
                        arrivals = matrix @ shares[:, columns]
                        if hub_nodes.size:
                            hub_ink[:, columns] += arrivals[hub_nodes, :]
                            arrivals[hub_nodes, :] = 0.0
                        residual[:, columns] += arrivals
                np.multiply(amounts, alpha, out=amounts)
                retained += amounts
                iterations[stepping] += 1
                if prof is not None:
                    prof.on_block_iteration(
                        backend=self.backend,
                        n_live=int(np.count_nonzero(stepping)),
                        seconds=time.perf_counter() - product_start,
                    )

        if sink is not None:
            return []
        return [results[source] for source in sources]

    def _spill_columns(
        self,
        columns: np.ndarray,
        column_source: np.ndarray,
        residual: np.ndarray,
        retained: np.ndarray,
        hub_ink: np.ndarray,
        iterations: np.ndarray,
        hub_nodes: np.ndarray,
        results: Dict[int, NodeState],
        on_done: Optional[SourceCallback],
        sink=None,
    ) -> None:
        """Convert a batch of converged dense columns back into NodeStates."""
        bounds: Optional[np.ndarray] = None
        if self.hub_matrix is not None:
            # Reproduce _HubExpansion.expand's accumulation order exactly
            # (retained first, then one hub column at a time in ascending
            # position order): states whose hub-ink dicts are in ascending
            # order — everything this backend produces — re-materialize
            # through expand() to the bit-identical lower bounds, which the
            # dynamic maintainer's hub re-expansion path relies on.
            vectors = retained[:, columns]  # fancy index: a fresh array
            matrix = self.hub_matrix
            for position in range(matrix.shape[1]):
                ink = hub_ink[position, columns]
                if not ink.any():
                    continue
                start, stop = matrix.indptr[position], matrix.indptr[position + 1]
                vectors[matrix.indices[start:stop], :] += (
                    ink[None, :] * matrix.data[start:stop, None]
                )
            bounds = _batched_top_k(vectors, self.params.capacity)
        if sink is not None:
            spilled = column_source[columns]
            sink.absorb(
                sources=spilled.copy(),
                iterations=iterations[columns].copy(),
                bounds=(
                    np.ascontiguousarray(bounds.T) if bounds is not None else None
                ),
                residual=_flat_columns(residual, columns),
                retained=_flat_columns(retained, columns),
                hub_ink=_flat_columns(hub_ink, columns, hub_nodes),
            )
            if on_done is not None:
                for source in spilled.tolist():
                    on_done(int(source))
            return
        residual_dicts = _columns_to_dicts(residual, columns)
        retained_dicts = _columns_to_dicts(retained, columns)
        ink_dicts = _columns_to_dicts(hub_ink, columns, hub_nodes)
        for position, column in enumerate(columns.tolist()):
            source = int(column_source[column])
            state = NodeState(
                residual=residual_dicts[position],
                retained=retained_dicts[position],
                hub_ink=ink_dicts[position],
                iterations=int(iterations[column]),
            )
            if bounds is not None:
                state.lower_bounds = bounds[:, position].copy()
            results[source] = state
            if on_done is not None:
                on_done(source)

    def _run_sparse(
        self,
        sources: List[int],
        stages: StageTimer,
        on_done: Optional[SourceCallback],
        sink=None,
    ) -> List[NodeState]:
        """Blocked engine on sparse CSC planes: memory scales with the frontier.

        Each chunk of ``B`` sources runs to full convergence before the next
        chunk starts (no mid-stream refill — refilling would force repeated
        sparse-structure rebuilds).  All per-iteration arithmetic is
        element-wise on the CSC ``data`` vector or per-column sparse algebra,
        so every source's trajectory is bitwise independent of its chunk
        mates, exactly like the dense backends.
        """
        params = self.params
        n = self.n_nodes
        eta = params.propagation_threshold
        delta = params.residue_threshold
        alpha = params.alpha
        scale = 1.0 - alpha
        max_iterations = params.max_index_iterations
        hub_nodes = self._hub_nodes
        matrix = self.transition
        block = max(1, min(int(params.block_size), len(sources)))
        results: Dict[int, NodeState] = {}
        prof = self.profiler if self.profiler.enabled else None
        peak = 0

        for chunk_start in range(0, len(sources), block):
            chunk = np.asarray(
                sources[chunk_start : chunk_start + block], dtype=np.int64
            )
            width = int(chunk.size)
            with stages.time("bca"):
                residual = sp.csc_matrix(
                    (
                        np.ones(width, dtype=np.float64),
                        (chunk, np.arange(width, dtype=np.int64)),
                    ),
                    shape=(n, width),
                )
                retained = sp.csc_matrix((n, width), dtype=np.float64)
                hub_ink = np.zeros((hub_nodes.size, width), dtype=np.float64)
                iterations = np.zeros(width, dtype=np.int64)
                alive = np.ones(width, dtype=bool)
                while True:
                    data = residual.data
                    indptr = residual.indptr
                    counts = np.diff(indptr)
                    # Per-column residue mass via reduceat over the nonempty
                    # segments: empty columns contribute no data between
                    # consecutive nonempty starts, so segment ends line up
                    # with column ends — each sum reads only its own column.
                    mass = np.zeros(width, dtype=np.float64)
                    nonempty = np.flatnonzero(counts)
                    if nonempty.size:
                        mass[nonempty] = np.add.reduceat(
                            data, indptr[:-1][nonempty]
                        )
                    active = data >= eta
                    col_of = np.repeat(
                        np.arange(width, dtype=np.int64), counts
                    )
                    has_active = (
                        np.bincount(col_of[active], minlength=width) > 0
                    )
                    stepping = (
                        alive
                        & has_active
                        & (mass > delta)
                        & (iterations < max_iterations)
                    )
                    if not stepping.any():
                        break
                    alive = stepping
                    iteration_start = (
                        time.perf_counter() if prof is not None else 0.0
                    )
                    take = active & stepping[col_of]
                    amounts = np.where(take, data, 0.0)
                    # Pre-scale the pushed shares so the per-edge product is
                    # weight * ((1-alpha) * amount) — the same association
                    # as the scalar reference's ``share * weight``.
                    shares = sp.csc_matrix(
                        (
                            amounts * scale,
                            residual.indices.copy(),
                            indptr.copy(),
                        ),
                        shape=(n, width),
                    )
                    shares.eliminate_zeros()
                    kept = sp.csc_matrix(
                        (
                            amounts * alpha,
                            residual.indices.copy(),
                            indptr.copy(),
                        ),
                        shape=(n, width),
                    )
                    kept.eliminate_zeros()
                    retained = (retained + kept).tocsc()
                    residual.data = data - amounts
                    residual.eliminate_zeros()
                    # SciPy's sparse-sparse product accumulates each output
                    # column independently — per-column bitwise determinism
                    # survives the chunk composition.
                    arrivals = (matrix @ shares).tocsc()
                    if hub_nodes.size and arrivals.nnz:
                        rows = arrivals.tocsr()
                        moved = False
                        for position, hub in enumerate(hub_nodes.tolist()):
                            lo, hi = rows.indptr[hub], rows.indptr[hub + 1]
                            if lo == hi:
                                continue
                            hub_ink[position, rows.indices[lo:hi]] += rows.data[
                                lo:hi
                            ]
                            rows.data[lo:hi] = 0.0
                            moved = True
                        if moved:
                            rows.eliminate_zeros()
                            arrivals = rows.tocsc()
                    residual = (residual + arrivals).tocsc()
                    iterations[stepping] += 1
                    live_bytes = (
                        residual.data.nbytes
                        + residual.indices.nbytes
                        + residual.indptr.nbytes
                        + retained.data.nbytes
                        + retained.indices.nbytes
                        + retained.indptr.nbytes
                        + hub_ink.nbytes
                    )
                    peak = max(peak, int(live_bytes))
                    if prof is not None:
                        prof.on_block_iteration(
                            backend=self.backend,
                            n_live=int(np.count_nonzero(stepping)),
                            seconds=time.perf_counter() - iteration_start,
                        )
            with stages.time("materialize"):
                spill_start = time.perf_counter() if prof is not None else 0.0
                self._spill_sparse(
                    chunk, residual, retained, hub_ink, iterations,
                    hub_nodes, results, on_done, sink,
                )
                if prof is not None:
                    prof.on_spill(
                        n_sources=width,
                        seconds=time.perf_counter() - spill_start,
                    )

        self._sparse_peak_bytes = peak
        if sink is not None:
            return []
        return [results[source] for source in sources]

    def _spill_sparse(
        self,
        chunk: np.ndarray,
        residual: sp.csc_matrix,
        retained: sp.csc_matrix,
        hub_ink: np.ndarray,
        iterations: np.ndarray,
        hub_nodes: np.ndarray,
        results: Dict[int, NodeState],
        on_done: Optional[SourceCallback],
        sink=None,
    ) -> None:
        """Spill a converged sparse chunk into a sink or NodeState objects.

        The CSC columns, once sorted, *are* the flat ``(counts, keys,
        values)`` segments — keys ascending per column, the same order the
        dense spill's ``np.nonzero`` gather produces.
        """
        width = int(chunk.size)
        capacity = self.params.capacity
        residual.eliminate_zeros()
        residual.sort_indices()
        retained.eliminate_zeros()
        retained.sort_indices()
        bounds: Optional[np.ndarray] = None
        if self.hub_matrix is not None:
            if not hub_ink.size or not hub_ink.any():
                # No hub corrections: the expanded vector is exactly the
                # retained column scattered over zeros, so its top-K is the
                # column's values sorted descending, zero-padded (every
                # retained value is positive and K <= n by construction).
                bounds = np.zeros((capacity, width), dtype=np.float64)
                for column in range(width):
                    lo, hi = retained.indptr[column], retained.indptr[column + 1]
                    ordered = np.sort(retained.data[lo:hi])[::-1]
                    count = min(ordered.size, capacity)
                    bounds[:count, column] = ordered[:count]
            else:
                # Reproduce _HubExpansion.expand per column on a dense
                # scratch vector: retained entries first, then hub columns
                # in ascending position order (the hub-ink storage order).
                bounds = np.empty((capacity, width), dtype=np.float64)
                matrix = self.hub_matrix
                scratch = np.zeros(self.n_nodes, dtype=np.float64)
                for column in range(width):
                    lo, hi = retained.indptr[column], retained.indptr[column + 1]
                    touched = retained.indices[lo:hi]
                    scratch[touched] = retained.data[lo:hi]
                    hub_touched = []
                    for position in np.flatnonzero(hub_ink[:, column]).tolist():
                        start, stop = (
                            matrix.indptr[position],
                            matrix.indptr[position + 1],
                        )
                        targets = matrix.indices[start:stop]
                        scratch[targets] += (
                            hub_ink[position, column] * matrix.data[start:stop]
                        )
                        hub_touched.append(targets)
                    bounds[:, column] = top_k_descending(scratch, capacity)
                    scratch[touched] = 0.0
                    for targets in hub_touched:
                        scratch[targets] = 0.0
        if sink is not None:
            sink.absorb(
                sources=chunk.copy(),
                iterations=iterations.copy(),
                bounds=(
                    np.ascontiguousarray(bounds.T) if bounds is not None else None
                ),
                residual=(
                    np.diff(residual.indptr).astype(np.int64),
                    residual.indices.astype(np.int64),
                    residual.data,
                ),
                retained=(
                    np.diff(retained.indptr).astype(np.int64),
                    retained.indices.astype(np.int64),
                    retained.data,
                ),
                hub_ink=_flat_columns(
                    hub_ink, np.arange(width, dtype=np.int64), hub_nodes
                ),
            )
            if on_done is not None:
                for source in chunk.tolist():
                    on_done(int(source))
            return
        ink_dicts = _columns_to_dicts(
            hub_ink, np.arange(width, dtype=np.int64), hub_nodes
        )
        for column in range(width):
            parts: List[Dict[int, float]] = []
            for plane in (residual, retained):
                lo, hi = plane.indptr[column], plane.indptr[column + 1]
                parts.append(
                    dict(
                        zip(
                            plane.indices[lo:hi].tolist(),
                            plane.data[lo:hi].tolist(),
                        )
                    )
                )
            state = NodeState(
                residual=parts[0],
                retained=parts[1],
                hub_ink=ink_dicts[column],
                iterations=int(iterations[column]),
            )
            if bounds is not None:
                state.lower_bounds = bounds[:, column].copy()
            results[int(chunk[column])] = state
            if on_done is not None:
                on_done(int(chunk[column]))

    # ------------------------------------------------------------------ #
    # single steps (query-time refinement: a block of one source)
    # ------------------------------------------------------------------ #
    #: Minimum residue-support fraction of ``n`` at which the dense
    #: single-source step pays off; sparser states fall back to the dict
    #: iteration, whose cost scales with the active set instead of ``n``.
    _DENSE_STEP_FRACTION = 1 / 32

    def step(
        self,
        state: NodeState,
        *,
        propagation_threshold: Optional[float] = None,
    ) -> bool:
        """Advance ``state`` by one batched BCA iteration (Algorithm 4, line 13).

        Returns ``True`` when ink moved, ``False`` when no node reaches the
        threshold.  The vectorized backend treats the state as a block of one
        source through the same dense code path as :meth:`run` — but only
        once the residue support is a sizable fraction of the graph; a dense
        pass over all ``n`` nodes (and a sparse product over every stored
        edge) for a handful of active residues would make query-time
        refinement orders of magnitude slower than the dict iteration on
        large graphs.  Both paths implement the identical batched rule
        (Eq. 8-9); they differ only in floating-point accumulation order.
        """
        dense = (
            self.backend in ("vectorized", "numba")
            and len(state.residual) >= self.n_nodes * self._DENSE_STEP_FRACTION
        )
        if self.profiler.enabled:
            self.profiler.on_step(dense=dense)
        if dense:
            return self._step_vectorized(state, propagation_threshold)
        return bca_iteration(
            state,
            self.transition,
            self.hub_mask,
            self.params,
            propagation_threshold=propagation_threshold,
        )

    def _step_vectorized(
        self, state: NodeState, propagation_threshold: Optional[float]
    ) -> bool:
        eta = (
            self.params.propagation_threshold
            if propagation_threshold is None
            else propagation_threshold
        )
        if not state.residual:
            return False
        n = self.n_nodes
        reuse = self.reuse_buffers and _CSC_MATVECS is not None
        if reuse:
            # Same arithmetic as the allocating path below, on workspace
            # scratch: ``residual * active`` matches ``where(active, r, 0)``
            # bit for bit on non-negative residues, and the accumulating
            # product from a zeroed output scatters contributions in the
            # identical ascending-column order as ``transition @ shares``.
            ws = self.workspace
            residual = ws.zeros("step_residual", n)
            amounts = ws.take("step_amounts", n)
            shares = ws.take("step_shares", n)
            arrivals = ws.zeros("step_arrivals", n)
            active = ws.take("step_active", n, bool)
        else:
            residual = np.zeros(n, dtype=np.float64)
        keys = np.fromiter(state.residual.keys(), dtype=np.int64, count=len(state.residual))
        residual[keys] = np.fromiter(
            state.residual.values(), dtype=np.float64, count=len(state.residual)
        )
        alpha = self.params.alpha
        if reuse:
            np.greater_equal(residual, eta, out=active)
            if not active.any():
                return False
            np.multiply(residual, active, out=amounts)
            np.multiply(amounts, 1.0 - alpha, out=shares)
            _CSC_MATVECS(
                n, n, 1, self.transition.indptr, self.transition.indices,
                self.transition.data, shares, arrivals,
            )
            residual -= amounts
            kept = np.multiply(amounts, alpha, out=amounts)
        else:
            active = residual >= eta
            if not active.any():
                return False
            amounts = np.where(active, residual, 0.0)
            arrivals = self.transition @ ((1.0 - alpha) * amounts)
            residual -= amounts
            kept = alpha * amounts
        for node in np.flatnonzero(active):
            state.retained[int(node)] = state.retained.get(int(node), 0.0) + float(kept[node])
        hub_nodes = self._hub_nodes
        if hub_nodes.size:
            for hub in hub_nodes[arrivals[hub_nodes] != 0.0]:
                state.hub_ink[int(hub)] = state.hub_ink.get(int(hub), 0.0) + float(
                    arrivals[hub]
                )
            arrivals[hub_nodes] = 0.0
        residual += arrivals
        state.residual = _column_to_dict(residual)
        state.iterations += 1
        return True

    def materialize(self, state: NodeState) -> None:
        """Refresh ``state.lower_bounds`` through the kernel's hub expansion."""
        if self.expansion is None:
            raise ValueError(
                "kernel was constructed without hubs/hub_matrix; it cannot "
                "materialize lower bounds"
            )
        materialize_lower_bounds(state, self.expansion, self.params.capacity)
