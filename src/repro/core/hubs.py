"""Hub selection strategies (Section 4.1.1).

The paper replaces Berkhin's expensive greedy hub discovery with a simple
degree heuristic: take the union of the ``B`` highest in-degree nodes and the
``B`` highest out-degree nodes.  Both strategies are implemented so the
ablation benchmark can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .._validation import check_non_negative_int, check_positive_int
from ..graph.digraph import DiGraph
from ..rwr.bca import push_proximity_vector
from ..utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class HubSet:
    """An ordered set of hub nodes with a position lookup.

    Attributes
    ----------
    nodes:
        Hub node ids in ascending order.
    """

    nodes: Tuple[int, ...]
    _positions: Dict[int, int] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_positions", {node: position for position, node in enumerate(self.nodes)}
        )

    @classmethod
    def from_iterable(cls, nodes: Iterable[int]) -> "HubSet":
        """Create a hub set from any iterable of node ids (deduplicated, sorted)."""
        return cls(tuple(sorted({int(node) for node in nodes})))

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: object) -> bool:
        return isinstance(node, (int, np.integer)) and int(node) in self._positions

    def __iter__(self):
        return iter(self.nodes)

    def position(self, node: int) -> int:
        """Column index of ``node`` inside the hub proximity matrix ``P_H``."""
        return self._positions[int(node)]

    def as_set(self) -> FrozenSet[int]:
        """Return the hubs as a frozen set."""
        return frozenset(self.nodes)

    def mask(self, n_nodes: int) -> np.ndarray:
        """Boolean mask of length ``n_nodes`` marking hub positions."""
        mask = np.zeros(n_nodes, dtype=bool)
        if self.nodes:
            mask[np.asarray(self.nodes, dtype=np.int64)] = True
        return mask


def degree_union_hubs(
    in_degree: np.ndarray, out_degree: np.ndarray, budget: int
) -> HubSet:
    """Union of the ``budget`` top in-degree and top out-degree nodes.

    The single shared implementation of the §4.1.1 selection — including its
    tie-break (primary key descending degree, secondary ascending node id,
    via one ``lexsort`` per direction) — used both by the graph-based
    :func:`select_hubs_by_degree` and by the transition-matrix-based selector
    in :mod:`repro.core.lbi`, so the two can never drift apart on graphs
    with degree ties.
    """
    in_degree = np.asarray(in_degree)
    out_degree = np.asarray(out_degree)
    n = in_degree.size
    if out_degree.size != n:
        raise ValueError(
            f"in_degree has {n} entries but out_degree has {out_degree.size}"
        )
    budget = min(check_non_negative_int(budget, "budget"), n)
    if budget == 0:
        return HubSet(())
    # lexsort: primary key descending degree, secondary ascending node id.
    by_in = np.lexsort((np.arange(n), -in_degree))[:budget]
    by_out = np.lexsort((np.arange(n), -out_degree))[:budget]
    return HubSet.from_iterable(np.concatenate([by_in, by_out]).tolist())


def select_hubs_by_degree(graph: DiGraph, budget: int) -> HubSet:
    """Degree-based hub selection (the paper's method, §4.1.1).

    Returns the union of the ``budget`` highest in-degree and the ``budget``
    highest out-degree nodes.  Ties are broken by node id for determinism
    (see :func:`degree_union_hubs`).  The resulting hub set has between
    ``budget`` and ``2 * budget`` nodes (matching the ``|H|`` column of
    Table 2, which is always below ``2B``).
    """
    return degree_union_hubs(graph.in_degree, graph.out_degree, budget)


def select_hubs_greedy(
    graph: DiGraph,
    transition: sp.spmatrix,
    n_hubs: int,
    *,
    alpha: float = 0.15,
    propagation_threshold: float = 1e-4,
    n_probes: Optional[int] = None,
    seed: SeedLike = 0,
) -> HubSet:
    """Berkhin's greedy hub selection (reviewed in §2.2), for the ablation.

    Repeatedly run (partial) BCA from a random start node and promote the
    node holding the largest retained ink that is not yet a hub.  The paper
    argues this is too expensive on large graphs; the ablation benchmark
    quantifies how close the cheap degree heuristic gets.

    Parameters
    ----------
    n_hubs:
        Number of hubs to select.
    n_probes:
        Number of BCA probe runs (defaults to ``2 * n_hubs``).
    """
    n_hubs = check_positive_int(n_hubs, "n_hubs")
    n_hubs = min(n_hubs, graph.n_nodes)
    if n_probes is None:
        n_probes = 2 * n_hubs
    rng = ensure_rng(seed)
    hubs: list[int] = []
    chosen = set()
    probes = 0
    while len(hubs) < n_hubs and probes < n_probes:
        probes += 1
        start = int(rng.integers(0, graph.n_nodes))
        result = push_proximity_vector(
            transition,
            start,
            alpha=alpha,
            propagation_threshold=propagation_threshold,
        )
        order = np.argsort(-result.retained)
        for node in order:
            node = int(node)
            if result.retained[node] <= 0:
                break
            if node not in chosen:
                hubs.append(node)
                chosen.add(node)
                break
    # Top up with high-degree nodes if probing did not find enough hubs.
    if len(hubs) < n_hubs:
        fallback = select_hubs_by_degree(graph, n_hubs)
        for node in fallback:
            if node not in chosen:
                hubs.append(node)
                chosen.add(node)
            if len(hubs) >= n_hubs:
                break
    return HubSet.from_iterable(hubs)
