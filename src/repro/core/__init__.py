"""Core contribution of the paper: the reverse top-k RWR search framework.

Modules
-------
``config``
    Parameter dataclasses (``IndexParams``, ``QueryParams``) with the paper's
    defaults (α=0.15, K=200, η=1e-4, δ=0.1, ω=1e-6, ε=1e-10).
``hubs``
    Hub selection: the paper's degree-based heuristic (§4.1.1) and Berkhin's
    greedy BCA-driven scheme for comparison.
``lbi``
    Algorithm 1 — Lower Bound Indexing via batched BCA with hubs.
``index``
    The :class:`ReverseTopKIndex` data structure: per-node BCA state, top-K
    lower bounds, rounded hub proximities, dynamic updates, persistence and
    size accounting (§4.1.3) — plus the incrementally-maintained columnar
    views (:class:`ColumnarView`) the vectorized engine scans.
``pmpn``
    Algorithm 2 — Power Method for Proximity to Node (Theorem 2).
``bounds``
    Algorithm 3 — staircase upper bound for the k-th largest proximity.
``query``
    Algorithm 4 — the online reverse top-k query engine.
``sharding``
    Partitioned index shards (in-RAM or memmap-backed) with a query router
    that answers bit-identically to the monolithic engine.
``baseline``
    Brute-force comparators: BF, IBF and FBF (§3, §5.3).
``estimates``
    Theorem 1 storage estimate and Proposition 3 rounding-error bound.
"""

from .backends import available_backends, numba_available, require_backend
from .baseline import (
    brute_force_reverse_topk,
    InfeasibleBruteForce,
    FeasibleBruteForce,
)
from .bounds import (
    BoundsWorkspace,
    kth_upper_bound,
    kth_upper_bounds_batch,
    staircase_levels,
)
from .config import IndexParams, QueryParams, PROPAGATION_BACKENDS, SCAN_PRECISIONS
from .estimates import predicted_index_bytes, rounding_error_bound
from .hubs import degree_union_hubs, select_hubs_by_degree, select_hubs_greedy, HubSet
from .index import ReverseTopKIndex, NodeState, ColumnarView
from .lbi import build_index, build_index_parallel, rebuild_node_state, refine_node_state
from .pmpn import proximity_to_node, PMPNResult
from .propagation import BuildReport, KernelWorkspace, PropagationKernel
from .query import (
    ReverseTopKEngine,
    QueryResult,
    QueryStatistics,
    SCAN_MODES,
    columnar_stage_decisions,
)
from .sharding import (
    IndexShard,
    ShardedReverseTopKEngine,
    ShardedReverseTopKIndex,
    build_sharded_index,
    shard_boundaries,
)

__all__ = [
    "IndexParams",
    "QueryParams",
    "PROPAGATION_BACKENDS",
    "SCAN_PRECISIONS",
    "available_backends",
    "numba_available",
    "require_backend",
    "KernelWorkspace",
    "BoundsWorkspace",
    "columnar_stage_decisions",
    "degree_union_hubs",
    "select_hubs_by_degree",
    "select_hubs_greedy",
    "HubSet",
    "BuildReport",
    "PropagationKernel",
    "build_index",
    "build_index_parallel",
    "rebuild_node_state",
    "refine_node_state",
    "ReverseTopKIndex",
    "NodeState",
    "ColumnarView",
    "proximity_to_node",
    "PMPNResult",
    "kth_upper_bound",
    "kth_upper_bounds_batch",
    "staircase_levels",
    "ReverseTopKEngine",
    "IndexShard",
    "ShardedReverseTopKEngine",
    "ShardedReverseTopKIndex",
    "build_sharded_index",
    "shard_boundaries",
    "SCAN_MODES",
    "QueryResult",
    "QueryStatistics",
    "brute_force_reverse_topk",
    "InfeasibleBruteForce",
    "FeasibleBruteForce",
    "predicted_index_bytes",
    "rounding_error_bound",
]
