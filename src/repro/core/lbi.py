"""Algorithm 1 — Lower Bound Indexing (LBI) via batched BCA with hubs (§4.1.2).

For every node ``u`` the indexer runs a *batched* adaptation of BCA:

1. inject one unit of ink at ``u``;
2. at each iteration, take **all** non-hub nodes holding at least ``eta``
   residue ink (the set ``L_t``), retain an ``alpha`` share of their residue
   and forward the rest along out-edges;
3. ink arriving at a hub is parked in the hub-ink vector ``s`` (it will be
   expanded exactly through the pre-computed hub proximities ``P_H``);
4. stop once the total residue drops to ``delta`` (or no node reaches
   ``eta``), then record the top-``K`` values of ``p^t_u = w + P_H s`` as the
   node's lower bounds.

Hub proximity vectors are computed exactly with the power method, rounded
(entries below ``omega`` zeroed) and stored as the columns of ``P_H``.

The same single-iteration primitive (:func:`bca_iteration`) doubles as the
candidate-refinement step of the online query (Algorithm 4, line 13).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph.digraph import DiGraph
from ..graph.transition import transition_matrix
from ..utils.sparsetools import top_k_descending
from ..utils.timer import Timer
from ..rwr.power_method import proximity_vector
from .config import IndexParams
from .hubs import HubSet, select_hubs_by_degree
from .index import NodeState, ReverseTopKIndex


def bca_iteration(
    state: NodeState,
    transition: sp.csc_matrix,
    hub_mask: np.ndarray,
    params: IndexParams,
    *,
    propagation_threshold: Optional[float] = None,
) -> bool:
    """Run one batched BCA iteration in place (Eq. 6, 8, 9).

    Returns ``True`` when at least one node propagated ink, ``False`` when no
    non-hub node holds ``eta`` or more residue (the state cannot be refined
    further at this threshold).  ``propagation_threshold`` overrides the
    configured ``eta`` for a single step — query-time refinement lowers it
    adaptively so candidates can always be decided.
    """
    eta = params.propagation_threshold if propagation_threshold is None else propagation_threshold
    alpha = params.alpha
    active = [(node, amount) for node, amount in state.residual.items() if amount >= eta]
    if not active:
        return False

    residual = state.residual
    retained = state.retained
    hub_ink = state.hub_ink
    indptr, indices, data = transition.indptr, transition.indices, transition.data
    for node, amount in active:
        # Consume exactly the snapshot amount (Eq. 9 operates on r_{t-1});
        # ink pushed to this node by earlier members of the same batch stays
        # as residue for the next iteration.
        remaining = residual.get(node, 0.0) - amount
        if remaining > 1e-18:
            residual[node] = remaining
        else:
            residual.pop(node, None)
        retained[node] = retained.get(node, 0.0) + alpha * amount
        # ...and push the rest to out-neighbours (transition column = node).
        start, stop = indptr[node], indptr[node + 1]
        if start == stop:
            # Dangling nodes never occur with the default self-loop policy,
            # but guard anyway: the (1-alpha) share is simply lost as residue.
            continue
        share = (1.0 - alpha) * amount
        for neighbor, weight in zip(indices[start:stop], data[start:stop]):
            portion = share * weight
            if hub_mask[neighbor]:
                hub_ink[int(neighbor)] = hub_ink.get(int(neighbor), 0.0) + portion
            else:
                residual[int(neighbor)] = residual.get(int(neighbor), 0.0) + portion
    state.iterations += 1
    return True


def materialize_lower_bounds(
    state: NodeState, index_like: "_HubExpansion", capacity: int
) -> None:
    """Recompute ``state.lower_bounds`` from the current ``w`` and ``s`` (Eq. 7)."""
    vector = index_like.expand(state)
    state.lower_bounds = top_k_descending(vector, capacity)


class _HubExpansion:
    """Expands a node state into a dense approximate proximity vector.

    Thin helper shared by index construction (before the
    :class:`ReverseTopKIndex` exists) and by query-time refinement (where the
    index itself provides the hub matrix).
    """

    def __init__(self, n_nodes: int, hubs: HubSet, hub_matrix: sp.csc_matrix) -> None:
        self.n_nodes = n_nodes
        self.hubs = hubs
        self.hub_matrix = hub_matrix

    def expand(self, state: NodeState) -> np.ndarray:
        vector = np.zeros(self.n_nodes, dtype=np.float64)
        for target, value in state.retained.items():
            vector[target] += value
        for hub, ink in state.hub_ink.items():
            position = self.hubs.position(hub)
            start, stop = (
                self.hub_matrix.indptr[position],
                self.hub_matrix.indptr[position + 1],
            )
            vector[self.hub_matrix.indices[start:stop]] += ink * self.hub_matrix.data[start:stop]
        return vector


def _compute_hub_matrix(
    transition: sp.spmatrix,
    hubs: HubSet,
    params: IndexParams,
) -> Tuple[sp.csc_matrix, np.ndarray, Dict[int, np.ndarray]]:
    """Exact hub proximity vectors, rounded per §4.1.3.

    Returns the ``n x |H|`` CSC matrix ``P_H``, the per-hub mass removed by
    rounding (``hub_deficit``, used to keep the upper bound sound), and the
    *exact* (un-rounded) top-``K`` proximity values of every hub.  The exact
    top-K lists are what the index stores as the hubs' lower bounds — they
    cost no extra space and keep hub decisions exact regardless of ``omega``.
    """
    n = transition.shape[0]
    omega = params.rounding_threshold
    columns = []
    deficits = np.zeros(len(hubs), dtype=np.float64)
    exact_top_k: Dict[int, np.ndarray] = {}
    for position, hub in enumerate(hubs):
        exact = proximity_vector(
            transition, hub, alpha=params.alpha, tolerance=params.tolerance
        ).vector
        exact_top_k[int(hub)] = top_k_descending(exact, params.capacity)
        if omega > 0:
            kept = np.where(exact >= omega, exact, 0.0)
        else:
            kept = exact
        deficits[position] = float(exact.sum() - kept.sum())
        columns.append(sp.csc_matrix(kept.reshape(-1, 1)))
    if columns:
        hub_matrix = sp.hstack(columns, format="csc")
    else:
        hub_matrix = sp.csc_matrix((n, 0))
    return hub_matrix, deficits, exact_top_k


def default_hub_selection(graph: DiGraph, params: IndexParams) -> HubSet:
    """The hub set :func:`build_index` selects by default for a graph.

    One shared definition of the default policy (the degree heuristic of
    §4.1.1, or no hubs when the budget is zero): the dynamic maintainer's
    ``"reselect"`` mode must make exactly the same choice as a from-scratch
    build, or its bit-identity guarantee silently breaks.
    """
    if params.hub_budget > 0:
        return select_hubs_by_degree(graph, params.hub_budget)
    return HubSet(())


def initial_node_state(node: int, is_hub: bool) -> NodeState:
    """Fresh BCA state for ``node``: one unit of residue ink at the node itself.

    Hub nodes do not run BCA; their state simply references their own exact
    hub column (``s = e_node``), so the reconstructed vector is ``P_H e_node``.
    """
    if is_hub:
        return NodeState(hub_ink={int(node): 1.0}, is_hub=True)
    return NodeState(residual={int(node): 1.0})


def run_node_bca(
    state: NodeState,
    transition: sp.csc_matrix,
    hub_mask: np.ndarray,
    params: IndexParams,
    *,
    max_iterations: Optional[int] = None,
) -> NodeState:
    """Run batched BCA on ``state`` until the residue drops below ``delta``.

    The loop also stops when no node reaches the propagation threshold or the
    iteration cap is hit, whichever comes first.
    """
    if max_iterations is None:
        max_iterations = params.max_index_iterations
    while state.residual_mass > params.residue_threshold and state.iterations < max_iterations:
        if not bca_iteration(state, transition, hub_mask, params):
            break
    return state


def build_index(
    graph: DiGraph | sp.spmatrix,
    params: Optional[IndexParams] = None,
    *,
    hubs: Optional[HubSet] = None,
    transition: Optional[sp.spmatrix] = None,
    nodes: Optional[Sequence[int]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ReverseTopKIndex:
    """Build the reverse top-k index for a graph (Algorithm 1).

    Parameters
    ----------
    graph:
        Either a :class:`~repro.graph.digraph.DiGraph` or a pre-built
        column-stochastic transition matrix.
    params:
        Index construction parameters; defaults to the paper's settings,
        clamped to the graph size.
    hubs:
        Pre-selected hub set; defaults to the degree heuristic of §4.1.1 with
        ``params.hub_budget``.
    transition:
        Pre-computed transition matrix (overrides the graph's default,
        unweighted one — pass the weighted matrix for co-authorship graphs).
    nodes:
        Restrict indexing to a subset of nodes (used by incremental tests);
        other nodes receive an un-refined state with a single unit of residue.
    progress:
        Optional callback ``(done, total)`` invoked after each node, so long
        builds can report progress.
    """
    if isinstance(graph, DiGraph):
        matrix = transition if transition is not None else transition_matrix(graph)
        n = graph.n_nodes
    else:
        matrix = graph if transition is None else transition
        n = matrix.shape[0]
        graph = None  # type: ignore[assignment]

    matrix = sp.csc_matrix(matrix)
    if params is None:
        params = IndexParams()
    params = params.for_graph(n)

    if hubs is None:
        if graph is not None:
            hubs = default_hub_selection(graph, params)
        elif params.hub_budget > 0:
            hubs = _select_hubs_from_matrix(matrix, params.hub_budget)
        else:
            hubs = HubSet(())

    timer = Timer()
    with timer:
        hub_matrix, hub_deficit, hub_top_k = _compute_hub_matrix(matrix, hubs, params)
        hub_mask = hubs.mask(n)
        expansion = _HubExpansion(n, hubs, hub_matrix)

        target_nodes = range(n) if nodes is None else [int(v) for v in nodes]
        target_set = set(target_nodes)
        states: List[NodeState] = []
        done = 0
        for node in range(n):
            state = initial_node_state(node, hub_mask[node])
            if state.is_hub:
                # Hubs carry their exact (un-rounded) top-K proximities.
                state.lower_bounds = hub_top_k[node].copy()
            else:
                if node in target_set:
                    run_node_bca(state, matrix, hub_mask, params)
                materialize_lower_bounds(state, expansion, params.capacity)
            states.append(state)
            if progress is not None and node in target_set:
                done += 1
                progress(done, len(target_set))

    return ReverseTopKIndex(
        params, hubs, hub_matrix, hub_deficit, states, build_seconds=timer.elapsed
    )


def rebuild_node_state(
    node: int,
    transition: sp.csc_matrix,
    hub_mask: np.ndarray,
    params: IndexParams,
    expansion: _HubExpansion,
) -> NodeState:
    """From-scratch BCA state for one non-hub node — the invalidation fallback.

    The dynamic-graph maintainer calls this for every node whose buffered
    state touched a mutated transition column: the state is reset to one unit
    of residue ink and re-refined exactly as :func:`build_index` would, so
    the result is bit-identical to the state a full rebuild on ``transition``
    produces.  ``expansion`` must wrap the hub matrix computed for the *new*
    transition.
    """
    if hub_mask[node]:
        raise ValueError(
            f"node {node} is a hub; hub states are rebuilt from the exact "
            "hub proximities, not with BCA"
        )
    state = initial_node_state(node, False)
    run_node_bca(state, transition, hub_mask, params)
    materialize_lower_bounds(state, expansion, params.capacity)
    return state


def refine_node_state(
    state: NodeState,
    index: ReverseTopKIndex,
    transition: sp.csc_matrix,
    hub_mask: np.ndarray,
    *,
    adaptive: bool = True,
    node: Optional[int] = None,
) -> bool:
    """One refinement step used by the online query (Algorithm 4, line 13).

    Applies a single batched BCA iteration to ``state`` and refreshes its
    top-K lower bounds.  With ``adaptive=True`` (the default for query-time
    refinement) the propagation threshold is lowered to the largest remaining
    residue when no node reaches the configured ``eta``, so refinement always
    makes progress while any residue remains — this is what lets Algorithm 4
    decide every candidate instead of stalling on sub-threshold residue.

    When ``node`` is given and ``state`` is the index's stored state for that
    node (the update-index query policy refines states in place), the index's
    columnar views are refreshed too, so the vectorized scan of later queries
    prunes with the tightened bounds.

    Returns ``False`` only when the state holds no residue at all (it is
    already exact).
    """
    threshold: Optional[float] = None
    if adaptive and state.residual:
        largest = max(state.residual.values())
        if largest < index.params.propagation_threshold:
            # Half the largest residue: every node within a factor two of the
            # maximum propagates, so each step still moves a whole batch of
            # ink instead of degenerating into single-node pushes.
            threshold = largest * 0.5
    progressed = bca_iteration(
        state, transition, hub_mask, index.params, propagation_threshold=threshold
    )
    if not progressed:
        return False
    expansion = _HubExpansion(index.hub_matrix.shape[0], index.hubs, index.hub_matrix)
    materialize_lower_bounds(state, expansion, index.params.capacity)
    if node is not None and state is index.state(node):
        index.sync_state(node)
    return True


def _select_hubs_from_matrix(matrix: sp.csc_matrix, budget: int) -> HubSet:
    """Degree-based hub selection when only the transition matrix is available.

    Column ``j`` of the transition matrix lists the out-neighbours of ``j``;
    rows list in-edges.  The non-zero counts therefore give out- and
    in-degrees without needing the original graph object.
    """
    csc = matrix.tocsc()
    out_degree = np.diff(csc.indptr)
    csr = matrix.tocsr()
    in_degree = np.diff(csr.indptr)
    n = matrix.shape[0]
    budget = min(budget, n)
    by_out = np.lexsort((np.arange(n), -out_degree))[:budget]
    by_in = np.lexsort((np.arange(n), -in_degree))[:budget]
    return HubSet.from_iterable(np.concatenate([by_in, by_out]).tolist())
