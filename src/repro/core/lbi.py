"""Algorithm 1 — Lower Bound Indexing (LBI) via batched BCA with hubs (§4.1.2).

For every node ``u`` the indexer runs a *batched* adaptation of BCA:

1. inject one unit of ink at ``u``;
2. at each iteration, take **all** non-hub nodes holding at least ``eta``
   residue ink (the set ``L_t``), retain an ``alpha`` share of their residue
   and forward the rest along out-edges;
3. ink arriving at a hub is parked in the hub-ink vector ``s`` (it will be
   expanded exactly through the pre-computed hub proximities ``P_H``);
4. stop once the total residue drops to ``delta`` (or no node reaches
   ``eta``), then record the top-``K`` values of ``p^t_u = w + P_H s`` as the
   node's lower bounds.

Hub proximity vectors are computed exactly with the power method, rounded
(entries below ``omega`` zeroed) and stored as the columns of ``P_H``.

All ink movement is delegated to the unified propagation layer
(:mod:`repro.core.propagation`): construction runs the
:class:`~repro.core.propagation.PropagationKernel` over every non-hub node —
with the ``"vectorized"`` backend that is a blocked multi-source engine, with
``"scalar"`` the seed's per-node dict loop — and query-time refinement
(Algorithm 4, line 13) advances candidate states through the same kernel as
a block of one.  :func:`build_index_parallel` shards the node range across a
process pool and merges the per-shard states into one index; per-source
bitwise determinism of the kernel makes the result identical to a serial
build under the same backend.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph.digraph import DiGraph
from ..graph.transition import transition_matrix
from ..obs.registry import get_registry
from ..rwr.power_method import proximity_vector
from ..utils.sparsetools import top_k_descending
from ..utils.timer import StageTimer
from .config import IndexParams
from .hubs import HubSet, degree_union_hubs, select_hubs_by_degree
from .index import NodeState, ReverseTopKIndex
from .statestore import CollectedStates, StateArraysSink, assemble_store

# Propagation primitives live in the kernel layer; re-exported here because
# this module is their historical home (tests and benchmarks import them
# from ``repro.core.lbi``).
from .propagation import (  # noqa: F401  (re-exports)
    BuildReport,
    PropagationKernel,
    _HubExpansion,
    bca_iteration,
    initial_node_state,
    materialize_lower_bounds,
    run_node_bca,
)


def _compute_hub_matrix(
    transition: sp.spmatrix,
    hubs: HubSet,
    params: IndexParams,
) -> Tuple[sp.csc_matrix, np.ndarray, Dict[int, np.ndarray]]:
    """Exact hub proximity vectors, rounded per §4.1.3.

    Returns the ``n x |H|`` CSC matrix ``P_H``, the per-hub mass removed by
    rounding (``hub_deficit``, used to keep the upper bound sound), and the
    *exact* (un-rounded) top-``K`` proximity values of every hub.  The exact
    top-K lists are what the index stores as the hubs' lower bounds — they
    cost no extra space and keep hub decisions exact regardless of ``omega``.
    """
    n = transition.shape[0]
    omega = params.rounding_threshold
    columns = []
    deficits = np.zeros(len(hubs), dtype=np.float64)
    exact_top_k: Dict[int, np.ndarray] = {}
    for position, hub in enumerate(hubs):
        exact = proximity_vector(
            transition, hub, alpha=params.alpha, tolerance=params.tolerance
        ).vector
        exact_top_k[int(hub)] = top_k_descending(exact, params.capacity)
        if omega > 0:
            kept = np.where(exact >= omega, exact, 0.0)
        else:
            kept = exact
        deficits[position] = float(exact.sum() - kept.sum())
        columns.append(sp.csc_matrix(kept.reshape(-1, 1)))
    if columns:
        hub_matrix = sp.hstack(columns, format="csc")
    else:
        hub_matrix = sp.csc_matrix((n, 0))
    return hub_matrix, deficits, exact_top_k


def default_hub_selection(graph: DiGraph, params: IndexParams) -> HubSet:
    """The hub set :func:`build_index` selects by default for a graph.

    One shared definition of the default policy (the degree heuristic of
    §4.1.1, or no hubs when the budget is zero): the dynamic maintainer's
    ``"reselect"`` mode must make exactly the same choice as a from-scratch
    build, or its bit-identity guarantee silently breaks.
    """
    if params.hub_budget > 0:
        return select_hubs_by_degree(graph, params.hub_budget)
    return HubSet(())


def _resolve_build_inputs(
    graph: DiGraph | sp.spmatrix,
    params: Optional[IndexParams],
    hubs: Optional[HubSet],
    transition: Optional[sp.spmatrix],
    backend: Optional[str],
) -> Tuple[sp.csc_matrix, int, IndexParams, HubSet]:
    """Shared preamble of the serial and parallel builders."""
    if isinstance(graph, DiGraph):
        matrix = transition if transition is not None else transition_matrix(graph)
        n = graph.n_nodes
    else:
        matrix = graph if transition is None else transition
        n = matrix.shape[0]
        graph = None  # type: ignore[assignment]

    matrix = sp.csc_matrix(matrix)
    if params is None:
        params = IndexParams()
    params = params.for_graph(n)
    if backend is not None and backend != params.backend:
        # replace() re-runs IndexParams.__post_init__, which rejects unknown
        # backends — no separate membership check needed here.
        params = replace(params, backend=backend)

    if hubs is None:
        if graph is not None:
            hubs = default_hub_selection(graph, params)
        elif params.hub_budget > 0:
            hubs = _select_hubs_from_matrix(matrix, params.hub_budget)
        else:
            hubs = HubSet(())
    return matrix, n, params, hubs


def _emit_build_metrics(report: BuildReport) -> None:
    """Mirror one :class:`BuildReport` into the process-wide registry.

    Index builds run from library code (no server to own a registry), so
    build telemetry lands in the default registry: build counts and indexed
    nodes by backend, plus per-stage seconds — the same exposition the
    serving layer scrapes, per the observability layer's one-API rule.
    """
    registry = get_registry()
    registry.counter(
        "repro_index_builds_total",
        "Completed index builds",
        labels=("backend",),
    ).labels(backend=report.backend).inc()
    registry.counter(
        "repro_index_build_nodes_total",
        "Nodes (re)indexed across builds",
        labels=("backend",),
    ).labels(backend=report.backend).inc(report.n_targets)
    stage_family = registry.counter(
        "repro_index_build_seconds_total",
        "Seconds per index-build phase",
        labels=("backend", "stage"),
    )
    for stage, seconds in report.stage_seconds.items():
        stage_family.labels(backend=report.backend, stage=stage).inc(seconds)


def _assemble_index(
    params: IndexParams,
    hubs: HubSet,
    hub_matrix: sp.csc_matrix,
    hub_deficit: np.ndarray,
    hub_top_k: Dict[int, np.ndarray],
    built: Dict[int, NodeState],
    hub_mask: np.ndarray,
    kernel: PropagationKernel,
    n: int,
    n_targets: int,
    stages: StageTimer,
    hub_progress: Optional[Callable[[int], None]],
) -> ReverseTopKIndex:
    """Merge hub states, built states and untargeted placeholders into an index."""
    with stages.time("materialize"):
        states: List[NodeState] = []
        for node in range(n):
            if hub_mask[node]:
                # Hubs carry their exact (un-rounded) top-K proximities.
                state = initial_node_state(node, True)
                state.lower_bounds = hub_top_k[node].copy()
                if hub_progress is not None:
                    hub_progress(node)
            elif node in built:
                state = built[node]
            else:
                # Untargeted node: an un-refined unit of residue, trivially
                # materialized (all-zero lower bounds).
                state = initial_node_state(node, False)
                materialize_lower_bounds(state, kernel.expansion, params.capacity)
            states.append(state)

    report = BuildReport(
        backend=params.backend,
        block_size=params.block_size,
        n_nodes=n,
        n_targets=n_targets,
        stage_seconds=stages.as_dict(),
    )
    _emit_build_metrics(report)
    index = ReverseTopKIndex(
        params,
        hubs,
        hub_matrix,
        hub_deficit,
        states,
        build_seconds=report.build_seconds,
    )
    index.build_report = report
    return index


def _assemble_store_index(
    params: IndexParams,
    hubs: HubSet,
    hub_matrix: sp.csc_matrix,
    hub_deficit: np.ndarray,
    hub_top_k: Dict[int, np.ndarray],
    collected: Sequence[CollectedStates],
    hub_mask: np.ndarray,
    n: int,
    n_targets: int,
    stages: StageTimer,
    hub_progress: Optional[Callable[[int], None]],
) -> ReverseTopKIndex:
    """Columnar twin of :func:`_assemble_index`: no NodeState objects.

    The collected flat segments plus vectorised hub / untargeted rows merge
    into a :class:`~repro.core.statestore.ColumnarStateStore` that backs the
    index directly — the build hot path materialises zero per-node Python
    state objects.
    """
    with stages.time("materialize"):
        store = assemble_store(
            0, n, params.capacity, collected, hub_mask, hub_top_k
        )
        if hub_progress is not None:
            for node in np.flatnonzero(hub_mask).tolist():
                hub_progress(node)

    report = BuildReport(
        backend=params.backend,
        block_size=params.block_size,
        n_nodes=n,
        n_targets=n_targets,
        stage_seconds=stages.as_dict(),
    )
    _emit_build_metrics(report)
    index = ReverseTopKIndex(
        params,
        hubs,
        hub_matrix,
        hub_deficit,
        store,
        build_seconds=report.build_seconds,
    )
    index.build_report = report
    return index


def build_index(
    graph: DiGraph | sp.spmatrix,
    params: Optional[IndexParams] = None,
    *,
    hubs: Optional[HubSet] = None,
    transition: Optional[sp.spmatrix] = None,
    nodes: Optional[Sequence[int]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    backend: Optional[str] = None,
) -> ReverseTopKIndex:
    """Build the reverse top-k index for a graph (Algorithm 1).

    Parameters
    ----------
    graph:
        Either a :class:`~repro.graph.digraph.DiGraph` or a pre-built
        column-stochastic transition matrix.
    params:
        Index construction parameters; defaults to the paper's settings,
        clamped to the graph size.  ``params.backend`` selects the
        propagation backend and ``params.block_size`` the vectorized block
        width.
    hubs:
        Pre-selected hub set; defaults to the degree heuristic of §4.1.1 with
        ``params.hub_budget``.
    transition:
        Pre-computed transition matrix (overrides the graph's default,
        unweighted one — pass the weighted matrix for co-authorship graphs).
    nodes:
        Restrict indexing to a subset of nodes (used by incremental tests);
        other nodes receive an un-refined state with a single unit of residue.
    progress:
        Optional callback ``(done, total)`` invoked once per target node, so
        long builds can report progress.
    backend:
        Per-call override of ``params.backend`` (recorded on the returned
        index's parameters).

    The returned index carries a :class:`~repro.core.propagation.BuildReport`
    as ``index.build_report``: per-phase seconds for the exact hub proximity
    computation (``hub_matrix``), ink propagation (``bca``) and lower-bound
    materialization (``materialize``), which sum to ``index.build_seconds``.
    """
    matrix, n, params, hubs = _resolve_build_inputs(
        graph, params, hubs, transition, backend
    )

    stages = StageTimer()
    with stages.time("hub_matrix"):
        hub_matrix, hub_deficit, hub_top_k = _compute_hub_matrix(matrix, hubs, params)
    hub_mask = hubs.mask(n)
    kernel = PropagationKernel(
        matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
    )

    target_nodes = range(n) if nodes is None else [int(v) for v in nodes]
    target_set = set(target_nodes)
    total = len(target_set)
    done = 0

    def advance(node: int) -> None:
        nonlocal done
        if progress is not None and node in target_set:
            done += 1
            progress(done, total)

    bca_sources = [node for node in range(n) if not hub_mask[node] and node in target_set]
    if params.backend != "scalar" and nodes is None:
        # Full builds on the blocked backends spill converged columns
        # straight into flat arrays and assemble a columnar store — the
        # default (and only) large-graph path; states stay lazy views.
        sink = StateArraysSink(params.capacity)
        kernel.run(bca_sources, stages=stages, on_done=advance, sink=sink)
        return _assemble_store_index(
            params,
            hubs,
            hub_matrix,
            hub_deficit,
            hub_top_k,
            [sink.collected()],
            hub_mask,
            n,
            total,
            stages,
            advance,
        )
    built = dict(zip(bca_sources, kernel.run(bca_sources, stages=stages, on_done=advance)))
    return _assemble_index(
        params,
        hubs,
        hub_matrix,
        hub_deficit,
        hub_top_k,
        built,
        hub_mask,
        kernel,
        n,
        total,
        stages,
        advance,
    )


#: Per-process kernel for parallel builds, installed by the pool initializer
#: so the (identical, read-only) matrices ship once per worker instead of
#: once per shard, and per-shard task payloads are just source-id lists.
_WORKER_KERNEL: Optional[PropagationKernel] = None


def _init_shard_worker(
    matrix: sp.csc_matrix,
    hub_mask: np.ndarray,
    params: IndexParams,
    hubs: HubSet,
    hub_matrix: sp.csc_matrix,
) -> None:
    global _WORKER_KERNEL
    _WORKER_KERNEL = PropagationKernel(
        matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
    )


def _bca_shard(sources: List[int]) -> Tuple[List[int], List[NodeState]]:
    """Process-pool worker: run the shared kernel over one shard of sources."""
    return sources, _WORKER_KERNEL.run(sources)


def _collect_shard(sources: List[int]) -> CollectedStates:
    """Process-pool worker: run one shard into flat collected arrays.

    The columnar twin of :func:`_bca_shard` — the return payload is plain
    NumPy arrays (cheap to pickle), not per-node Python objects.
    """
    sink = StateArraysSink(_WORKER_KERNEL.params.capacity)
    _WORKER_KERNEL.run(sources, sink=sink)
    return sink.collected()


def build_index_parallel(
    graph: DiGraph | sp.spmatrix,
    params: Optional[IndexParams] = None,
    *,
    hubs: Optional[HubSet] = None,
    transition: Optional[sp.spmatrix] = None,
    n_workers: int = 2,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ReverseTopKIndex:
    """Build the index with the node range sharded across a process pool.

    The exact hub proximity matrix is computed once in the parent; each
    worker runs the :class:`~repro.core.propagation.PropagationKernel` over a
    contiguous shard of the non-hub node range, and the parent merges the
    per-shard states into one :class:`ReverseTopKIndex`.  Because the kernel
    is bitwise deterministic per source, the merged index is **identical** to
    a serial :func:`build_index` under the same parameters.

    ``progress`` fires once per completed *shard* (with node counts), not per
    node — workers do not stream per-node completions across the pool.  With
    ``n_workers <= 1`` this falls back to the serial builder.
    """
    if n_workers <= 1:
        return build_index(
            graph, params, hubs=hubs, transition=transition, progress=progress
        )

    matrix, n, params, hubs = _resolve_build_inputs(graph, params, hubs, transition, None)
    stages = StageTimer()
    with stages.time("hub_matrix"):
        hub_matrix, hub_deficit, hub_top_k = _compute_hub_matrix(matrix, hubs, params)
    hub_mask = hubs.mask(n)
    kernel = PropagationKernel(
        matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
    )

    bca_sources = [node for node in range(n) if not hub_mask[node]]
    # More shards than workers (4x) keeps the pool load-balanced when shard
    # convergence times are uneven; shard payloads are just source-id lists,
    # the matrices ship once per worker through the initializer.
    shards = [
        shard.tolist()
        for shard in np.array_split(
            np.asarray(bca_sources, dtype=np.int64), 4 * n_workers
        )
        if shard.size
    ]
    if params.backend != "scalar":
        collected: List[CollectedStates] = []
        done = 0
        with stages.time("bca"):
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_init_shard_worker,
                initargs=(matrix, hub_mask, params, hubs, hub_matrix),
            ) as pool:
                for part in pool.map(_collect_shard, shards):
                    collected.append(part)
                    done += part.n_sources
                    if progress is not None:
                        progress(done, len(bca_sources))
        return _assemble_store_index(
            params,
            hubs,
            hub_matrix,
            hub_deficit,
            hub_top_k,
            collected,
            hub_mask,
            n,
            n,
            stages,
            None,
        )
    built: Dict[int, NodeState] = {}
    done = 0
    with stages.time("bca"):
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_shard_worker,
            initargs=(matrix, hub_mask, params, hubs, hub_matrix),
        ) as pool:
            for sources, states in pool.map(_bca_shard, shards):
                built.update(zip(sources, states))
                done += len(sources)
                if progress is not None:
                    progress(done, len(bca_sources))
    return _assemble_index(
        params,
        hubs,
        hub_matrix,
        hub_deficit,
        hub_top_k,
        built,
        hub_mask,
        kernel,
        n,
        n,
        stages,
        None,
    )


def rebuild_node_state(
    node: int,
    transition: sp.csc_matrix,
    hub_mask: np.ndarray,
    params: IndexParams,
    expansion: _HubExpansion,
) -> NodeState:
    """From-scratch BCA state for one non-hub node — the invalidation fallback.

    The dynamic-graph maintainer calls this for every node whose buffered
    state touched a mutated transition column: the state is reset to one unit
    of residue ink and re-refined exactly as :func:`build_index` would, so
    the result is bit-identical to the state a full rebuild on ``transition``
    produces (under the same propagation backend).  ``expansion`` must wrap
    the hub matrix computed for the *new* transition.
    """
    if hub_mask[node]:
        raise ValueError(
            f"node {node} is a hub; hub states are rebuilt from the exact "
            "hub proximities, not with BCA"
        )
    kernel = PropagationKernel(
        transition,
        hub_mask,
        params,
        hubs=expansion.hubs,
        hub_matrix=expansion.hub_matrix,
    )
    return kernel.run([node])[0]


def refine_node_state(
    state: NodeState,
    index: ReverseTopKIndex,
    transition: sp.csc_matrix,
    hub_mask: np.ndarray,
    *,
    adaptive: bool = True,
    node: Optional[int] = None,
    kernel: Optional[PropagationKernel] = None,
) -> bool:
    """One refinement step used by the online query (Algorithm 4, line 13).

    Applies a single batched BCA iteration to ``state`` (through the
    propagation kernel, as a block of one source) and refreshes its top-K
    lower bounds.  With ``adaptive=True`` (the default for query-time
    refinement) the propagation threshold is lowered to the largest remaining
    residue when no node reaches the configured ``eta``, so refinement always
    makes progress while any residue remains — this is what lets Algorithm 4
    decide every candidate instead of stalling on sub-threshold residue.

    When ``node`` is given and ``state`` is the index's stored state for that
    node (the update-index query policy refines states in place), the index's
    columnar views are refreshed too, so the vectorized scan of later queries
    prunes with the tightened bounds.

    ``kernel`` lets hot callers (the query engine) reuse one prepared kernel
    across refinements instead of re-deriving it per call.

    Returns ``False`` only when the state holds no residue at all (it is
    already exact).
    """
    threshold: Optional[float] = None
    if adaptive and state.residual:
        largest = max(state.residual.values())
        if largest < index.params.propagation_threshold:
            # Half the largest residue: every node within a factor two of the
            # maximum propagates, so each step still moves a whole batch of
            # ink instead of degenerating into single-node pushes.
            threshold = largest * 0.5
    if kernel is None:
        kernel = PropagationKernel(
            transition,
            hub_mask,
            index.params,
            hubs=index.hubs,
            hub_matrix=index.hub_matrix,
        )
    progressed = kernel.step(state, propagation_threshold=threshold)
    if not progressed:
        return False
    kernel.materialize(state)
    if node is not None and state is index.state(node):
        index.sync_state(node)
    return True


def _select_hubs_from_matrix(matrix: sp.csc_matrix, budget: int) -> HubSet:
    """Degree-based hub selection when only the transition matrix is available.

    Column ``j`` of the transition matrix lists the out-neighbours of ``j``;
    rows list in-edges.  The non-zero counts therefore give out- and
    in-degrees without needing the original graph object.  Tie-breaking is
    shared with :func:`~repro.core.hubs.select_hubs_by_degree` through
    :func:`~repro.core.hubs.degree_union_hubs` so the two selectors cannot
    drift.
    """
    csc = matrix.tocsc()
    out_degree = np.diff(csc.indptr)
    csr = matrix.tocsr()
    in_degree = np.diff(csr.indptr)
    return degree_union_hubs(in_degree, out_degree, budget)
