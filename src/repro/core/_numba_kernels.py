"""JIT-compiled kernels for the blocked BCA engine and the columnar scan.

Importing this module requires :mod:`numba` (the optional ``fast`` extra);
go through :func:`repro.core.backends.load_numba_kernels`, which turns a
missing dependency into a clear ``ConfigurationError`` instead of an
``ImportError`` from here.

Design notes
------------
* Each kernel parallelises over **block columns** (one source per column),
  never within a column, so per-source trajectories stay independent of the
  block composition — the same contract the NumPy engine documents.
* ``fastmath`` stays off: the staircase arithmetic in :func:`scan_decide`
  replays the NumPy batch recurrence term for term, which makes the
  ``float64`` scan decisions bit-identical to the vectorized scan.
* The propagation kernel pushes sources in ascending node order (the same
  scatter order as SciPy's CSC sparse-dense product), but splits hub
  arrivals inline instead of post-hoc, so its states agree with the scalar
  oracle to the usual ``1e-12`` — not bit for bit — exactly like the NumPy
  vectorized backend.
"""

from __future__ import annotations

from numba import njit, prange
import numpy as np

__all__ = ["block_stats", "bca_block_iteration", "scan_decide"]


@njit(parallel=True, cache=True)
def block_stats(residual, live, eta, mass_out, has_active_out):
    """Per-column residue mass and has-active flags in one fused pass.

    Replaces the NumPy trio ``residual >= eta`` / ``any(axis=0)`` /
    ``sum(axis=0)`` — one read of the residual plane instead of three.
    Parked columns (``live`` false) report zero mass and no active nodes.
    """
    n, width = residual.shape
    for col in prange(width):
        if not live[col]:
            mass_out[col] = 0.0
            has_active_out[col] = False
            continue
        total = 0.0
        has_active = False
        for row in range(n):
            value = residual[row, col]
            total += value
            if value >= eta:
                has_active = True
        mass_out[col] = total
        has_active_out[col] = has_active


@njit(parallel=True, cache=True)
def bca_block_iteration(
    residual,
    retained,
    hub_ink,
    amounts,
    hub_position,
    indptr,
    indices,
    data,
    stepping,
    eta,
    alpha,
    scale,
):
    """One batched BCA iteration (Eq. 8-9) over every stepping block column.

    Per column: snapshot the propagating amounts (the batched rule operates
    on ``r_{t-1}``), zero them out of the residual, then push each amount to
    its out-neighbours — ``alpha`` retained at the source, the rest scattered
    along the transition column, with arrivals at hub nodes parked in
    ``hub_ink`` (``hub_position`` maps node id to hub row, ``-1`` otherwise).
    """
    n, width = residual.shape
    for col in prange(width):
        if not stepping[col]:
            continue
        for row in range(n):
            value = residual[row, col]
            if value >= eta:
                amounts[row, col] = value
                residual[row, col] = 0.0
            else:
                amounts[row, col] = 0.0
        for row in range(n):
            amount = amounts[row, col]
            if amount != 0.0:
                retained[row, col] += alpha * amount
                share = scale * amount
                for idx in range(indptr[row], indptr[row + 1]):
                    target = indices[idx]
                    portion = share * data[idx]
                    hub = hub_position[target]
                    if hub >= 0:
                        hub_ink[hub, col] += portion
                    else:
                        residual[target, col] += portion


@njit(parallel=True, cache=True)
def scan_decide(prox, lower, mass, is_exact, k, eps, tiny, codes):
    """Fused prune / exact-shortcut / staircase stage of the columnar scan.

    Writes one decision code per node into ``codes``:

    ====  =========================================================
    code  meaning
    ====  =========================================================
    0     pruned by the k-th lower bound
    1     exact shortcut (survived the prune with exact bounds)
    2     candidate confirmed by the staircase upper bound ("hit")
    3     candidate left undecided (enters per-node refinement)
    4     within the screening envelope — re-check against float64
    ====  =========================================================

    With ``eps == tiny == 0`` and a float64 ``lower`` matrix the decisions
    are bit-identical to the NumPy vectorized scan (code 4 never fires).
    With a float32 ``lower`` plane, ``eps``/``tiny`` define the conservative
    error envelope: any comparison that could flip under float32 rounding is
    emitted as code 4 for the caller to resolve against the float64 truth.
    All arithmetic runs in float64 regardless of the plane's dtype.
    """
    n = prox.shape[0]
    for node in prange(n):
        p = prox[node]
        threshold = np.float64(lower[k - 1, node])
        prune_envelope = eps * threshold + tiny
        if p < threshold - prune_envelope:
            codes[node] = 0
            continue
        if p < threshold + prune_envelope:
            codes[node] = 4
            continue
        if is_exact[node]:
            codes[node] = 1
            continue
        node_mass = mass[node]
        top0 = np.float64(lower[0, node])
        if node_mass == 0.0:
            upper = threshold
        else:
            # Staircase levels z_j = z_{j-1} + j * (p̂(k-j) - p̂(k-j+1)): stop
            # at the first j with z_j >= mass (Eq. 17-18), flood past z_{k-1}.
            level = 0.0
            upper = 0.0
            found = False
            for j in range(1, k):
                step_high = np.float64(lower[k - j - 1, node])
                step_low = np.float64(lower[k - j, node])
                new_level = level + j * (step_high - step_low)
                if new_level >= node_mass:
                    upper = step_high - (new_level - node_mass) / j
                    found = True
                    break
                level = new_level
            if not found:
                upper = top0 + (node_mass - level) / k
        stair_envelope = eps * (top0 + node_mass) + tiny
        if p >= upper + stair_envelope:
            codes[node] = 2
        elif p < upper - stair_envelope:
            codes[node] = 3
        else:
            codes[node] = 4
