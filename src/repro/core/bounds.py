"""Algorithm 3 — staircase upper bound for the k-th largest proximity (§4.2.2).

Given a node ``u`` with a partially-computed proximity vector, the index knows

* ``lower`` — the top-``k`` retained-ink values of ``u`` in descending order
  (each a lower bound of the corresponding true proximity), and
* ``residual_mass`` — the total residue ink ``||r_u||_1`` not yet distributed.

In the most favourable case for ``u``, all residue lands on the current top-k
entries, raising the k-th value as much as possible.  Viewing the top-k values
as a staircase sitting in a container and "pouring" the residue into it, the
resulting water level is exactly the best attainable k-th value — a true upper
bound of ``p^{kmax}_u`` (Proposition 4), monotonically non-increasing as BCA
refines the vector.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import check_non_negative_float, check_positive_int
from ..exceptions import InvalidParameterError
from ..utils.workspace import ArrayWorkspace


class BoundsWorkspace(ArrayWorkspace):
    """Reusable scratch planes for the batched staircase bound.

    :func:`kth_upper_bounds_batch` builds ``(k, m)`` intermediates (the
    sorted-prefix ``top`` matrix, step differences, weighted cumulative
    levels and the level/mass comparison) on every call; a workspace lets
    the query engine reuse that storage across scan rounds instead of
    re-allocating it per query.  Results are bit-identical either way.
    Thread-local like every :class:`~repro.utils.workspace.ArrayWorkspace`,
    so one instance may serve concurrent read-only queries.
    """


# --------------------------------------------------------------------- #
# float32 screening envelopes
# --------------------------------------------------------------------- #
#: Relative error envelope for values round-tripped through float32.  IEEE
#: round-to-nearest guarantees ``|float32(x) - x| <= eps/2 * |x|`` for
#: normal values with ``eps = 2**-23``; using the full ``eps`` leaves a 2x
#: safety margin that also absorbs the float64 arithmetic error of the
#: staircase evaluation on the rounded inputs.
FLOAT32_RELATIVE_ENVELOPE = float(np.finfo(np.float32).eps)

#: Absolute error envelope covering the float32 subnormal range: values
#: below the smallest normal (``~1.18e-38``) round with absolute error at
#: most ``2**-150 (~7e-46)``, so any constant above that is conservative.
FLOAT32_ABSOLUTE_ENVELOPE = 1e-38


def float32_prune_envelope(thresholds: np.ndarray) -> np.ndarray:
    """Bound on ``|t32 - t64|`` given the float32 k-th lower bounds ``t32``.

    ``thresholds`` is the float32 prune row upcast to float64 (non-negative
    by construction — lower bounds are proximities).  A comparison against
    ``t32`` whose margin exceeds this envelope decides identically to the
    float64 comparison; anything closer must be re-checked at float64.
    """
    return FLOAT32_RELATIVE_ENVELOPE * thresholds + FLOAT32_ABSOLUTE_ENVELOPE


def float32_staircase_envelope(top: np.ndarray, masses: np.ndarray) -> np.ndarray:
    """Bound on the staircase upper-bound shift under float32 rounding.

    The poured-ink water level of Eq. 18 is 1-Lipschitz in the staircase
    step heights: perturbing every entry by at most ``d`` moves the level
    by at most ``d``.  Entries are bounded by the top step ``top`` and
    rounded with relative error ``<= eps/2``, so ``eps * top`` bounds the
    level shift with margin; the ``masses`` term generously absorbs the
    float64 evaluation error of the level recurrence itself (``~ k * eps64
    * mass``, orders of magnitude below ``eps32 * mass``).
    """
    return (
        FLOAT32_RELATIVE_ENVELOPE * (top + masses) + FLOAT32_ABSOLUTE_ENVELOPE
    )


def staircase_levels(lower: np.ndarray, k: int) -> np.ndarray:
    """Return the cumulative ink amounts ``z_j`` of Eq. (17).

    ``z_j`` is the amount of residue required for the poured-ink level to
    reach the ``(k - j)``-th step of the staircase, for ``j = 0 .. k-1``.
    """
    lower = np.asarray(lower, dtype=np.float64)
    k = check_positive_int(k, "k")
    if lower.size < k:
        raise InvalidParameterError(
            f"need at least k={k} lower-bound entries, got {lower.size}"
        )
    top = lower[:k]
    if np.any(np.diff(top) > 1e-12):
        raise InvalidParameterError("lower bounds must be sorted in descending order")
    levels = np.zeros(k, dtype=np.float64)
    for j in range(1, k):
        delta = top[k - j - 1] - top[k - j]  # Δ_{k-j} = p̂(k-j) - p̂(k-j+1)
        levels[j] = levels[j - 1] + j * delta
    return levels


def kth_upper_bound(lower: Sequence[float] | np.ndarray, residual_mass: float, k: int) -> float:
    """Upper bound ``ub_u`` of the k-th largest proximity of a node (Eq. 18).

    Parameters
    ----------
    lower:
        The node's top proximities (lower bounds) in **descending** order;
        at least ``k`` entries (use zeros to pad when fewer are known).
    residual_mass:
        Total undistributed ink ``||r_u||_1``.
    k:
        The query depth.

    Returns
    -------
    float
        An upper bound on the true k-th largest proximity value of the node.
        When ``residual_mass`` is zero the bound equals the k-th lower bound,
        i.e. the exact value.
    """
    residual_mass = check_non_negative_float(residual_mass, "residual_mass")
    k = check_positive_int(k, "k")
    lower = np.asarray(lower, dtype=np.float64)
    if lower.size < k:
        lower = np.pad(lower, (0, k - lower.size))
    top = lower[:k]

    if residual_mass == 0.0:
        return float(top[k - 1])

    levels = staircase_levels(top, k)
    # Find the first step j with z_{j-1} < ||r||_1 <= z_j.
    for j in range(1, k):
        if levels[j - 1] < residual_mass <= levels[j]:
            return float(top[k - j - 1] - (levels[j] - residual_mass) / j)
    # Residue exceeds z_{k-1}: the whole staircase is flooded.
    return float(top[0] + (residual_mass - levels[k - 1]) / k)


def kth_upper_bounds_batch(
    lower: np.ndarray,
    residual_masses: np.ndarray,
    k: int,
    *,
    workspace: Optional[BoundsWorkspace] = None,
) -> np.ndarray:
    """Vectorized :func:`kth_upper_bound` across many nodes at once (Eq. 18).

    This is the batched staircase check of the vectorized query engine: one
    call bounds the k-th largest proximity of every scan survivor, replacing
    a per-node Python loop.  The arithmetic (sequential level accumulation,
    step search, pour formula) mirrors the scalar implementation exactly, so
    the returned bounds are bit-identical to calling :func:`kth_upper_bound`
    column by column.

    Parameters
    ----------
    lower:
        ``(K, m)`` array with one node per **column**: the top-``K`` lower
        bounds in descending order (``K >= k``; zero-padded tails are fine).
        Columns are assumed descending — pass index columns, not raw data.
    residual_masses:
        ``(m,)`` vector of effective residual masses ``||r_u||_1``.
    k:
        The query depth.
    workspace:
        Optional :class:`BoundsWorkspace` supplying the ``(k, m)`` scratch
        planes; without one every call allocates them afresh.  The computed
        bounds are bit-identical in both modes.

    Returns
    -------
    numpy.ndarray
        ``(m,)`` vector of upper bounds; entries with zero residual mass equal
        the k-th lower bound (the exact value).
    """
    k = check_positive_int(k, "k")
    lower = np.asarray(lower)
    masses = np.asarray(residual_masses, dtype=np.float64)
    if lower.ndim != 2 or lower.shape[0] < k:
        raise InvalidParameterError(
            f"need a (K >= {k}, m) column matrix of lower bounds, got shape {lower.shape}"
        )
    m = lower.shape[1]
    if masses.shape != (m,):
        raise InvalidParameterError(
            f"expected {m} residual masses, got shape {masses.shape}"
        )
    if m == 0:
        return np.zeros(0, dtype=np.float64)
    if masses.min() < 0.0:
        raise InvalidParameterError("residual masses must be non-negative")

    # z_j = z_{j-1} + j * (p̂(k-j) - p̂(k-j+1)); cumsum accumulates sequentially,
    # reproducing the scalar staircase_levels recurrence term for term.
    if workspace is None:
        top = np.asarray(lower, dtype=np.float64)[:k, :]
        steps = top[:-1, :] - top[1:, :]  # steps[i] = p̂(i+1) - p̂(i+2)
        j_weights = np.arange(1, k, dtype=np.int64)[:, None]
        levels = np.vstack(
            [np.zeros((1, m)), np.cumsum(j_weights * steps[::-1, :], axis=0)]
        )
        compare = levels < masses[None, :]
        cols = np.arange(m)
    else:
        top = workspace.take("top", (k, m))
        top[...] = lower[:k, :]
        levels = workspace.take("levels", (k, m))
        levels[0, :] = 0.0
        if k > 1:
            steps = workspace.take("steps", (k - 1, m))
            np.subtract(top[:-1, :], top[1:, :], out=steps)
            j_weights = workspace.arange("j_weights", k)[1:, None]
            weighted = workspace.take("weighted", (k - 1, m))
            np.multiply(j_weights, steps[::-1, :], out=weighted)
            np.cumsum(weighted, axis=0, out=levels[1:, :])
        compare = workspace.take("compare", (k, m), dtype=bool)
        np.less(levels, masses[None, :], out=compare)
        cols = workspace.arange("cols", m)
    # Smallest j with z_{j-1} < ||r||_1 <= z_j; j == k means the staircase floods.
    j = np.sum(compare, axis=0)

    out = np.empty(m, dtype=np.float64)
    exact = masses == 0.0
    flooded = ~exact & (j >= k)
    partial = ~exact & ~flooded
    out[exact] = top[k - 1, exact]
    if np.any(partial):
        pj = j[partial]
        pcols = cols[partial]
        out[partial] = top[k - pj - 1, pcols] - (levels[pj, pcols] - masses[partial]) / pj
    if np.any(flooded):
        out[flooded] = top[0, flooded] + (masses[flooded] - levels[k - 1, flooded]) / k
    return out


def is_valid_upper_bound(upper: float, exact_kth: float, *, atol: float = 1e-9) -> bool:
    """Check ``upper >= exact_kth`` within tolerance (used by tests)."""
    return upper >= exact_kth - atol
