"""Analytical estimates from the paper: Theorem 1 and Proposition 3.

Both results assume the entries of a hub proximity vector follow a power law,
``p̂_h(i) ∝ i^(-beta)`` with ``0 < beta < 1`` (the paper uses ``beta = 0.76``
following Bahmani et al.).  Under that assumption:

* **Theorem 1** — after zeroing entries below the rounding threshold
  ``omega``, the index needs
  ``O(K n + (1-beta)^(1/beta) |H| omega^(-1/beta) n^(1 - 1/beta))`` space.
* **Proposition 3** — the L1 error that rounding introduces into any
  approximate proximity vector is at most
  ``1 - ((1-beta) / (omega n))^(1/beta - 1)``.

These are used by the Table 2 benchmark ("predicted space" row) and exposed
for users sizing an index before building it.
"""

from __future__ import annotations

from .._validation import (
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
)
from ..exceptions import InvalidParameterError

#: Power-law exponent of proximity vectors reported by Bahmani et al. and
#: adopted by the paper for the Table 2 predictions.
DEFAULT_BETA = 0.76

#: Bytes per stored entry (8-byte value + 8-byte index), matching the
#: accounting in :meth:`repro.core.index.ReverseTopKIndex.storage_bytes`.
_ENTRY_BYTES = 16
_VALUE_BYTES = 8


def hub_entries_above_threshold(
    n_nodes: int, rounding_threshold: float, *, beta: float = DEFAULT_BETA
) -> float:
    """Estimated number of entries of one hub vector that survive rounding.

    This is the ``l*`` bound inside the proof of Theorem 1:
    ``l* <= (1-beta)^(1/beta) * omega^(-1/beta) * n^(1 - 1/beta)``.
    """
    n = check_positive_int(n_nodes, "n_nodes")
    omega = check_positive_float(rounding_threshold, "rounding_threshold")
    beta = _check_beta(beta)
    estimate = ((1.0 - beta) ** (1.0 / beta)) * (omega ** (-1.0 / beta)) * (
        n ** (1.0 - 1.0 / beta)
    )
    return float(min(estimate, n))


def predicted_index_entries(
    n_nodes: int,
    capacity: int,
    n_hubs: int,
    rounding_threshold: float,
    *,
    beta: float = DEFAULT_BETA,
) -> float:
    """Theorem 1: estimated number of stored values in the whole index."""
    n = check_positive_int(n_nodes, "n_nodes")
    capacity = check_positive_int(capacity, "capacity")
    n_hubs = check_non_negative_int(n_hubs, "n_hubs")
    per_hub = hub_entries_above_threshold(n, rounding_threshold, beta=beta) if n_hubs else 0.0
    return float(capacity * n + n_hubs * per_hub)


def predicted_index_bytes(
    n_nodes: int,
    capacity: int,
    n_hubs: int,
    rounding_threshold: float,
    *,
    beta: float = DEFAULT_BETA,
) -> float:
    """Theorem 1 expressed in bytes, comparable to ``ReverseTopKIndex.total_bytes``.

    The top-K lower-bound matrix stores plain values (8 bytes each); hub
    columns store value+index pairs (16 bytes each).
    """
    n = check_positive_int(n_nodes, "n_nodes")
    capacity = check_positive_int(capacity, "capacity")
    n_hubs = check_non_negative_int(n_hubs, "n_hubs")
    per_hub = hub_entries_above_threshold(n, rounding_threshold, beta=beta) if n_hubs else 0.0
    return float(capacity * n * _VALUE_BYTES + n_hubs * per_hub * _ENTRY_BYTES)


def rounding_error_bound(
    n_nodes: int, rounding_threshold: float, *, beta: float = DEFAULT_BETA
) -> float:
    """Proposition 3: L1 error bound of rounding on an approximate proximity vector.

    ``||p^t_u - p̄^t_u||_1 <= 1 - ((1-beta) / (omega n))^(1/beta - 1)``,
    clamped to ``[0, 1]`` (the bound is vacuous once it reaches 1).
    """
    n = check_positive_int(n_nodes, "n_nodes")
    omega = check_positive_float(rounding_threshold, "rounding_threshold")
    beta = _check_beta(beta)
    ratio = (1.0 - beta) / (omega * n)
    bound = 1.0 - ratio ** (1.0 / beta - 1.0)
    return float(min(max(bound, 0.0), 1.0))


def _check_beta(beta: float) -> float:
    beta = float(beta)
    if not 0.0 < beta < 1.0:
        raise InvalidParameterError(f"beta must be in (0, 1), got {beta}")
    return beta
