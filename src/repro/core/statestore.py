"""Columnar struct-of-arrays node-state storage for million-node builds.

The monolithic :class:`~repro.core.index.ReverseTopKIndex` and the sharded
layout both describe per-node BCA state as :class:`NodeState` objects — three
``{node: value}`` dicts plus a small lower-bound vector.  At a few thousand
nodes that is convenient; at web-Google scale (~875k nodes) the Python object
overhead alone (dict headers, boxed floats, per-object GC tracking) costs
gigabytes and minutes of allocator time before any ink moves.

This module keeps the *flattened* representation those objects already
round-trip through (:data:`STATE_ARRAY_NAMES`, the exact
``_states_to_arrays`` / per-shard ``.npy`` layout) as the **primary** storage:

``ColumnarStateStore``
    Struct-of-arrays state for a contiguous node range.  ``NodeState`` is
    demoted to a lazy per-node *view* materialised on demand (and pinned in a
    write overlay, preserving the mutate-in-place + ``sync_state`` contract),
    so the query engine's refinement path is unchanged while bulk paths touch
    only arrays.  Every materialisation increments a module-level counter —
    the large-graph benchmark asserts the build hot path performs **zero**.

``StateArraysSink``
    The kernel-side collector: converged block columns spill straight into
    flat ``(counts, keys, values)`` segments (plus bounds / iteration rows)
    without constructing a single ``NodeState``.

``assemble_store``
    Merges collected segments with vectorised hub and untargeted rows into a
    finished store, ordered by node id.

Bit-identity: the flat segments are produced by the same
``np.nonzero``-gather the dict spill path uses, so keys appear in the same
(ascending) order and values are the same floats — a store round-trips
through ``to_arrays`` to byte-identical files, and through ``state()`` to
dict-identical :class:`NodeState` views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidParameterError
from .hubs import HubSet
from .index import (
    NodeState,
    _states_to_arrays,
    effective_state_residual_mass,
)

#: The canonical flattened state layout (one array per name).  This is
#: exactly the layout :func:`repro.core.index._states_to_arrays` produces,
#: the monolithic ``.npz`` archive stores, and the sharded on-disk layout
#: persists as per-shard ``.npy`` files.
STATE_ARRAY_NAMES = (
    "residual_indptr",
    "residual_keys",
    "residual_values",
    "retained_indptr",
    "retained_keys",
    "retained_values",
    "hub_ink_indptr",
    "hub_ink_keys",
    "hub_ink_values",
    "lower_bounds",
    "iterations",
    "is_hub",
)

#: The three sparse per-node planes.
_PLANES = ("residual", "retained", "hub_ink")

#: Module-level count of NodeState materialisations from columnar storage.
#: The large-graph bench (and the statestore tests) reset this before a
#: build and assert it stayed at zero — the acceptance check that the build
#: hot path allocates no per-node Python state objects.
_MATERIALIZATIONS = 0


def materialization_count() -> int:
    """Number of ``NodeState`` views materialised from columnar storage."""
    return _MATERIALIZATIONS


def reset_materialization_count() -> None:
    """Reset the materialisation counter (benchmarks / tests)."""
    global _MATERIALIZATIONS
    _MATERIALIZATIONS = 0


def count_materialization(n: int = 1) -> None:
    """Record ``n`` NodeState materialisations (internal hook)."""
    global _MATERIALIZATIONS
    _MATERIALIZATIONS += n


class ColumnarStateStore:
    """Struct-of-arrays storage for the per-node states of a node range.

    The store owns one array per :data:`STATE_ARRAY_NAMES` entry covering
    ``n`` nodes (local ids ``0 .. n-1``).  Reads materialise lazy
    :class:`NodeState` views; writes land in an overlay dict consulted before
    the arrays, so the arrays themselves stay immutable until
    :meth:`to_arrays` merges the overlay back.
    """

    def __init__(self, arrays: Dict[str, np.ndarray], capacity: int) -> None:
        missing = [name for name in STATE_ARRAY_NAMES if name not in arrays]
        if missing:
            raise InvalidParameterError(
                f"columnar state store is missing arrays: {missing}"
            )
        self.capacity = int(capacity)
        self.arrays: Dict[str, np.ndarray] = {
            name: arrays[name] for name in STATE_ARRAY_NAMES
        }
        n = int(self.arrays["is_hub"].shape[0])
        for plane in _PLANES:
            if self.arrays[f"{plane}_indptr"].shape[0] != n + 1:
                raise InvalidParameterError(
                    f"{plane}_indptr must have {n + 1} entries"
                )
        if self.arrays["lower_bounds"].shape != (n, self.capacity):
            raise InvalidParameterError(
                f"lower_bounds must have shape {(n, self.capacity)}, got "
                f"{self.arrays['lower_bounds'].shape}"
            )
        self._n = n
        self._overlay: Dict[int, NodeState] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_states(
        cls, states: Sequence[NodeState], capacity: int
    ) -> "ColumnarStateStore":
        """Flatten a list of states into a store (object → columnar bridge)."""
        return cls(_states_to_arrays(list(states), int(capacity)), capacity)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    @property
    def n_states(self) -> int:
        """Number of nodes covered by this store."""
        return self._n

    @property
    def overlay(self) -> Dict[int, NodeState]:
        """Live write overlay: ``{local id: pinned NodeState}``."""
        return self._overlay

    def state(self, node: int) -> NodeState:
        """The mutable state view of ``node``, pinned in the overlay.

        The monolithic index contract is that repeated ``state()`` calls
        return one identity (callers mutate in place, then ``sync_state``);
        pinning the first materialisation preserves that.
        """
        pinned = self._overlay.get(node)
        if pinned is None:
            pinned = self._materialize(node)
            self._overlay[node] = pinned
        return pinned

    def peek_state(self, node: int) -> NodeState:
        """Overlay-aware read without pinning (bulk by-value consumers)."""
        pinned = self._overlay.get(node)
        return pinned if pinned is not None else self._materialize(node)

    def set_state(self, node: int, state: NodeState) -> None:
        """Replace the state of ``node`` (overlay write)."""
        self._overlay[node] = state

    def iter_states(self) -> Iterator[NodeState]:
        """All states in node order (overlay-aware, non-pinning)."""
        for node in range(self._n):
            yield self.peek_state(node)

    def _materialize(self, node: int) -> NodeState:
        count_materialization()
        arrays = self.arrays
        parts: Dict[str, Dict[int, float]] = {}
        for name in _PLANES:
            indptr = arrays[f"{name}_indptr"]
            lo, hi = int(indptr[node]), int(indptr[node + 1])
            keys = np.asarray(arrays[f"{name}_keys"][lo:hi]).tolist()
            values = np.asarray(arrays[f"{name}_values"][lo:hi]).tolist()
            parts[name] = dict(zip(keys, values))
        return NodeState(
            residual=parts["residual"],
            retained=parts["retained"],
            hub_ink=parts["hub_ink"],
            lower_bounds=np.array(arrays["lower_bounds"][node], dtype=np.float64),
            iterations=int(arrays["iterations"][node]),
            is_hub=bool(arrays["is_hub"][node]),
        )

    # ------------------------------------------------------------------ #
    # bulk columnar reads (the build / persist hot paths)
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The flattened state arrays, with any overlay writes merged in.

        With an empty overlay (the build hot path) this is a dict copy —
        the arrays themselves pass through untouched, so persisting a fresh
        store never re-serialises per-node objects.
        """
        if not self._overlay:
            return dict(self.arrays)
        merged: Dict[str, np.ndarray] = {}
        for plane in _PLANES:
            merged.update(self._merge_plane(plane))
        lower = np.array(self.arrays["lower_bounds"], dtype=np.float64, copy=True)
        iterations = np.array(self.arrays["iterations"], dtype=np.int64, copy=True)
        is_hub = np.array(self.arrays["is_hub"], dtype=bool, copy=True)
        for node, state in self._overlay.items():
            count = min(self.capacity, state.lower_bounds.size)
            lower[node, :count] = state.lower_bounds[:count]
            lower[node, count:] = 0.0
            iterations[node] = int(state.iterations)
            is_hub[node] = bool(state.is_hub)
        merged["lower_bounds"] = lower
        merged["iterations"] = iterations
        merged["is_hub"] = is_hub
        return merged

    def _merge_plane(self, plane: str) -> Dict[str, np.ndarray]:
        """Splice overlaid rows into one sparse plane's flat arrays."""
        indptr = np.asarray(self.arrays[f"{plane}_indptr"], dtype=np.int64)
        keys = self.arrays[f"{plane}_keys"]
        values = self.arrays[f"{plane}_values"]
        counts = np.diff(indptr)
        for node, state in self._overlay.items():
            counts[node] = len(getattr(state, plane))
        new_indptr = np.concatenate([[0], np.cumsum(counts)])
        new_keys = np.empty(int(new_indptr[-1]), dtype=np.int64)
        new_values = np.empty(int(new_indptr[-1]), dtype=np.float64)
        for node in range(self._n):
            dst_lo, dst_hi = int(new_indptr[node]), int(new_indptr[node + 1])
            state = self._overlay.get(node)
            if state is None:
                src_lo, src_hi = int(indptr[node]), int(indptr[node + 1])
                new_keys[dst_lo:dst_hi] = keys[src_lo:src_hi]
                new_values[dst_lo:dst_hi] = values[src_lo:src_hi]
            else:
                entries = getattr(state, plane)
                new_keys[dst_lo:dst_hi] = np.fromiter(
                    entries.keys(), dtype=np.int64, count=len(entries)
                )
                new_values[dst_lo:dst_hi] = np.fromiter(
                    entries.values(), dtype=np.float64, count=len(entries)
                )
        return {
            f"{plane}_indptr": new_indptr,
            f"{plane}_keys": new_keys,
            f"{plane}_values": new_values,
        }

    def lower_matrix(self) -> np.ndarray:
        """Fresh dense ``(K, n)`` lower-bound matrix (overlay-aware copy)."""
        lower = np.ascontiguousarray(self.arrays["lower_bounds"].T, dtype=np.float64)
        for node, state in self._overlay.items():
            count = min(self.capacity, state.lower_bounds.size)
            lower[:count, node] = state.lower_bounds[:count]
            lower[count:, node] = 0.0
        return lower

    def column_masses(self, hubs: HubSet, hub_deficit: np.ndarray) -> np.ndarray:
        """Per-node effective residual masses, bitwise-faithful.

        Reproduces :func:`~repro.core.index.effective_state_residual_mass`
        exactly: a Python sequential ``sum`` over the residual values in
        storage order, then the hub-deficit corrections in hub-ink storage
        order.  (NumPy's pairwise reductions are *not* bitwise equal to a
        sequential sum, so this deliberately stays a per-row Python loop —
        small slices off large arrays, no large intermediate.)
        """
        hub_deficit = np.asarray(hub_deficit, dtype=np.float64)
        out = np.empty(self._n, dtype=np.float64)
        r_indptr = self.arrays["residual_indptr"]
        r_values = self.arrays["residual_values"]
        h_indptr = self.arrays["hub_ink_indptr"]
        h_keys = self.arrays["hub_ink_keys"]
        h_values = self.arrays["hub_ink_values"]
        correct = bool(hub_deficit.size)
        overlay = self._overlay
        for node in range(self._n):
            state = overlay.get(node)
            if state is not None:
                out[node] = effective_state_residual_mass(state, hubs, hub_deficit)
                continue
            lo, hi = int(r_indptr[node]), int(r_indptr[node + 1])
            mass = float(sum(r_values[lo:hi].tolist()))
            if correct:
                hlo, hhi = int(h_indptr[node]), int(h_indptr[node + 1])
                if hhi > hlo:
                    for key, ink in zip(
                        h_keys[hlo:hhi].tolist(), h_values[hlo:hhi].tolist()
                    ):
                        mass += ink * float(hub_deficit[hubs.position(int(key))])
            out[node] = mass
        return out

    def is_exact_mask(self) -> np.ndarray:
        """Boolean exactness mask: hub, or no residual entries (overlay-aware)."""
        counts = np.diff(self.arrays["residual_indptr"])
        mask = np.asarray(self.arrays["is_hub"], dtype=bool) | (counts == 0)
        for node, state in self._overlay.items():
            mask[node] = state.is_exact
        return mask

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def stored_entries(self) -> int:
        """Total sparse entries across planes (overlay-aware, O(overlay))."""
        total = sum(
            int(self.arrays[f"{plane}_indptr"][-1]) for plane in _PLANES
        )
        for node, state in self._overlay.items():
            on_arrays = sum(
                int(
                    self.arrays[f"{plane}_indptr"][node + 1]
                    - self.arrays[f"{plane}_indptr"][node]
                )
                for plane in _PLANES
            )
            total += state.stored_entries() - on_arrays
        return total

    def nbytes(self) -> int:
        """Bytes held by the backing arrays (overlay states excluded)."""
        return int(sum(np.asarray(a).nbytes for a in self.arrays.values()))

    def __repr__(self) -> str:
        return (
            f"ColumnarStateStore(n={self._n}, K={self.capacity}, "
            f"entries={self.stored_entries()}, overlay={len(self._overlay)})"
        )


# ----------------------------------------------------------------------- #
# kernel-side collection
# ----------------------------------------------------------------------- #
@dataclass
class CollectedStates:
    """Flat converged-state segments collected by a :class:`StateArraysSink`.

    ``sources`` are global node ids; each plane is ``(counts, keys, values)``
    aligned with ``sources``; ``bounds`` holds one top-K row per source.
    Plain arrays only — cheap to pickle across the process-pool boundary.
    """

    sources: np.ndarray
    iterations: np.ndarray
    bounds: np.ndarray
    planes: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]]

    @property
    def n_sources(self) -> int:
        return int(self.sources.size)


def _empty_collected(capacity: int) -> CollectedStates:
    return CollectedStates(
        sources=np.zeros(0, dtype=np.int64),
        iterations=np.zeros(0, dtype=np.int64),
        bounds=np.zeros((0, int(capacity)), dtype=np.float64),
        planes={
            plane: (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
            )
            for plane in _PLANES
        },
    )


class StateArraysSink:
    """Collects converged kernel columns as flat arrays — no NodeState objects.

    The propagation kernel's spill path hands each finished batch over as
    per-plane ``(counts, keys, values)`` triples plus bounds and iteration
    rows; :meth:`collected` concatenates the batches once at the end.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._sources: List[np.ndarray] = []
        self._iterations: List[np.ndarray] = []
        self._bounds: List[np.ndarray] = []
        self._plane_parts: Dict[str, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {
            plane: [] for plane in _PLANES
        }
        self.n_collected = 0

    def absorb(
        self,
        *,
        sources: np.ndarray,
        iterations: np.ndarray,
        bounds: Optional[np.ndarray],
        residual: Tuple[np.ndarray, np.ndarray, np.ndarray],
        retained: Tuple[np.ndarray, np.ndarray, np.ndarray],
        hub_ink: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """Absorb one converged batch (``bounds`` rows are ``(m, K)``)."""
        sources = np.asarray(sources, dtype=np.int64)
        self._sources.append(sources)
        self._iterations.append(np.asarray(iterations, dtype=np.int64))
        if bounds is None:
            bounds = np.zeros((sources.size, self.capacity), dtype=np.float64)
        self._bounds.append(np.asarray(bounds, dtype=np.float64))
        for plane, triple in (
            ("residual", residual),
            ("retained", retained),
            ("hub_ink", hub_ink),
        ):
            counts, keys, values = triple
            self._plane_parts[plane].append(
                (
                    np.asarray(counts, dtype=np.int64),
                    np.asarray(keys, dtype=np.int64),
                    np.asarray(values, dtype=np.float64),
                )
            )
        self.n_collected += int(sources.size)

    def collected(self) -> CollectedStates:
        """Concatenate every absorbed batch into one :class:`CollectedStates`."""
        if not self._sources:
            return _empty_collected(self.capacity)
        planes = {}
        for plane, parts in self._plane_parts.items():
            planes[plane] = (
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
                np.concatenate([p[2] for p in parts]),
            )
        return CollectedStates(
            sources=np.concatenate(self._sources),
            iterations=np.concatenate(self._iterations),
            bounds=np.vstack(self._bounds),
            planes=planes,
        )


# ----------------------------------------------------------------------- #
# assembly
# ----------------------------------------------------------------------- #
def _segment_gather(
    dest_indptr: np.ndarray,
    dest_rows: np.ndarray,
    src_starts: np.ndarray,
    src_counts: np.ndarray,
    src_keys: np.ndarray,
    src_values: np.ndarray,
    out_keys: np.ndarray,
    out_values: np.ndarray,
) -> None:
    """Copy variable-length source segments into their destination rows."""
    total = int(src_counts.sum())
    if not total:
        return
    # Within-segment offsets 0..count-1, repeated per segment.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate([[0], np.cumsum(src_counts)[:-1]]), src_counts
    )
    gather_src = np.repeat(src_starts, src_counts) + offsets
    gather_dst = np.repeat(dest_indptr[:-1][dest_rows], src_counts) + offsets
    out_keys[gather_dst] = src_keys[gather_src]
    out_values[gather_dst] = src_values[gather_src]


def assemble_store(
    start: int,
    stop: int,
    capacity: int,
    collected: Sequence[CollectedStates],
    hub_mask: np.ndarray,
    hub_top_k: Dict[int, np.ndarray],
) -> ColumnarStateStore:
    """Merge collected BCA segments plus hub / untargeted rows into a store.

    ``collected`` may come from several sinks (parallel shard workers) in any
    order; rows are placed by global source id.  Nodes in ``[start, stop)``
    that are neither collected nor hubs get the untargeted initial state
    (one unit of residue at themselves, all-zero bounds) — exactly what
    ``initial_node_state`` plus a trivial materialisation produces.
    """
    start, stop, capacity = int(start), int(stop), int(capacity)
    m = stop - start
    hub_local = np.asarray(hub_mask[start:stop], dtype=bool)

    parts = [c for c in collected if c.n_sources]
    if parts:
        sources = np.concatenate([c.sources for c in parts])
        order = np.argsort(sources, kind="stable")
        local = sources[order] - start
        if local.size and (local.min() < 0 or local.max() >= m):
            raise InvalidParameterError(
                f"collected sources fall outside the range [{start}, {stop})"
            )
        iterations_in = np.concatenate([c.iterations for c in parts])[order]
        bounds_in = np.vstack([c.bounds for c in parts])[order]
    else:
        sources = np.zeros(0, dtype=np.int64)
        order = np.zeros(0, dtype=np.int64)
        local = np.zeros(0, dtype=np.int64)
        iterations_in = np.zeros(0, dtype=np.int64)
        bounds_in = np.zeros((0, capacity), dtype=np.float64)

    built = np.zeros(m, dtype=bool)
    built[local] = True
    if np.any(built & hub_local):
        raise InvalidParameterError("collected sources include hub nodes")
    untargeted = ~built & ~hub_local
    hub_rows = np.flatnonzero(hub_local)
    untargeted_rows = np.flatnonzero(untargeted)

    arrays: Dict[str, np.ndarray] = {}
    for plane in _PLANES:
        if parts:
            plane_counts = np.concatenate([c.planes[plane][0] for c in parts])
            plane_keys = np.concatenate([c.planes[plane][1] for c in parts])
            plane_values = np.concatenate([c.planes[plane][2] for c in parts])
            seg_indptr = np.concatenate([[0], np.cumsum(plane_counts)])
            sel_counts = plane_counts[order]
            sel_starts = seg_indptr[:-1][order]
        else:
            plane_keys = np.zeros(0, dtype=np.int64)
            plane_values = np.zeros(0, dtype=np.float64)
            sel_counts = np.zeros(0, dtype=np.int64)
            sel_starts = np.zeros(0, dtype=np.int64)

        counts = np.zeros(m, dtype=np.int64)
        counts[local] = sel_counts
        # Singleton rows: hubs carry {node: 1.0} hub ink, untargeted nodes
        # carry {node: 1.0} residue; both have empty other planes.
        if plane == "hub_ink":
            counts[hub_rows] = 1
        elif plane == "residual":
            counts[untargeted_rows] = 1
        indptr = np.concatenate([[0], np.cumsum(counts)])
        keys = np.empty(int(indptr[-1]), dtype=np.int64)
        values = np.empty(int(indptr[-1]), dtype=np.float64)
        _segment_gather(
            indptr, local, sel_starts, sel_counts, plane_keys, plane_values,
            keys, values,
        )
        singleton = hub_rows if plane == "hub_ink" else (
            untargeted_rows if plane == "residual" else None
        )
        if singleton is not None and singleton.size:
            slots = indptr[:-1][singleton]
            keys[slots] = singleton + start
            values[slots] = 1.0
        arrays[f"{plane}_indptr"] = indptr
        arrays[f"{plane}_keys"] = keys
        arrays[f"{plane}_values"] = values

    lower = np.zeros((m, capacity), dtype=np.float64)
    if local.size:
        lower[local] = bounds_in[:, :capacity]
    for row in hub_rows.tolist():
        hub_bounds = hub_top_k[int(row + start)]
        count = min(capacity, hub_bounds.shape[0])
        lower[row, :count] = hub_bounds[:count]
    arrays["lower_bounds"] = lower

    iterations = np.zeros(m, dtype=np.int64)
    iterations[local] = iterations_in
    arrays["iterations"] = iterations
    arrays["is_hub"] = hub_local.copy()
    return ColumnarStateStore(arrays, capacity)
