"""Algorithm 2 — Power Method for Proximity to Node (PMPN).

Given the query node ``q``, the online algorithm needs the **exact**
proximities from *every* node to ``q``, i.e. the row ``p_{q,*}`` of the
proximity matrix.  Theorem 2 of the paper proves that the iteration

    x_{i+1} = (1 - alpha) * A^T @ x_i + alpha * e_q

converges (from any start vector) to that row, with convergence rate
``1 - alpha`` and therefore at most ``log(eps/alpha) / log(1-alpha)``
iterations for tolerance ``eps`` — the same cost as computing a single
*column* of ``P``.

This module is deliberately self-contained so it can be reused outside the
reverse top-k engine (e.g. to compute exact PageRank contributions for
SpamRank-style analyses, as the paper suggests).
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Optional

import numpy as np
import scipy.sparse as sp

from .._validation import check_node_index, check_positive_float, check_probability
from ..exceptions import ConvergenceError
from ..rwr.power_method import expected_iterations


@dataclass(frozen=True)
class PMPNResult:
    """Result of a PMPN run.

    Attributes
    ----------
    proximities:
        ``proximities[u]`` is the exact proximity from node ``u`` to the query
        (entry ``P[q, u]`` of the proximity matrix).
    iterations:
        Iterations performed until the L1 change dropped below tolerance.
    residual:
        Final L1 change between successive iterates.
    converged:
        Whether the tolerance was reached within the iteration budget.
    """

    proximities: np.ndarray
    iterations: int
    residual: float
    converged: bool


def proximity_to_node(
    transition: sp.spmatrix,
    query: int,
    *,
    alpha: float = 0.15,
    tolerance: float = 1e-10,
    max_iterations: Optional[int] = None,
    initial: Optional[np.ndarray] = None,
    raise_on_failure: bool = True,
    transposed: Optional[sp.spmatrix] = None,
) -> PMPNResult:
    """Compute the exact proximities from all nodes to ``query`` (Algorithm 2).

    Parameters
    ----------
    transition:
        Column-stochastic transition matrix ``A`` of the graph.
    query:
        Target node ``q``.
    alpha:
        Restart probability.
    tolerance:
        Convergence threshold ``eps`` on the L1 difference of iterates.
    max_iterations:
        Hard cap; defaults to twice the Theorem 2(c) bound.
    initial:
        Optional start vector ``x_0`` (Theorem 2 guarantees convergence from
        any start; the default is ``e_q``).
    raise_on_failure:
        Raise :class:`ConvergenceError` if the cap is reached (default), or
        return the non-converged result when ``False``.
    transposed:
        Optional precomputed ``A^T`` in CSR form.  The transpose costs
        ``O(nnz)`` per call; workloads evaluating many queries against the
        same graph (the engine's ``query_many`` path) pass it once instead.
    """
    alpha = check_probability(alpha, "alpha")
    tolerance = check_positive_float(tolerance, "tolerance")
    n = transition.shape[0]
    query = check_node_index(query, n, "query")
    if max_iterations is None:
        max_iterations = 2 * expected_iterations(alpha, tolerance) + 10

    if transposed is None:
        transposed = transition.T.tocsr()
    restart = np.zeros(n, dtype=np.float64)
    restart[query] = alpha

    if initial is None:
        current = np.zeros(n, dtype=np.float64)
        current[query] = 1.0
    else:
        current = np.asarray(initial, dtype=np.float64).ravel().copy()
        if current.size != n:
            raise ValueError(f"initial vector has length {current.size}, expected {n}")

    residual = math.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        nxt = (1.0 - alpha) * (transposed @ current) + restart
        residual = float(np.abs(nxt - current).sum())
        current = nxt
        if residual < tolerance:
            return PMPNResult(current, iterations, residual, True)
    if raise_on_failure:
        raise ConvergenceError(
            f"PMPN did not converge in {max_iterations} iterations "
            f"(residual {residual:.3e} > tolerance {tolerance:.3e})",
            iterations,
            residual,
        )
    return PMPNResult(current, iterations, residual, False)


def pmpn_iteration_bound(alpha: float, tolerance: float) -> int:
    """Theorem 2(c): iterations needed so that the L1 change is below tolerance."""
    return expected_iterations(alpha, tolerance)
