"""Parameter dataclasses with the paper's default settings (Section 5.2).

The defaults mirror the experimental setup of the paper:

* restart probability ``alpha = 0.15``;
* index capacity ``K = 200`` (scaled down by callers for tiny graphs);
* propagation threshold ``eta = 1e-4``;
* residue threshold ``delta = 0.1``;
* hub rounding threshold ``omega = 1e-6``;
* convergence tolerance ``epsilon = 1e-10``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .._validation import (
    check_non_negative_float,
    check_positive_float,
    check_positive_int,
    check_probability,
)

#: Accepted ink-propagation backends (see :mod:`repro.core.propagation`):
#: the dict-based per-neighbour reference loop, the blocked multi-source
#: dense engine, the optional JIT-compiled variant of the latter, and the
#: sparse-plane blocked engine whose memory scales with the residue frontier
#: instead of ``n * block_size`` (the million-node build backend).
#: ``"numba"`` is accepted here unconditionally (parameters must stay
#: loadable on machines without the extra); availability is checked when a
#: kernel is actually constructed (:func:`repro.core.backends.require_backend`).
PROPAGATION_BACKENDS = ("scalar", "vectorized", "numba", "sparse")

#: Precisions accepted for the scan phase's lower-bound reads: ``"float64"``
#: scans the authoritative matrix directly; ``"float32"`` screens with a
#: half-width copy plus a conservative error envelope and re-checks only
#: near-threshold nodes against the float64 truth (bit-identical answers).
SCAN_PRECISIONS = ("float64", "float32")

#: Default multi-source block width of the vectorized backend.  The working
#: set is roughly ``41 * block_size * n_nodes`` bytes: five float64 planes
#: (residual, retained, amounts, shares and the per-iteration arrivals
#: product) plus one bool active mask.  Shrink it for very large graphs.
DEFAULT_BLOCK_SIZE = 256


@dataclass(frozen=True)
class IndexParams:
    """Parameters controlling offline index construction (Algorithm 1).

    Attributes
    ----------
    alpha:
        RWR restart probability.
    capacity:
        ``K`` — the largest ``k`` any future query may use; the index stores
        the top-``K`` lower bounds per node.
    propagation_threshold:
        ``eta`` — only nodes holding at least this much residue ink propagate
        in a batched BCA iteration.
    residue_threshold:
        ``delta`` — BCA from a node stops once its total residue drops to this.
    rounding_threshold:
        ``omega`` — hub proximity entries below this are zeroed (the space
        compression of §4.1.3).  ``0`` disables rounding.
    hub_budget:
        ``B`` — number of top in-degree and top out-degree nodes whose union
        forms the hub set.  ``0`` disables hubs entirely.
    tolerance:
        ``epsilon`` — convergence tolerance for the exact hub proximity
        vectors (and for PMPN at query time).
    max_index_iterations:
        Safety cap on batched BCA iterations per node.
    backend:
        Ink-propagation backend (:data:`PROPAGATION_BACKENDS`):
        ``"vectorized"`` (default) runs blocked multi-source BCA over dense
        arrays; ``"scalar"`` is the dict-based reference loop, bit-identical
        to the seed implementation; ``"numba"`` JIT-compiles the blocked
        engine's inner iteration (requires the optional ``fast`` extra —
        kernel construction fails with ``ConfigurationError`` without it);
        ``"sparse"`` keeps the block state in sparse CSC matrices so memory
        scales with the live residue frontier — the backend for
        million-node builds, where the dense planes would not fit.
    block_size:
        ``B`` — number of source nodes the vectorized backend advances
        together.  Larger blocks amortize the per-iteration sparse product
        over more sources at the cost of ``O(block_size * n)`` memory
        (roughly ``41 * block_size * n`` bytes, see
        :data:`DEFAULT_BLOCK_SIZE`).  Per-source results are bitwise
        independent of the block size, so it never participates in snapshot
        content keys.
    """

    alpha: float = 0.15
    capacity: int = 200
    propagation_threshold: float = 1e-4
    residue_threshold: float = 0.1
    rounding_threshold: float = 1e-6
    hub_budget: int = 50
    tolerance: float = 1e-10
    max_index_iterations: int = 10_000
    backend: str = "vectorized"
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        check_probability(self.alpha, "alpha")
        check_positive_int(self.capacity, "capacity")
        check_positive_float(self.propagation_threshold, "propagation_threshold")
        check_positive_float(self.residue_threshold, "residue_threshold")
        check_non_negative_float(self.rounding_threshold, "rounding_threshold")
        if self.hub_budget < 0:
            raise ValueError("hub_budget must be non-negative")
        check_positive_float(self.tolerance, "tolerance")
        check_positive_int(self.max_index_iterations, "max_index_iterations")
        if self.backend not in PROPAGATION_BACKENDS:
            raise ValueError(
                f"backend must be one of {PROPAGATION_BACKENDS}, got {self.backend!r}"
            )
        check_positive_int(self.block_size, "block_size")

    def for_graph(self, n_nodes: int) -> "IndexParams":
        """Clamp the capacity and hub budget to the graph size.

        Tiny test graphs cannot hold ``K = 200`` distinct proximities or 50
        hubs; this returns an adjusted copy so the defaults stay usable
        everywhere.
        """
        capacity = min(self.capacity, max(1, n_nodes))
        hub_budget = min(self.hub_budget, max(0, n_nodes // 2))
        if capacity == self.capacity and hub_budget == self.hub_budget:
            return self
        return replace(self, capacity=capacity, hub_budget=hub_budget)


@dataclass(frozen=True)
class QueryParams:
    """Parameters controlling online query evaluation (Algorithm 4).

    Attributes
    ----------
    k:
        The reverse top-k depth; must not exceed the index capacity ``K``.
    update_index:
        Whether refinements performed during the query are written back into
        the index (the "update" series in Figures 5 and 7).
    tolerance:
        PMPN convergence tolerance for the exact proximities to the query.
    max_refinements:
        Cap on refinement iterations per candidate.  A candidate that is still
        undecided after this many batched BCA steps is resolved exactly with
        one (vectorised) power-method run instead — usually cheaper than
        thousands of tiny residue pushes on near-tie candidates, and always
        exact.
    """

    k: int = 10
    update_index: bool = True
    tolerance: float = 1e-10
    max_refinements: int = 64

    def __post_init__(self) -> None:
        check_positive_int(self.k, "k")
        check_positive_float(self.tolerance, "tolerance")
        check_positive_int(self.max_refinements, "max_refinements")
