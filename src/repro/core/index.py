"""The reverse top-k index data structure (Section 4.1).

The index ``I = (P̂, R, W, S, P_H)`` holds, for every node ``u``:

* ``P̂`` — the ``K`` largest entries of the lower-bound proximity vector
  ``p^t_u`` in descending order (the pruning workhorse);
* ``R`` — the residue ink vector ``r^t_u`` (what BCA has not yet distributed);
* ``W`` — the ink retained at non-hub nodes ``w^t_u``;
* ``S`` — the ink accumulated at hub nodes ``s^t_u``;
* ``P_H`` — the (optionally rounded) exact proximity vectors of the hubs.

Per-node sparse state is stored as plain ``{node: value}`` dictionaries, which
keeps the refinement loop simple and allocation-free; ``P_H`` is a CSC matrix
with one column per hub.

Columnar views (vectorized query engine)
----------------------------------------
On top of the per-node states the index maintains three incrementally-updated
columnar arrays, exposed as :attr:`ReverseTopKIndex.columns`:

* ``lower`` — the dense ``(K, n)`` lower-bound matrix ``P̂`` (column ``u`` =
  top-``K`` lower bounds of ``u``, descending, zero-padded);
* ``residual_mass`` — an ``n``-vector of *effective* residual masses, i.e.
  ``||r_u||_1`` plus the hub rounding deficit correction (see below);
* ``is_exact`` — a boolean mask marking nodes whose bounds are exact values.

These views are what Algorithm 4's vectorized scan phase operates on: the
whole-array prune ``p_u(q) < P̂[k-1, u]``, the exact-shortcut acceptance and
the batched staircase upper-bound check all read the columns directly instead
of looping over :class:`NodeState` objects.  The per-node states remain the
refinement-time representation; every write-back through :meth:`set_state` (or
:meth:`sync_state` after an in-place mutation) refreshes the corresponding
column so the views never go stale.

Rounding note (§4.1.3): zeroing hub proximity entries below ``omega`` keeps
``p^t_u`` a valid *lower* bound but silently drops mass that the staircase
*upper* bound of Algorithm 3 would otherwise account for.  To keep the upper
bound sound we record, per hub, the total mass removed by rounding
(``hub_deficit``) and add ``s_u[h] * deficit[h]`` back into the residue mass
used by the bound.  With the paper's default ``omega = 1e-6`` the correction
is negligible, but it makes Proposition 4 hold exactly in all configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import os
from pathlib import Path
import tempfile
from typing import Dict, Iterable, List, Optional, Tuple, Union
import zipfile

import numpy as np
import scipy.sparse as sp

from .._validation import check_node_index, check_positive_int
from ..exceptions import InvalidParameterError, SerializationError
from .config import IndexParams
from .hubs import HubSet

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class ColumnarView:
    """Live columnar views over the index, consumed by the vectorized engine.

    The arrays are the index's working storage, *not* copies: they reflect
    every state write-back immediately and must be treated as read-only by
    callers (mutate node states through :meth:`ReverseTopKIndex.set_state` /
    :meth:`ReverseTopKIndex.sync_state` instead).

    Attributes
    ----------
    lower:
        Dense ``(K, n)`` lower-bound matrix ``P̂``; row ``k-1`` holds the k-th
        lower bound of every node (zero-padded when fewer bounds are known).
    residual_mass:
        ``n``-vector of effective residual masses — ``||r_u||_1`` plus the hub
        rounding-deficit correction used by the staircase upper bound.
    is_exact:
        ``n``-vector boolean mask; ``True`` where the lower bounds are the
        exact proximity values (hubs and fully-drained states).
    """

    lower: np.ndarray
    residual_mass: np.ndarray
    is_exact: np.ndarray

#: Bytes per stored floating-point value / index, used for size accounting.
_VALUE_BYTES = 8
_INDEX_BYTES = 8

#: Process umask, captured once at import: os.umask is process-global and
#: can only be read by setting it, so toggling it per save would race under
#: the concurrent multi-thread saves :meth:`ReverseTopKIndex.save` supports.
_UMASK = os.umask(0)
os.umask(_UMASK)


def effective_state_residual_mass(
    state: "NodeState", hubs: HubSet, hub_deficit: np.ndarray
) -> float:
    """Effective residual mass of a state under a given hub configuration.

    ``||r||_1`` plus the hub rounding-deficit correction (see the module
    docstring).  Shared by the monolithic index and the sharded layout, so
    every columnar ``residual_mass`` entry is computed by exactly one
    definition regardless of where the state lives.
    """
    mass = state.residual_mass
    if state.hub_ink and hub_deficit.size:
        for hub, ink in state.hub_ink.items():
            mass += ink * float(hub_deficit[hubs.position(hub)])
    return mass


@dataclass
class NodeState:
    """Per-node BCA state: the column of ``R``, ``W``, ``S`` and ``P̂`` for one node.

    Attributes
    ----------
    residual:
        ``{node: residue ink}`` — ink waiting to be propagated (non-hub nodes only).
    retained:
        ``{node: retained ink}`` — ink permanently retained at non-hub nodes.
    hub_ink:
        ``{hub node: accumulated ink}`` — ink parked at hubs, to be expanded
        through ``P_H`` when the approximate vector is materialised.
    lower_bounds:
        Descending top-``K`` values of the approximate proximity vector.
    iterations:
        Number of batched BCA iterations applied so far (``t_u``).
    is_hub:
        Hub nodes carry their exact top-``K`` proximities and no residue.
    """

    residual: Dict[int, float] = field(default_factory=dict)
    retained: Dict[int, float] = field(default_factory=dict)
    hub_ink: Dict[int, float] = field(default_factory=dict)
    lower_bounds: np.ndarray = field(default_factory=lambda: np.zeros(0))
    iterations: int = 0
    is_hub: bool = False

    @property
    def residual_mass(self) -> float:
        """Total undistributed ink ``||r^t_u||_1``."""
        return float(sum(self.residual.values()))

    @property
    def is_exact(self) -> bool:
        """True when no residue remains, i.e. the lower bounds are exact values."""
        return self.is_hub or not self.residual

    def kth_lower_bound(self, k: int) -> float:
        """The k-th largest lower bound (``p̂^t_u(k)``); zero when unknown."""
        if k <= 0:
            raise ValueError("k must be positive")
        if k > self.lower_bounds.size:
            return 0.0
        return float(self.lower_bounds[k - 1])

    def copy(self) -> "NodeState":
        """Deep copy used by the no-update query mode."""
        return NodeState(
            residual=dict(self.residual),
            retained=dict(self.retained),
            hub_ink=dict(self.hub_ink),
            lower_bounds=self.lower_bounds.copy(),
            iterations=self.iterations,
            is_hub=self.is_hub,
        )

    def stored_entries(self) -> int:
        """Number of sparse entries stored for this node (for size accounting)."""
        return len(self.residual) + len(self.retained) + len(self.hub_ink)


class ReverseTopKIndex:
    """The complete offline index over all nodes of a graph.

    Instances are produced by :func:`repro.core.lbi.build_index`; they are
    mutable because Algorithm 4 refines node states during query evaluation
    and (optionally) persists the refinement.
    """

    def __init__(
        self,
        params: IndexParams,
        hubs: HubSet,
        hub_matrix: sp.csc_matrix,
        hub_deficit: np.ndarray,
        states,
        *,
        build_seconds: float = 0.0,
    ) -> None:
        self.params = params
        self.hubs = hubs
        self.hub_matrix = hub_matrix.tocsc()
        self.hub_deficit = np.asarray(hub_deficit, dtype=np.float64)
        # ``states`` is either a list of NodeState objects (the historical
        # representation) or a ColumnarStateStore (duck-typed to avoid a
        # circular import) — large builds hand over the columnar store so no
        # per-node Python objects ever exist on the build path.
        if hasattr(states, "peek_state"):
            if int(states.capacity) != int(params.capacity):
                raise ValueError(
                    f"columnar store capacity {states.capacity} does not "
                    f"match index capacity {params.capacity}"
                )
            self._store = states
            self._states = None
        else:
            self._store = None
            self._states = states
        self.build_seconds = float(build_seconds)
        #: Per-phase cost breakdown of the build that produced this index
        #: (a :class:`repro.core.propagation.BuildReport`); ``None`` for
        #: indexes loaded from disk or assembled by hand.
        self.build_report = None
        self._version = 0
        if self.hub_matrix.shape[1] != len(hubs):
            raise ValueError(
                f"hub matrix has {self.hub_matrix.shape[1]} columns but {len(hubs)} hubs"
            )
        if self.hub_deficit.size != len(hubs):
            raise ValueError("hub_deficit length must equal the number of hubs")
        self._lower32: Optional[np.ndarray] = None
        self._columns: Optional[ColumnarView] = self._build_columns()

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of indexed nodes."""
        if self._store is not None:
            return self._store.n_states
        return len(self._states)

    @property
    def store(self):
        """The backing columnar store, or ``None`` for object-backed indexes."""
        return self._store

    @property
    def capacity(self) -> int:
        """The maximum k supported by this index (``K``)."""
        return self.params.capacity

    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped on every state write-back.

        The serving layer keys its result cache on ``(query, k, version)``:
        any refinement persisted through :meth:`set_state` / :meth:`sync_state`
        bumps the counter, so cache entries computed against older index
        state stop matching and age out of the LRU.
        """
        return self._version

    @property
    def columns(self) -> ColumnarView:
        """The live :class:`ColumnarView` over this index (read-only arrays).

        Rebuilt lazily after unpickling (the views are derived state and are
        dropped from the pickle payload).
        """
        if self._columns is None:
            self._columns = self._build_columns()
        return self._columns

    def state(self, node: int) -> NodeState:
        """The mutable :class:`NodeState` of ``node``.

        Callers that mutate the returned state in place must call
        :meth:`sync_state` (or :meth:`set_state`) afterwards so the columnar
        views stay consistent.
        """
        node = check_node_index(node, self.n_nodes)
        if self._store is not None:
            return self._store.state(node)
        return self._states[node]

    def set_state(self, node: int, state: NodeState) -> None:
        """Replace the stored state of ``node`` (used by the update policy)."""
        node = check_node_index(node, self.n_nodes)
        if self._store is not None:
            self._store.set_state(node, state)
        else:
            self._states[node] = state
        self._sync_column(node, state)

    def sync_state(self, node: int) -> None:
        """Refresh the columnar views of ``node`` after an in-place mutation."""
        node = check_node_index(node, self.n_nodes)
        if self._store is not None:
            self._sync_column(node, self._store.state(node))
        else:
            self._sync_column(node, self._states[node])

    def states(self) -> Iterable[Tuple[int, NodeState]]:
        """Iterate over ``(node, state)`` pairs."""
        if self._store is not None:
            return enumerate(self._store.iter_states())
        return enumerate(self._states)

    def replace_contents(
        self,
        *,
        hubs: Optional[HubSet] = None,
        hub_matrix: Optional[sp.spmatrix] = None,
        hub_deficit: Optional[np.ndarray] = None,
        states: Optional[List[NodeState]] = None,
    ) -> None:
        """Swap index components wholesale after dynamic-graph maintenance.

        The dynamic subsystem mutates the index *in place* rather than
        producing a new object, so every holder of a reference (the engine,
        the serving façade, metrics snapshots) keeps observing the same
        index and — crucially — the same monotonic :attr:`version` counter:
        a freshly constructed index would restart at version 0 and collide
        with cache entries keyed under the old generation.

        All given components are validated together (hub matrix width and
        deficit length against the hub count, state count against the node
        count), the columnar views are rebuilt in one pass, and the version
        is bumped exactly once — one maintenance application, one cache
        generation.
        """
        new_hubs = hubs if hubs is not None else self.hubs
        new_matrix = (
            hub_matrix.tocsc() if hub_matrix is not None else self.hub_matrix
        )
        new_deficit = (
            np.asarray(hub_deficit, dtype=np.float64)
            if hub_deficit is not None
            else self.hub_deficit
        )
        if new_matrix.shape[0] != self.n_nodes:
            raise ValueError(
                f"hub matrix has {new_matrix.shape[0]} rows but the index "
                f"covers {self.n_nodes} nodes"
            )
        if new_matrix.shape[1] != len(new_hubs):
            raise ValueError(
                f"hub matrix has {new_matrix.shape[1]} columns but "
                f"{len(new_hubs)} hubs"
            )
        if new_deficit.size != len(new_hubs):
            raise ValueError("hub_deficit length must equal the number of hubs")
        if states is not None and len(states) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} states, got {len(states)}"
            )
        self.hubs = new_hubs
        self.hub_matrix = new_matrix
        self.hub_deficit = new_deficit
        if states is not None:
            # A wholesale state replacement switches the index to object
            # storage: the maintainer hands over plain NodeState lists.
            self._store = None
            self._states = list(states)
        self._version += 1
        self._columns = self._build_columns()

    def apply_updates(
        self,
        states: Dict[int, NodeState],
        *,
        hub_matrix: Optional[sp.spmatrix] = None,
        hub_deficit: Optional[np.ndarray] = None,
    ) -> None:
        """Targeted maintenance writes with a single version bump.

        The delta-maintenance fast path rewrites only the nodes it
        invalidated (plus hub rows), instead of handing over a full state
        list — on a store-backed index that keeps the columnar arrays as
        the primary storage and touches ``O(len(states))`` columns, not
        ``O(n)``.  The hub set itself is unchanged by construction (the
        fast path pins it); callers are responsible for only leaving nodes
        untouched whose columns are unaffected by the new hub data.
        """
        if hub_matrix is not None:
            new_matrix = hub_matrix.tocsc()
            if new_matrix.shape[0] != self.n_nodes:
                raise ValueError(
                    f"hub matrix has {new_matrix.shape[0]} rows but the "
                    f"index covers {self.n_nodes} nodes"
                )
            if new_matrix.shape[1] != len(self.hubs):
                raise ValueError(
                    f"hub matrix has {new_matrix.shape[1]} columns but "
                    f"{len(self.hubs)} hubs"
                )
            self.hub_matrix = new_matrix
        if hub_deficit is not None:
            new_deficit = np.asarray(hub_deficit, dtype=np.float64)
            if new_deficit.size != len(self.hubs):
                raise ValueError(
                    "hub_deficit length must equal the number of hubs"
                )
            self.hub_deficit = new_deficit
        columns = self.columns
        for node, state in states.items():
            node = check_node_index(node, self.n_nodes)
            if self._store is not None:
                self._store.set_state(node, state)
            else:
                self._states[node] = state
            self._write_column(columns, node, state)
            if self._lower32 is not None:
                self._lower32[:, node] = columns.lower[:, node]
        self._version += 1

    def kth_lower_bounds(self, k: int) -> np.ndarray:
        """The k-th row of ``P̂`` across all nodes — the primary pruning signal.

        ``k`` is validated against the index capacity ``K`` only: the matrix
        stores ``K`` slots per node regardless of the graph size, and slots
        beyond a node's known bounds hold the trivial lower bound ``0``.
        """
        k = check_positive_int(k, "k")
        if k > self.capacity:
            raise InvalidParameterError(
                f"k={k} exceeds the index capacity K={self.capacity}"
            )
        return self.columns.lower[k - 1].copy()

    def lower_bound_matrix(self) -> np.ndarray:
        """Dense ``K x n`` matrix ``P̂`` (column ``u`` = top-K lower bounds of ``u``)."""
        return self.columns.lower.copy()

    def lower_bounds_f32(self) -> np.ndarray:
        """The float32 mirror of ``P̂``, for the screened scan (read-only use).

        Materialised lazily from the float64 columns and kept in sync by
        every column write-back, so it always mirrors :attr:`columns`
        ``.lower`` rounded to float32.  Callers must treat the array as
        read-only; it is derived state and is dropped from pickles (rebuilt
        on first access, like the columnar views).
        """
        if getattr(self, "_lower32", None) is None:
            self._lower32 = self.columns.lower.astype(np.float32)
        return self._lower32

    # ------------------------------------------------------------------ #
    # approximate proximity reconstruction
    # ------------------------------------------------------------------ #
    def approximate_vector(self, node: int) -> np.ndarray:
        """Materialise the lower-bound proximity vector ``p^t_node`` (Eq. 7).

        ``p^t = w + P_H @ s`` — retained ink at non-hubs plus hub ink expanded
        through the (rounded) hub proximity columns.
        """
        state = self.state(node)
        n = self.hub_matrix.shape[0] if self.hub_matrix.shape[0] else self.n_nodes
        vector = np.zeros(n, dtype=np.float64)
        for target, value in state.retained.items():
            vector[target] += value
        if state.hub_ink:
            for hub, ink in state.hub_ink.items():
                position = self.hubs.position(hub)
                start, stop = (
                    self.hub_matrix.indptr[position],
                    self.hub_matrix.indptr[position + 1],
                )
                vector[self.hub_matrix.indices[start:stop]] += (
                    ink * self.hub_matrix.data[start:stop]
                )
        return vector

    def effective_residual_mass(self, node: int) -> float:
        """Residue mass for the upper bound, including the rounding deficit.

        ``||r_u||_1`` plus the mass lost because hub proximities were rounded
        (``sum_h s_u[h] * deficit[h]``) — see the module docstring.
        """
        return self.state_residual_mass(self.state(node))

    def state_residual_mass(self, state: NodeState) -> float:
        """Effective residual mass of an arbitrary (possibly detached) state.

        Used by the query engine on working copies during refinement, and by
        the column sync so the columnar ``residual_mass`` vector holds exactly
        the value the per-node computation would produce.
        """
        return effective_state_residual_mass(state, self.hubs, self.hub_deficit)

    # ------------------------------------------------------------------ #
    # columnar view maintenance
    # ------------------------------------------------------------------ #
    def _build_columns(self) -> ColumnarView:
        """Assemble the columnar views from the per-node states (one pass)."""
        # A wholesale rebuild invalidates the float32 mirror; it re-derives
        # lazily from the fresh columns on the next screened scan.
        self._lower32 = None
        if self._store is not None:
            # Columnar mode: the views come straight off the store's arrays
            # (overlay-aware) — no per-node objects are materialised.
            return ColumnarView(
                lower=self._store.lower_matrix(),
                residual_mass=self._store.column_masses(
                    self.hubs, self.hub_deficit
                ),
                is_exact=self._store.is_exact_mask(),
            )
        columns = ColumnarView(
            lower=np.zeros((self.capacity, self.n_nodes), dtype=np.float64),
            residual_mass=np.zeros(self.n_nodes, dtype=np.float64),
            is_exact=np.zeros(self.n_nodes, dtype=bool),
        )
        for node, state in enumerate(self._states):
            self._write_column(columns, node, state)
        return columns

    def _sync_column(self, node: int, state: NodeState) -> None:
        # Every write-back is a visible index mutation: bump the version so
        # version-keyed caches (the serving layer) stop serving stale answers.
        self._version += 1
        if self._columns is not None:
            self._write_column(self._columns, node, state)
            if self._lower32 is not None:
                self._lower32[:, node] = self._columns.lower[:, node]

    # ------------------------------------------------------------------ #
    # pickling (process-pool workers)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Drop the derived columnar views; they are rebuilt lazily on access."""
        state = self.__dict__.copy()
        state["_columns"] = None
        state["_lower32"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("_store", None)
        self.__dict__.update(state)

    def _write_column(self, columns: ColumnarView, node: int, state: NodeState) -> None:
        count = min(self.capacity, state.lower_bounds.size)
        columns.lower[:count, node] = state.lower_bounds[:count]
        columns.lower[count:, node] = 0.0
        columns.residual_mass[node] = self.state_residual_mass(state)
        columns.is_exact[node] = state.is_exact

    # ------------------------------------------------------------------ #
    # size accounting (Table 2)
    # ------------------------------------------------------------------ #
    def storage_bytes(self) -> Dict[str, int]:
        """Approximate storage footprint per index component, in bytes.

        Matches the accounting of Table 2: the top-K lower bound matrix, the
        sparse BCA state matrices ``R``/``W``/``S`` and the hub proximity
        matrix ``P_H`` (rounded).  Entries are counted as 8-byte value plus
        8-byte index, mirroring a coordinate sparse representation.
        """
        lower = self.capacity * self.n_nodes * _VALUE_BYTES
        if self._store is not None:
            state_entries = self._store.stored_entries()
        else:
            state_entries = sum(state.stored_entries() for state in self._states)
        state_bytes = state_entries * (_VALUE_BYTES + _INDEX_BYTES)
        hub_bytes = self.hub_matrix.nnz * (_VALUE_BYTES + _INDEX_BYTES)
        return {
            "lower_bounds": lower,
            "bca_state": state_bytes,
            "hub_matrix": hub_bytes,
            "total": lower + state_bytes + hub_bytes,
        }

    def total_bytes(self) -> int:
        """Total approximate index size in bytes."""
        return self.storage_bytes()["total"]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> None:
        """Serialise the index to a ``.npz`` archive, atomically.

        The archive is first written to a uniquely-named temporary sibling
        file (:func:`tempfile.mkstemp`, so concurrent saves — even of the
        same path from several threads — never share a temp file) and then
        moved into place with :func:`os.replace`.  A failure mid-write
        (full disk, crash, interrupted process) therefore never corrupts an
        existing snapshot at ``path`` — readers see either the old complete
        archive or the new one, never a torn file.

        Mirroring :func:`numpy.savez_compressed`, a ``.npz`` suffix is
        appended to ``path`` when it is missing.
        """
        path = Path(path)
        if not path.name.endswith(".npz"):
            path = path.with_name(path.name + ".npz")
        if self._store is not None:
            arrays = self._store.to_arrays()
        else:
            arrays = _states_to_arrays(self._states, self.capacity)
        hub_matrix = self.hub_matrix.tocoo()
        try:
            descriptor, name = tempfile.mkstemp(
                prefix=f"{path.name}.tmp-", dir=path.parent
            )
        except OSError as exc:
            raise SerializationError(f"cannot save index to {path}: {exc}") from exc
        temporary = Path(name)
        try:
            with os.fdopen(descriptor, "wb") as handle:
                # mkstemp creates 0600 files; restore the umask-default mode
                # the plain open() of np.savez would have produced, so other
                # readers of a shared snapshot directory keep working.
                os.fchmod(descriptor, 0o666 & ~_UMASK)
                self._write_npz(handle, arrays, hub_matrix)
                # Flush to disk before the rename: otherwise a crash can
                # persist the replace but not the data, leaving a torn file.
                handle.flush()
                os.fsync(descriptor)
            os.replace(temporary, path)
        except OSError as exc:
            raise SerializationError(f"cannot save index to {path}: {exc}") from exc
        finally:
            if temporary.exists():
                temporary.unlink()

    def _write_npz(self, handle, arrays, hub_matrix) -> None:
        """Write the archive payload to an open binary file handle."""
        np.savez_compressed(
            handle,
            alpha=np.array([self.params.alpha]),
            capacity=np.array([self.params.capacity]),
            propagation_threshold=np.array([self.params.propagation_threshold]),
            residue_threshold=np.array([self.params.residue_threshold]),
            rounding_threshold=np.array([self.params.rounding_threshold]),
            hub_budget=np.array([self.params.hub_budget]),
            tolerance=np.array([self.params.tolerance]),
            backend=np.array([self.params.backend]),
            block_size=np.array([self.params.block_size]),
            hubs=np.asarray(self.hubs.nodes, dtype=np.int64),
            hub_deficit=self.hub_deficit,
            hub_rows=hub_matrix.row.astype(np.int64),
            hub_cols=hub_matrix.col.astype(np.int64),
            hub_vals=hub_matrix.data.astype(np.float64),
            hub_shape=np.asarray(self.hub_matrix.shape, dtype=np.int64),
            build_seconds=np.array([self.build_seconds]),
            **arrays,
        )

    @classmethod
    def load(cls, path: PathLike) -> "ReverseTopKIndex":
        """Load an index previously written by :meth:`save`."""
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                # Archives written before the propagation-kernel layer lack
                # the backend fields.  Their states were built by the seed
                # loop, which the scalar backend preserves bit-identically —
                # defaulting to "vectorized" would hand the dynamic
                # maintainer a mixed index that matches neither backend's
                # from-scratch build.
                extras = {}
                if "backend" in data:
                    extras["backend"] = str(data["backend"][0])
                else:
                    extras["backend"] = "scalar"
                if "block_size" in data:
                    extras["block_size"] = int(data["block_size"][0])
                params = IndexParams(
                    alpha=float(data["alpha"][0]),
                    capacity=int(data["capacity"][0]),
                    propagation_threshold=float(data["propagation_threshold"][0]),
                    residue_threshold=float(data["residue_threshold"][0]),
                    rounding_threshold=float(data["rounding_threshold"][0]),
                    hub_budget=int(data["hub_budget"][0]),
                    tolerance=float(data["tolerance"][0]),
                    **extras,
                )
                hubs = HubSet.from_iterable(data["hubs"].tolist())
                shape = tuple(int(x) for x in data["hub_shape"])
                hub_matrix = sp.coo_matrix(
                    (data["hub_vals"], (data["hub_rows"], data["hub_cols"])), shape=shape
                ).tocsc()
                states = _states_from_arrays(data)
                return cls(
                    params,
                    hubs,
                    hub_matrix,
                    data["hub_deficit"],
                    states,
                    build_seconds=float(data["build_seconds"][0]),
                )
        except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            # BadZipFile: a truncated/torn .npz that still begins with the
            # zip magic — np.load raises it instead of ValueError.
            raise SerializationError(f"cannot load index from {path}: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"ReverseTopKIndex(n_nodes={self.n_nodes}, K={self.capacity}, "
            f"hubs={len(self.hubs)}, bytes={self.total_bytes()})"
        )


# ----------------------------------------------------------------------- #
# (de)serialisation helpers
# ----------------------------------------------------------------------- #
def _dicts_to_arrays(dicts: List[Dict[int, float]]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a list of ``{index: value}`` dicts into (indptr, keys, values)."""
    counts = np.array([len(d) for d in dicts], dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(counts)])
    keys = np.empty(int(indptr[-1]), dtype=np.int64)
    values = np.empty(int(indptr[-1]), dtype=np.float64)
    position = 0
    for entry in dicts:
        for key, value in entry.items():
            keys[position] = key
            values[position] = value
            position += 1
    return indptr, keys, values


def _arrays_to_dicts(indptr: np.ndarray, keys: np.ndarray, values: np.ndarray) -> List[Dict[int, float]]:
    result: List[Dict[int, float]] = []
    for node in range(indptr.size - 1):
        start, stop = int(indptr[node]), int(indptr[node + 1])
        result.append(
            {int(k): float(v) for k, v in zip(keys[start:stop], values[start:stop])}
        )
    return result


def _states_to_arrays(states: List[NodeState], capacity: int) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {}
    for name in ("residual", "retained", "hub_ink"):
        indptr, keys, values = _dicts_to_arrays([getattr(s, name) for s in states])
        arrays[f"{name}_indptr"] = indptr
        arrays[f"{name}_keys"] = keys
        arrays[f"{name}_values"] = values
    lower = np.zeros((len(states), capacity), dtype=np.float64)
    for row, state in enumerate(states):
        count = min(capacity, state.lower_bounds.size)
        lower[row, :count] = state.lower_bounds[:count]
    arrays["lower_bounds"] = lower
    arrays["iterations"] = np.array([s.iterations for s in states], dtype=np.int64)
    arrays["is_hub"] = np.array([s.is_hub for s in states], dtype=bool)
    return arrays


def _states_from_arrays(data: "np.lib.npyio.NpzFile") -> List[NodeState]:
    residuals = _arrays_to_dicts(
        data["residual_indptr"], data["residual_keys"], data["residual_values"]
    )
    retained = _arrays_to_dicts(
        data["retained_indptr"], data["retained_keys"], data["retained_values"]
    )
    hub_ink = _arrays_to_dicts(
        data["hub_ink_indptr"], data["hub_ink_keys"], data["hub_ink_values"]
    )
    lower = data["lower_bounds"]
    iterations = data["iterations"]
    is_hub = data["is_hub"]
    states = []
    for node in range(lower.shape[0]):
        states.append(
            NodeState(
                residual=residuals[node],
                retained=retained[node],
                hub_ink=hub_ink[node],
                lower_bounds=lower[node].copy(),
                iterations=int(iterations[node]),
                is_hub=bool(is_hub[node]),
            )
        )
    return states
