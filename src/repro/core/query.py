"""Algorithm 4 — the online reverse top-k query engine (§4.2).

Query evaluation proceeds in two phases:

1. **Exact proximities to the query** — PMPN (Algorithm 2) computes
   ``p_{q,*}`` so that for every node ``u`` the exact value ``p_u(q)`` is
   known.
2. **Per-node verification** — each node is pruned with its indexed k-th
   lower bound, confirmed with the staircase upper bound (Algorithm 3), or
   progressively refined with additional batched BCA iterations until one of
   the two tests decides.  Refinements can be written back into the index
   ("update" mode), tightening bounds for future queries.

The engine also collects the per-query statistics reported in Figures 5–8:
candidate count, immediate hits, refinement iterations, and stage timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .._validation import check_k, check_node_index
from ..exceptions import QueryError
from ..graph.digraph import DiGraph
from ..graph.transition import transition_matrix
from ..utils.timer import StageTimer, Timer
from .bounds import kth_upper_bound
from .config import IndexParams, QueryParams
from .index import NodeState, ReverseTopKIndex
from .lbi import build_index, refine_node_state
from .pmpn import proximity_to_node


@dataclass(frozen=True)
class QueryStatistics:
    """Counters describing how a single reverse top-k query was resolved.

    Attributes
    ----------
    n_results:
        Size of the answer set.
    n_candidates:
        Nodes that survived the initial lower-bound filter and were *not*
        already exact (the "cand" series of Figure 6).
    n_hits:
        Candidates confirmed as results by their first upper-bound check,
        without any refinement (the "hits" series of Figure 6).
    n_exact_shortcut:
        Nodes accepted directly because their indexed bounds are exact.
    n_pruned_immediately:
        Nodes rejected by the very first lower-bound comparison.
    n_refinement_iterations:
        Total batched BCA iterations spent refining candidates.
    n_refined_nodes:
        Number of distinct candidates that needed at least one refinement.
    n_exact_fallbacks:
        Candidates whose refinement budget ran out and that were resolved
        exactly with one power-method run instead.
    pmpn_iterations:
        Iterations used by the exact proximity-to-query computation.
    seconds:
        Total wall-clock time of the query.
    stage_seconds:
        Breakdown of the time per stage (``pmpn``, ``scan``, ``refine``).
    """

    n_results: int
    n_candidates: int
    n_hits: int
    n_exact_shortcut: int
    n_pruned_immediately: int
    n_refinement_iterations: int
    n_refined_nodes: int
    pmpn_iterations: int
    seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    n_exact_fallbacks: int = 0


@dataclass(frozen=True)
class QueryResult:
    """Answer of a reverse top-k query.

    Attributes
    ----------
    query:
        The query node ``q``.
    k:
        The query depth.
    nodes:
        Sorted array of nodes whose top-k proximity set contains ``q``.
    proximities_to_query:
        The exact proximities ``p_u(q)`` for every node ``u`` (a by-product
        of PMPN, useful to rank the result set).
    statistics:
        The :class:`QueryStatistics` of this evaluation.
    """

    query: int
    k: int
    nodes: np.ndarray
    proximities_to_query: np.ndarray
    statistics: QueryStatistics

    def __contains__(self, node: object) -> bool:
        return bool(np.isin(node, self.nodes))

    def __len__(self) -> int:
        return int(self.nodes.size)

    def ranked(self) -> List[tuple[int, float]]:
        """Result nodes with their proximity to the query, strongest first."""
        pairs = [(int(node), float(self.proximities_to_query[node])) for node in self.nodes]
        return sorted(pairs, key=lambda item: (-item[1], item[0]))


class ReverseTopKEngine:
    """Reverse top-k query engine combining the index with Algorithm 4.

    Typical usage::

        engine = ReverseTopKEngine.build(graph)           # offline indexing
        result = engine.query(query_node, k=10)           # online query
        print(result.nodes)

    Parameters
    ----------
    transition:
        Column-stochastic transition matrix of the graph.
    index:
        A pre-built :class:`ReverseTopKIndex` over the same graph.
    """

    def __init__(self, transition: sp.spmatrix, index: ReverseTopKIndex) -> None:
        self.transition = sp.csc_matrix(transition)
        if self.transition.shape[0] != index.n_nodes and index.n_nodes:
            raise QueryError(
                f"index covers {index.n_nodes} nodes but the transition matrix has "
                f"{self.transition.shape[0]}"
            )
        self.index = index
        self._hub_mask = index.hubs.mask(self.transition.shape[0])

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: DiGraph | sp.spmatrix,
        params: Optional[IndexParams] = None,
        *,
        transition: Optional[sp.spmatrix] = None,
        hubs=None,
    ) -> "ReverseTopKEngine":
        """Construct the index for ``graph`` and wrap it in an engine."""
        if isinstance(graph, DiGraph):
            matrix = transition if transition is not None else transition_matrix(graph)
        else:
            matrix = graph if transition is None else transition
        index = build_index(graph, params, transition=matrix, hubs=hubs)
        return cls(matrix, index)

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered by the engine."""
        return self.transition.shape[0]

    # ------------------------------------------------------------------ #
    # query evaluation
    # ------------------------------------------------------------------ #
    def query(
        self,
        query: int,
        k: int = 10,
        *,
        update_index: bool = True,
        params: Optional[QueryParams] = None,
    ) -> QueryResult:
        """Evaluate a reverse top-k query (Algorithm 4).

        Parameters
        ----------
        query:
            The query node ``q``.
        k:
            Reverse top-k depth; must not exceed the index capacity ``K``.
        update_index:
            Persist candidate refinements back into the index (the paper's
            "update" policy).  When ``False`` the index is left untouched.
        params:
            Full :class:`QueryParams`; overrides ``k`` and ``update_index``
            when given.
        """
        if params is None:
            params = QueryParams(k=k, update_index=update_index)
        query = check_node_index(query, self.n_nodes, "query")
        k = check_k(params.k, self.n_nodes, maximum=self.index.capacity)

        stages = StageTimer()
        total_timer = Timer()
        with total_timer:
            with stages.time("pmpn"):
                pmpn = proximity_to_node(
                    self.transition,
                    query,
                    alpha=self.index.params.alpha,
                    tolerance=params.tolerance,
                )
            proximity_to_q = pmpn.proximities

            results: List[int] = []
            n_candidates = 0
            n_hits = 0
            n_exact = 0
            n_pruned = 0
            n_refine_iterations = 0
            n_refined_nodes = 0
            n_fallbacks = 0

            with stages.time("scan"):
                for node in range(self.n_nodes):
                    outcome = self._verify_node(
                        node,
                        float(proximity_to_q[node]),
                        k,
                        params,
                    )
                    if outcome.is_result:
                        results.append(node)
                    n_candidates += outcome.was_candidate
                    n_hits += outcome.was_immediate_hit
                    n_exact += outcome.used_exact_shortcut
                    n_pruned += outcome.pruned_immediately
                    n_refine_iterations += outcome.refinement_iterations
                    n_refined_nodes += outcome.refinement_iterations > 0
                    n_fallbacks += outcome.used_exact_fallback

        statistics = QueryStatistics(
            n_results=len(results),
            n_candidates=n_candidates,
            n_hits=n_hits,
            n_exact_shortcut=n_exact,
            n_pruned_immediately=n_pruned,
            n_refinement_iterations=n_refine_iterations,
            n_refined_nodes=n_refined_nodes,
            pmpn_iterations=pmpn.iterations,
            seconds=total_timer.elapsed,
            stage_seconds=stages.as_dict(),
            n_exact_fallbacks=n_fallbacks,
        )
        return QueryResult(
            query=query,
            k=k,
            nodes=np.asarray(results, dtype=np.int64),
            proximities_to_query=proximity_to_q,
            statistics=statistics,
        )

    def query_many(
        self,
        queries: Sequence[int],
        k: int = 10,
        *,
        update_index: bool = True,
    ) -> List[QueryResult]:
        """Evaluate a workload of queries sequentially (Figures 7 and 8)."""
        return [
            self.query(int(query), k, update_index=update_index) for query in queries
        ]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _verify_node(
        self,
        node: int,
        proximity_to_query: float,
        k: int,
        params: QueryParams,
    ) -> "_NodeOutcome":
        """Decide whether ``node`` belongs to the reverse top-k result.

        Implements the while-loop body of Algorithm 4 for a single node,
        including the refinement of line 13 and the bookkeeping needed for
        Figure 6's candidate/hit statistics.
        """
        state = self.index.state(node)
        outcome = _NodeOutcome()

        lower_k = state.kth_lower_bound(k)
        if proximity_to_query < lower_k:
            outcome.pruned_immediately = True
            return outcome

        if state.is_exact:
            # The lower bound is the true k-th value; the comparison is final.
            outcome.is_result = True
            outcome.used_exact_shortcut = True
            return outcome

        outcome.was_candidate = True
        working = state if params.update_index else state.copy()
        first_check = True
        refinements = 0
        while proximity_to_query >= working.kth_lower_bound(k):
            if working.is_exact:
                outcome.is_result = True
                break
            residual_mass = self._effective_residual_mass(working)
            upper = kth_upper_bound(working.lower_bounds, residual_mass, k)
            if proximity_to_query >= upper:
                outcome.is_result = True
                if first_check:
                    outcome.was_immediate_hit = True
                break
            first_check = False
            if refinements >= params.max_refinements:
                # Refinement budget exhausted: decide exactly with one power
                # method run instead of guessing (rare; counted in statistics).
                outcome.is_result = self._exact_decision(node, working, proximity_to_query, k)
                outcome.used_exact_fallback = True
                break
            progressed = refine_node_state(
                working, self.index, self.transition, self._hub_mask
            )
            refinements += 1
            if not progressed:
                # No residue remains: the lower bounds are exact values now.
                outcome.is_result = proximity_to_query >= working.kth_lower_bound(k)
                break

        outcome.refinement_iterations = refinements
        if params.update_index and refinements:
            self.index.set_state(node, working)
        return outcome

    def _exact_decision(
        self, node: int, state: NodeState, proximity_to_query: float, k: int
    ) -> bool:
        """Decide membership exactly by computing the node's proximity vector.

        Used only when the refinement budget runs out; the exact top-K values
        replace the node's lower bounds (a strictly better index entry).
        """
        from ..rwr.power_method import proximity_vector
        from ..utils.sparsetools import top_k_descending

        exact = proximity_vector(
            self.transition,
            node,
            alpha=self.index.params.alpha,
            tolerance=self.index.params.tolerance,
        ).vector
        state.lower_bounds = top_k_descending(exact, self.index.capacity)
        state.retained = {
            int(target): float(value)
            for target, value in enumerate(exact)
            if value > 0.0
        }
        state.residual = {}
        state.hub_ink = {}
        return proximity_to_query >= state.kth_lower_bound(k)

    def _effective_residual_mass(self, state: NodeState) -> float:
        """Residue mass for the upper bound, including the hub rounding deficit."""
        mass = state.residual_mass
        if state.hub_ink and self.index.hub_deficit.size:
            for hub, ink in state.hub_ink.items():
                mass += ink * float(self.index.hub_deficit[self.index.hubs.position(hub)])
        return mass


@dataclass
class _NodeOutcome:
    """Private per-node bookkeeping of Algorithm 4's while loop."""

    is_result: bool = False
    was_candidate: bool = False
    was_immediate_hit: bool = False
    used_exact_shortcut: bool = False
    used_exact_fallback: bool = False
    pruned_immediately: bool = False
    refinement_iterations: int = 0
