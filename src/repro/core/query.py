"""Algorithm 4 — the online reverse top-k query engine (§4.2).

Query evaluation proceeds in two phases:

1. **Exact proximities to the query** — PMPN (Algorithm 2) computes
   ``p_{q,*}`` so that for every node ``u`` the exact value ``p_u(q)`` is
   known.
2. **Candidate-centric scan** — nodes are pruned with their indexed k-th
   lower bound, confirmed with the staircase upper bound (Algorithm 3), or
   progressively refined with additional batched BCA iterations until one of
   the two tests decides.  Refinements can be written back into the index
   ("update" mode), tightening bounds for future queries.

Vectorized pipeline (the default, ``scan_mode="vectorized"``)
-------------------------------------------------------------
Instead of looping over all ``n`` nodes, the scan phase runs as whole-array
stages over the index's columnar views (:attr:`ReverseTopKIndex.columns`):

* **prune** — one NumPy comparison ``p_*(q) < P̂[k-1, *]`` rejects almost
  every node in a single pass (the paper's headline pruning result,
  Figures 5-6);
* **exact shortcut** — survivors whose ``is_exact`` mask bit is set are
  accepted outright: their lower bound is the true k-th value, so surviving
  the prune is a final decision;
* **batched upper bound** — the staircase bound of Algorithm 3 is evaluated
  for *all* remaining candidates at once (:func:`kth_upper_bounds_batch`),
  turning first-check hits into results without touching per-node state;
* **refine** — only the few candidates that all three vectorized stages left
  undecided enter the per-node refinement loop of Algorithm 4, line 13.

The stages produce results and :class:`QueryStatistics` counters that are
bit-identical to the per-node reference scan, which remains available as
``scan_mode="scalar"`` for equivalence tests and benchmarks.

The engine also collects the per-query statistics reported in Figures 5–8:
candidate count, immediate hits, refinement iterations, and stage timings
(``pmpn``, ``scan``, and — in vectorized mode — ``refine``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .._validation import check_k, check_membership, check_node_index
from ..exceptions import QueryError
from ..graph.digraph import DiGraph
from ..graph.transition import transition_matrix
from ..obs.tracing import current_span
from ..utils.timer import StageTimer, Timer
from .backends import load_numba_kernels
from .bounds import (
    BoundsWorkspace,
    FLOAT32_ABSOLUTE_ENVELOPE,
    FLOAT32_RELATIVE_ENVELOPE,
    float32_prune_envelope,
    float32_staircase_envelope,
    kth_upper_bound,
    kth_upper_bounds_batch,
)
from .config import SCAN_PRECISIONS, IndexParams, QueryParams
from .index import ColumnarView, NodeState, ReverseTopKIndex
from .lbi import build_index, refine_node_state
from .pmpn import proximity_to_node
from .propagation import PropagationKernel

#: Accepted scan-phase implementations: the columnar pipeline, the per-node
#: reference loop (kept for equivalence testing and benchmarks), and the
#: JIT-compiled fused scan (requires the optional ``fast`` extra).
SCAN_MODES = ("vectorized", "scalar", "numba")


# --------------------------------------------------------------------- #
# the shared columnar stage pipeline
# --------------------------------------------------------------------- #
def columnar_stage_decisions(
    proximity: np.ndarray,
    columns: ColumnarView,
    k: int,
    *,
    lower32: Optional[np.ndarray] = None,
    screen: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    workspace: Optional[BoundsWorkspace] = None,
    jit=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Prune / exact-shortcut / staircase decisions over one columnar slice.

    The single decision pipeline behind both the monolithic vectorized scan
    and the per-shard router scan.  Returns ``(exact_idx, candidate_idx,
    hits, n_pruned)`` with ascending slice-local node indices: nodes accepted
    by the exact shortcut, undecided-or-hit candidates, the boolean hit mask
    aligned with ``candidate_idx``, and the immediate-prune count.

    ``lower32`` switches on float32 screening: the comparisons run against
    the float32 mirror of the lower-bound plane, and only nodes inside the
    conservative rounding envelope (see :mod:`repro.core.bounds`) are
    re-checked against the float64 columns — so decisions (and therefore the
    derived statistics) stay bit-identical while the screening passes read
    half the bytes.  ``screen`` optionally supplies precomputed ``(hi, lo)``
    prune rows (``threshold ± envelope`` at rank ``k``) so a caller serving
    many queries against the same plane pays the float64 conversion once.
    ``jit`` routes the stage pipeline through the compiled
    :func:`repro.core._numba_kernels.scan_decide` kernel instead of NumPy,
    again with identical decisions.
    """
    if jit is not None:
        return _stage_decisions_numba(proximity, columns, k, lower32, workspace, jit)
    if lower32 is not None:
        return _stage_decisions_screened(
            proximity, columns, k, lower32, screen, workspace
        )
    return _stage_decisions_float64(proximity, columns, k, workspace)


def _stage_decisions_float64(
    proximity: np.ndarray,
    columns: ColumnarView,
    k: int,
    workspace: Optional[BoundsWorkspace],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """The reference whole-array pipeline over the float64 columns."""
    survivors = proximity >= columns.lower[k - 1]
    n_pruned = proximity.size - int(np.count_nonzero(survivors))
    is_exact = np.asarray(columns.is_exact)
    exact_idx = np.flatnonzero(survivors & is_exact)
    candidates = np.flatnonzero(survivors & ~is_exact)
    if candidates.size:
        # Gather only the k rows the staircase needs: the plane holds K >= k
        # rows and a full-column gather would touch (and copy) all of them.
        upper = kth_upper_bounds_batch(
            columns.lower[:k, candidates],
            columns.residual_mass[candidates],
            k,
            workspace=workspace,
        )
        hits = proximity[candidates] >= upper
    else:
        hits = np.zeros(0, dtype=bool)
    return exact_idx, candidates, hits, n_pruned


def _stage_decisions_screened(
    proximity: np.ndarray,
    columns: ColumnarView,
    k: int,
    lower32: np.ndarray,
    screen: Optional[Tuple[np.ndarray, np.ndarray]],
    workspace: Optional[BoundsWorkspace],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """float32-screened pipeline: screen wide, re-check the envelope at f64.

    Comparisons whose margin exceeds the rounding envelope provably decide
    the same way as the float64 comparison, so only the (rare) borderline
    nodes ever touch the float64 plane — and those are resolved against it,
    making every returned decision bit-identical to the float64 pipeline.
    """
    lower = columns.lower
    if screen is not None:
        hi, lo = screen
    else:
        thresholds = np.asarray(lower32[k - 1], dtype=np.float64)
        envelope = float32_prune_envelope(thresholds)
        hi = thresholds + envelope
        lo = thresholds - envelope
    survivors = proximity >= hi
    near = proximity >= lo
    # hi >= lo, so survivors is a subset of near: xor leaves exactly the
    # envelope sliver that needs the float64 row.
    np.logical_xor(near, survivors, out=near)
    unsure = np.flatnonzero(near)
    if unsure.size:
        survivors[unsure] = proximity[unsure] >= lower[k - 1][unsure]
    n_pruned = proximity.size - int(np.count_nonzero(survivors))
    is_exact = np.asarray(columns.is_exact)
    exact_idx = np.flatnonzero(survivors & is_exact)
    candidates = np.flatnonzero(survivors & ~is_exact)
    if not candidates.size:
        return exact_idx, candidates, np.zeros(0, dtype=bool), n_pruned
    masses = columns.residual_mass[candidates]
    upper32 = kth_upper_bounds_batch(
        lower32[:k, candidates], masses, k, workspace=workspace
    )
    stair_envelope = float32_staircase_envelope(
        np.asarray(lower32[0, candidates], dtype=np.float64), masses
    )
    prox = proximity[candidates]
    hits = prox >= upper32 + stair_envelope
    unsure = np.flatnonzero(~hits & (prox >= upper32 - stair_envelope))
    if unsure.size:
        borderline = candidates[unsure]
        upper = kth_upper_bounds_batch(
            lower[:k, borderline],
            columns.residual_mass[borderline],
            k,
            workspace=workspace,
        )
        hits[unsure] = prox[unsure] >= upper
    return exact_idx, candidates, hits, n_pruned


def _stage_decisions_numba(
    proximity: np.ndarray,
    columns: ColumnarView,
    k: int,
    lower32: Optional[np.ndarray],
    workspace: Optional[BoundsWorkspace],
    jit,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Fused compiled pipeline; envelope hits resolve through NumPy at f64."""
    n = proximity.shape[0]
    if lower32 is not None:
        plane = np.asarray(lower32)
        eps, tiny = FLOAT32_RELATIVE_ENVELOPE, FLOAT32_ABSOLUTE_ENVELOPE
    else:
        plane = np.asarray(columns.lower)
        eps, tiny = 0.0, 0.0
    codes = (
        workspace.take("codes", n, np.uint8)
        if workspace is not None
        else np.empty(n, dtype=np.uint8)
    )
    jit.scan_decide(
        np.asarray(proximity),
        plane,
        np.asarray(columns.residual_mass),
        np.asarray(columns.is_exact),
        k,
        eps,
        tiny,
        codes,
    )
    unsure = np.flatnonzero(codes == 4)
    if unsure.size:
        # Replay the full float64 pipeline for the envelope nodes only.
        lower = columns.lower
        survived = proximity[unsure] >= lower[k - 1][unsure]
        codes[unsure[~survived]] = 0
        alive = unsure[survived]
        exact_alive = np.asarray(columns.is_exact)[alive]
        codes[alive[exact_alive]] = 1
        borderline = alive[~exact_alive]
        if borderline.size:
            upper = kth_upper_bounds_batch(
                lower[:k, borderline],
                columns.residual_mass[borderline],
                k,
                workspace=workspace,
            )
            codes[borderline] = np.where(
                proximity[borderline] >= upper, 2, 3
            ).astype(np.uint8)
    n_pruned = int(np.count_nonzero(codes == 0))
    exact_idx = np.flatnonzero(codes == 1)
    candidates = np.flatnonzero(codes >= 2)
    hits = codes[candidates] == 2
    return exact_idx, candidates, hits, n_pruned


@dataclass(frozen=True)
class QueryStatistics:
    """Counters describing how a single reverse top-k query was resolved.

    Attributes
    ----------
    n_results:
        Size of the answer set.
    n_candidates:
        Nodes that survived the initial lower-bound filter and were *not*
        already exact (the "cand" series of Figure 6).
    n_hits:
        Candidates confirmed as results by their first upper-bound check,
        without any refinement (the "hits" series of Figure 6).
    n_exact_shortcut:
        Nodes accepted directly because their indexed bounds are exact.
    n_pruned_immediately:
        Nodes rejected by the very first lower-bound comparison.
    n_refinement_iterations:
        Total batched BCA iterations spent refining candidates.
    n_refined_nodes:
        Number of distinct candidates that needed at least one refinement.
    n_exact_fallbacks:
        Candidates whose refinement budget ran out and that were resolved
        exactly with one power-method run instead.
    pmpn_iterations:
        Iterations used by the exact proximity-to-query computation.
    seconds:
        Total wall-clock time of the query.
    stage_seconds:
        Breakdown of the time per stage (``pmpn``, ``scan``, ``refine``).
    """

    n_results: int
    n_candidates: int
    n_hits: int
    n_exact_shortcut: int
    n_pruned_immediately: int
    n_refinement_iterations: int
    n_refined_nodes: int
    pmpn_iterations: int
    seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    n_exact_fallbacks: int = 0


@dataclass(frozen=True)
class QueryResult:
    """Answer of a reverse top-k query.

    The engine marks both arrays read-only before handing the result out:
    one result object may be shared by a cache, several deduplicated
    requesters and pickled process-pool transfers, so accidental in-place
    mutation by any one holder must fail loudly instead of corrupting every
    other holder's answer.

    Attributes
    ----------
    query:
        The query node ``q``.
    k:
        The query depth.
    nodes:
        Sorted array of nodes whose top-k proximity set contains ``q``.
    proximities_to_query:
        The exact proximities ``p_u(q)`` for every node ``u`` (a by-product
        of PMPN, useful to rank the result set).
    statistics:
        The :class:`QueryStatistics` of this evaluation.
    """

    query: int
    k: int
    nodes: np.ndarray
    proximities_to_query: np.ndarray
    statistics: QueryStatistics

    def __post_init__(self) -> None:
        self._freeze()

    def _freeze(self) -> None:
        if isinstance(self.nodes, np.ndarray):
            self.nodes.setflags(write=False)
        if isinstance(self.proximities_to_query, np.ndarray):
            self.proximities_to_query.setflags(write=False)

    def __setstate__(self, state: dict) -> None:
        # NumPy drops the read-only flag on unpickle, so results shipped
        # back from process-pool workers would arrive writable — re-freeze
        # on receipt, or one caller's in-place edit would corrupt the
        # cache's pristine entry and every dedup sibling.
        self.__dict__.update(state)
        self._freeze()

    def __contains__(self, node: object) -> bool:
        return bool(np.isin(node, self.nodes))

    def __len__(self) -> int:
        return int(self.nodes.size)

    def copy(self) -> "QueryResult":
        """Defensive copy for fan-out to independent consumers.

        The read-only result arrays are shared (they cannot be mutated
        through either holder), but the statistics — whose ``stage_seconds``
        dict is the one remaining mutable field — are duplicated, so no two
        consumers can observe each other's modifications.
        """
        return replace(
            self,
            statistics=replace(
                self.statistics,
                stage_seconds=dict(self.statistics.stage_seconds),
            ),
        )

    def ranked(self) -> List[tuple[int, float]]:
        """Result nodes with their proximity to the query, strongest first."""
        pairs = [(int(node), float(self.proximities_to_query[node])) for node in self.nodes]
        return sorted(pairs, key=lambda item: (-item[1], item[0]))


class ReverseTopKEngine:
    """Reverse top-k query engine combining the index with Algorithm 4.

    Typical usage::

        engine = ReverseTopKEngine.build(graph)           # offline indexing
        result = engine.query(query_node, k=10)           # online query
        print(result.nodes)

    Parameters
    ----------
    transition:
        Column-stochastic transition matrix of the graph.
    index:
        A pre-built :class:`ReverseTopKIndex` over the same graph.
    scan_precision:
        ``"float64"`` (default) scans the full-precision columns;
        ``"float32"`` screens the prune and staircase stages against the
        index's float32 lower-bound mirror, re-checking only borderline
        nodes at float64 — answers and statistics are bit-identical, at
        half the bytes read per columnar pass.  Affects the columnar scan
        modes only (the scalar reference loop always reads float64).
    """

    def __init__(
        self,
        transition: sp.spmatrix,
        index: ReverseTopKIndex,
        *,
        scan_precision: str = "float64",
    ) -> None:
        self.scan_precision = check_membership(
            scan_precision, SCAN_PRECISIONS, "scan_precision"
        )
        self.transition = sp.csc_matrix(transition)
        if self.transition.shape[0] != index.n_nodes and index.n_nodes:
            raise QueryError(
                f"index covers {index.n_nodes} nodes but the transition matrix has "
                f"{self.transition.shape[0]}"
            )
        self.index = index
        self._hub_mask = index.hubs.mask(self.transition.shape[0])
        # PMPN iterates with A^T; transpose once and share it across queries.
        self._transposed = self.transition.T.tocsr()
        # Candidate refinement advances states through the shared propagation
        # kernel (a block of one source); prepared once per (transition,
        # index) binding, like the other derived caches.
        self._kernel = PropagationKernel(
            self.transition,
            self._hub_mask,
            index.params,
            hubs=index.hubs,
            hub_matrix=index.hub_matrix,
        )
        # Scratch for the batched staircase bound, reused across queries
        # (thread-local, so concurrent read-only queries stay safe).
        self._bounds_workspace = BoundsWorkspace()
        # Compiled scan kernels, loaded on the first scan_mode="numba" query.
        self._scan_jit = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: DiGraph | sp.spmatrix,
        params: Optional[IndexParams] = None,
        *,
        transition: Optional[sp.spmatrix] = None,
        hubs=None,
        scan_precision: str = "float64",
    ) -> "ReverseTopKEngine":
        """Construct the index for ``graph`` and wrap it in an engine."""
        if isinstance(graph, DiGraph):
            matrix = transition if transition is not None else transition_matrix(graph)
        else:
            matrix = graph if transition is None else transition
        index = build_index(graph, params, transition=matrix, hubs=hubs)
        return cls(matrix, index, scan_precision=scan_precision)

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered by the engine."""
        return self.transition.shape[0]

    def rebind(
        self,
        transition: sp.spmatrix,
        index: Optional[ReverseTopKIndex] = None,
    ) -> None:
        """Point the engine at a new transition matrix (dynamic maintenance).

        Re-derives every transition-dependent cache — the hub mask and the
        shared CSR transpose PMPN iterates with — exactly as construction
        does.  The index defaults to the engine's current one, which the
        maintainer mutates in place so version-keyed caches stay monotonic.
        """
        self.__init__(
            transition,
            index if index is not None else self.index,
            scan_precision=self.scan_precision,
        )

    # ------------------------------------------------------------------ #
    # query evaluation
    # ------------------------------------------------------------------ #
    def query(
        self,
        query: int,
        k: int = 10,
        *,
        update_index: bool = True,
        params: Optional[QueryParams] = None,
        scan_mode: str = "vectorized",
    ) -> QueryResult:
        """Evaluate a reverse top-k query (Algorithm 4).

        Parameters
        ----------
        query:
            The query node ``q``.
        k:
            Reverse top-k depth; must not exceed the index capacity ``K``.
        update_index:
            Persist candidate refinements back into the index (the paper's
            "update" policy).  When ``False`` the index is left untouched.
        params:
            Full :class:`QueryParams`; overrides ``k`` and ``update_index``
            when given.
        scan_mode:
            ``"vectorized"`` (default) runs the columnar whole-array scan;
            ``"scalar"`` runs the per-node reference loop; ``"numba"`` runs
            the fused compiled scan (requires the optional ``fast`` extra,
            raising :class:`~repro.exceptions.ConfigurationError` when numba
            is unavailable).  All return identical results and statistics
            counters.
        """
        if params is None:
            params = QueryParams(k=k, update_index=update_index)
        query = check_node_index(query, self.n_nodes, "query")
        k = check_k(params.k, self.n_nodes, maximum=self.index.capacity)
        scan_mode = check_membership(scan_mode, SCAN_MODES, "scan_mode")
        if scan_mode == "numba":
            self._ensure_scan_jit()
        return self._query_checked(query, k, params, scan_mode)

    def query_many(
        self,
        queries: Sequence[int],
        k: int = 10,
        *,
        update_index: bool = True,
        params: Optional[QueryParams] = None,
        scan_mode: str = "vectorized",
    ) -> List[QueryResult]:
        """Evaluate a workload of queries (Figures 7 and 8).

        The batched path validates ``k``/``params``/``scan_mode`` once and
        shares the columnar index views, the CSC transition and its cached
        CSR transpose across all queries.  Per-query results and statistics
        are identical to calling :meth:`query` in a loop.
        """
        if params is None:
            params = QueryParams(k=k, update_index=update_index)
        k = check_k(params.k, self.n_nodes, maximum=self.index.capacity)
        scan_mode = check_membership(scan_mode, SCAN_MODES, "scan_mode")
        if scan_mode == "numba":
            self._ensure_scan_jit()
        return [
            self._query_checked(
                check_node_index(int(query), self.n_nodes, "query"), k, params, scan_mode
            )
            for query in queries
        ]

    def query_many_readonly(
        self,
        queries: Sequence[int],
        k: int = 10,
        *,
        params: Optional[QueryParams] = None,
        scan_mode: str = "vectorized",
    ) -> List[QueryResult]:
        """Shared-view batch entry point: evaluate ``queries`` without writes.

        This is the serving-layer path: ``update_index`` is forced off, so the
        call never mutates the index (refinement happens on per-candidate
        working copies) and never bumps the index version.  Because every
        touched structure — the columnar views, the CSC transition, the cached
        CSR transpose — is only read, any number of threads may call this
        concurrently on one shared engine, and process-pool workers may call
        it on a pickled snapshot of the engine.

        Results are identical to :meth:`query_many` with
        ``update_index=False``.
        """
        if params is None:
            params = QueryParams(k=k, update_index=False)
        elif params.update_index:
            raise QueryError(
                "query_many_readonly requires params with update_index=False"
            )
        return self.query_many(queries, params=params, scan_mode=scan_mode)

    # ------------------------------------------------------------------ #
    # pickling (process-pool workers)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Ship only the transition and the index; derived caches rebuild."""
        return {
            "transition": self.transition,
            "index": self.index,
            "scan_precision": self.scan_precision,
        }

    def __setstate__(self, state: dict) -> None:
        # __init__ re-derives the hub mask and the shared CSR transpose.
        self.__init__(
            state["transition"],
            state["index"],
            scan_precision=state.get("scan_precision", "float64"),
        )

    # ------------------------------------------------------------------ #
    # internals — query pipeline
    # ------------------------------------------------------------------ #
    def _query_checked(
        self, query: int, k: int, params: QueryParams, scan_mode: str
    ) -> QueryResult:
        """Run one pre-validated query through PMPN plus the chosen scan."""
        stages = StageTimer()
        total_timer = Timer()
        with total_timer:
            with stages.time("pmpn"):
                pmpn = proximity_to_node(
                    self.transition,
                    query,
                    alpha=self.index.params.alpha,
                    tolerance=params.tolerance,
                    transposed=self._transposed,
                )
            proximity_to_q = pmpn.proximities

            if scan_mode == "scalar":
                nodes, tally = self._scan_scalar(proximity_to_q, k, params, stages)
            else:
                nodes, tally = self._scan_vectorized(
                    proximity_to_q,
                    k,
                    params,
                    stages,
                    jit=self._ensure_scan_jit() if scan_mode == "numba" else None,
                )

        statistics = QueryStatistics(
            n_results=int(nodes.size),
            n_candidates=tally.n_candidates,
            n_hits=tally.n_hits,
            n_exact_shortcut=tally.n_exact,
            n_pruned_immediately=tally.n_pruned,
            n_refinement_iterations=tally.n_refine_iterations,
            n_refined_nodes=tally.n_refined_nodes,
            pmpn_iterations=pmpn.iterations,
            seconds=total_timer.elapsed,
            stage_seconds=stages.as_dict(),
            n_exact_fallbacks=tally.n_fallbacks,
        )
        parent = current_span()
        if parent is not None:
            span = parent.record(
                "engine.query", total_timer.elapsed, query=query, k=k
            )
            span.annotate(
                n_candidates=tally.n_candidates,
                n_pruned=tally.n_pruned,
                n_exact_shortcut=tally.n_exact,
                n_staircase_hits=tally.n_hits,
                n_refine_iterations=tally.n_refine_iterations,
                n_refined_nodes=tally.n_refined_nodes,
                n_exact_fallbacks=tally.n_fallbacks,
                pmpn_iterations=pmpn.iterations,
            )
            # Stage timings come straight from the StageTimer (already
            # exclusive per stage) — synthetic children, no double timing.
            for stage_name, stage_seconds in stages.as_dict().items():
                span.record(f"stage.{stage_name}", stage_seconds)
            for shard_start, shard_size, shard_seconds, shard_pruned in (
                tally.shard_records
            ):
                span.record(
                    "shard.scan",
                    shard_seconds,
                    shard=shard_start,
                    n_nodes=shard_size,
                    n_pruned=shard_pruned,
                )
        # QueryResult freezes the answer arrays on construction (and again
        # on unpickle): results are shared across caches, deduplicated
        # requesters and worker transfers, and a silent in-place edit by one
        # holder would corrupt every other holder's answer.
        return QueryResult(
            query=query,
            k=k,
            nodes=nodes,
            proximities_to_query=proximity_to_q,
            statistics=statistics,
        )

    def _ensure_scan_jit(self):
        """Load (once) the compiled scan kernels for ``scan_mode="numba"``."""
        if self._scan_jit is None:
            self._scan_jit = load_numba_kernels()
        return self._scan_jit

    def _scan_lower32(self) -> Optional[np.ndarray]:
        """The float32 screening plane, or ``None`` at full precision."""
        if self.scan_precision != "float32":
            return None
        return self.index.lower_bounds_f32()

    def _scan_vectorized(
        self,
        proximity_to_q: np.ndarray,
        k: int,
        params: QueryParams,
        stages: StageTimer,
        jit=None,
    ) -> Tuple[np.ndarray, "_ScanTally"]:
        """Columnar scan: whole-array prune, exact shortcut, batched bound.

        Only candidates left undecided by all three vectorized stages enter
        the per-node refinement loop (timed as the separate ``refine`` stage).
        """
        tally = _ScanTally()
        columns = self.index.columns
        with stages.time("scan"):
            exact_idx, candidates, hits, n_pruned = columnar_stage_decisions(
                proximity_to_q,
                columns,
                k,
                lower32=self._scan_lower32(),
                workspace=self._bounds_workspace,
                jit=jit,
            )
            tally.n_pruned = n_pruned
            tally.n_exact = int(exact_idx.size)
            tally.n_candidates = int(candidates.size)
            tally.n_hits = int(np.count_nonzero(hits))

        refined_results: List[int] = []
        with stages.time("refine"):
            for node in candidates[~hits]:
                outcome = self._refine_candidate(
                    int(node), float(proximity_to_q[node]), k, params
                )
                tally.absorb_refinement(outcome)
                if outcome.is_result:
                    refined_results.append(int(node))

        nodes = np.sort(
            np.concatenate(
                [
                    exact_idx,
                    candidates[hits],
                    np.asarray(refined_results, dtype=np.int64),
                ]
            )
        ).astype(np.int64)
        return nodes, tally

    def _scan_scalar(
        self,
        proximity_to_q: np.ndarray,
        k: int,
        params: QueryParams,
        stages: StageTimer,
    ) -> Tuple[np.ndarray, "_ScanTally"]:
        """Reference scan: the per-node while-loop of Algorithm 4 over all nodes."""
        tally = _ScanTally()
        results: List[int] = []
        with stages.time("scan"):
            for node in range(self.n_nodes):
                outcome = self._verify_node(
                    node,
                    float(proximity_to_q[node]),
                    k,
                    params,
                )
                if outcome.is_result:
                    results.append(node)
                tally.absorb(outcome)
        return np.asarray(results, dtype=np.int64), tally

    # ------------------------------------------------------------------ #
    # internals — per-node verification
    # ------------------------------------------------------------------ #
    def _verify_node(
        self,
        node: int,
        proximity_to_query: float,
        k: int,
        params: QueryParams,
    ) -> "_NodeOutcome":
        """Decide whether ``node`` belongs to the reverse top-k result.

        Implements the while-loop body of Algorithm 4 for a single node,
        including the refinement of line 13 and the bookkeeping needed for
        Figure 6's candidate/hit statistics.
        """
        state = self.index.state(node)
        outcome = _NodeOutcome()

        lower_k = state.kth_lower_bound(k)
        if proximity_to_query < lower_k:
            outcome.pruned_immediately = True
            return outcome

        if state.is_exact:
            # The lower bound is the true k-th value; the comparison is final.
            outcome.is_result = True
            outcome.used_exact_shortcut = True
            return outcome

        # Candidate: run the first upper-bound check, then hand over to the
        # shared refinement loop (also used by the vectorized scan).
        working = state if params.update_index else state.copy()
        residual_mass = self._effective_residual_mass(working)
        upper = kth_upper_bound(working.lower_bounds, residual_mass, k)
        if proximity_to_query >= upper:
            outcome.is_result = True
            outcome.was_candidate = True
            outcome.was_immediate_hit = True
            return outcome
        return self._refine_candidate(node, proximity_to_query, k, params, working=working)

    def _refine_candidate(
        self,
        node: int,
        proximity_to_query: float,
        k: int,
        params: QueryParams,
        working: Optional[NodeState] = None,
    ) -> "_NodeOutcome":
        """Continue Algorithm 4 for a candidate whose first bound check failed.

        The caller has already established that ``node`` survived the prune,
        is not exact, and was not an immediate hit — i.e. the first loop
        iteration of Algorithm 4 ran through its upper-bound check
        unsuccessfully.  This picks up exactly where that iteration left off
        (budget check, refinement, re-check), so outcomes and counters are
        identical regardless of which scan produced the candidate.

        Column sync happens once per refined candidate through the final
        ``set_state`` write-back; nothing reads the columnar views between
        refinement iterations of a single candidate.
        """
        if working is None:
            state = self.index.state(node)
            working = state if params.update_index else state.copy()
        outcome = _NodeOutcome(was_candidate=True)
        refinements = 0
        while True:
            if refinements >= params.max_refinements:
                # Refinement budget exhausted: decide exactly with one power
                # method run instead of guessing (rare; counted in statistics).
                outcome.is_result = self._exact_decision(node, working, proximity_to_query, k)
                outcome.used_exact_fallback = True
                break
            progressed = refine_node_state(
                working, self.index, self.transition, self._hub_mask,
                kernel=self._kernel,
            )
            refinements += 1
            if not progressed:
                # No residue remains: the lower bounds are exact values now.
                outcome.is_result = proximity_to_query >= working.kth_lower_bound(k)
                break
            if proximity_to_query < working.kth_lower_bound(k):
                break
            if working.is_exact:
                outcome.is_result = True
                break
            residual_mass = self._effective_residual_mass(working)
            upper = kth_upper_bound(working.lower_bounds, residual_mass, k)
            if proximity_to_query >= upper:
                outcome.is_result = True
                break

        outcome.refinement_iterations = refinements
        if params.update_index and (refinements or outcome.used_exact_fallback):
            self.index.set_state(node, working)
        return outcome

    def _exact_decision(
        self, node: int, state: NodeState, proximity_to_query: float, k: int
    ) -> bool:
        """Decide membership exactly by computing the node's proximity vector.

        Used only when the refinement budget runs out; the exact top-K values
        replace the node's lower bounds (a strictly better index entry).
        """
        from ..rwr.power_method import proximity_vector
        from ..utils.sparsetools import top_k_descending

        exact = proximity_vector(
            self.transition,
            node,
            alpha=self.index.params.alpha,
            tolerance=self.index.params.tolerance,
        ).vector
        state.lower_bounds = top_k_descending(exact, self.index.capacity)
        state.retained = {
            int(target): float(value)
            for target, value in enumerate(exact)
            if value > 0.0
        }
        state.residual = {}
        state.hub_ink = {}
        return proximity_to_query >= state.kth_lower_bound(k)

    def _effective_residual_mass(self, state: NodeState) -> float:
        """Residue mass for the upper bound, including the hub rounding deficit."""
        return self.index.state_residual_mass(state)


@dataclass
class _NodeOutcome:
    """Private per-node bookkeeping of Algorithm 4's while loop."""

    is_result: bool = False
    was_candidate: bool = False
    was_immediate_hit: bool = False
    used_exact_shortcut: bool = False
    used_exact_fallback: bool = False
    pruned_immediately: bool = False
    refinement_iterations: int = 0


@dataclass
class _ScanTally:
    """Private accumulator for the counters of :class:`QueryStatistics`."""

    n_candidates: int = 0
    n_hits: int = 0
    n_exact: int = 0
    n_pruned: int = 0
    n_refine_iterations: int = 0
    n_refined_nodes: int = 0
    n_fallbacks: int = 0
    #: Per-shard ``(start, n_nodes, seconds, n_pruned)`` records, collected
    #: by the sharded scan only while a trace is active.
    shard_records: List[Tuple[int, int, float, int]] = field(default_factory=list)

    def absorb(self, outcome: _NodeOutcome) -> None:
        """Tally one scalar-scan outcome (any of the per-node exit paths)."""
        self.n_candidates += outcome.was_candidate
        self.n_hits += outcome.was_immediate_hit
        self.n_exact += outcome.used_exact_shortcut
        self.n_pruned += outcome.pruned_immediately
        self.absorb_refinement(outcome)

    def absorb_refinement(self, outcome: _NodeOutcome) -> None:
        """Tally the refinement counters of one candidate outcome."""
        self.n_refine_iterations += outcome.refinement_iterations
        self.n_refined_nodes += outcome.refinement_iterations > 0
        self.n_fallbacks += outcome.used_exact_fallback
