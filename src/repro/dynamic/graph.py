"""Mutable edge-level view over an immutable :class:`DiGraph`.

:class:`DiGraph` is deliberately immutable — every algorithm in the package
assumes a frozen CSR.  Real proximity graphs churn, though, so the dynamic
subsystem wraps the frozen graph in a :class:`DynamicGraph`: a **delta
overlay** that buffers edge insertions, deletions and weight changes as a
sparse ``{(source, target): weight}`` dictionary on top of the base CSR,
with periodic **compaction** folding the overlay into a fresh canonical CSR
(:meth:`DiGraph.with_edges`).

Reads (:meth:`DynamicGraph.has_edge`, :meth:`DynamicGraph.edge_weight`,
effective edge count) resolve through the overlay first, so the wrapper is
always consistent with the buffered mutations; :meth:`materialize` produces
the effective immutable graph on demand (cached until the next mutation).

Two properties matter for the index maintainer downstream:

* **touched sources** — the set of source nodes with buffered mutations
  since the last :meth:`drain` is tracked separately from the overlay, so
  auto-compaction never loses the information which transition columns may
  have changed;
* **no-op elision** — an overlay entry that restores an edge to its exact
  base weight (add-then-remove, or a weight change back to the original) is
  dropped, keeping both the overlay and the eventual invalidation minimal.

The wrapper is *not* thread-safe; the dynamic serving layer serializes all
mutations behind its writer-preferring index lock.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from .._validation import check_node_index, check_positive_int
from ..exceptions import GraphError
from ..graph.digraph import DiGraph

#: Accepted update kinds.
UPDATE_OPS = ("add", "remove", "set_weight")


@dataclass(frozen=True)
class GraphUpdate:
    """One buffered edge mutation.

    Attributes
    ----------
    op:
        ``"add"`` (edge must not exist), ``"remove"`` (edge must exist) or
        ``"set_weight"`` (edge must exist; weight replaced).
    source / target:
        Endpoint node ids.
    weight:
        New edge weight for ``add`` / ``set_weight``; ignored for ``remove``.
    """

    op: str
    source: int
    target: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in UPDATE_OPS:
            raise GraphError(
                f"update op must be one of {UPDATE_OPS}, got {self.op!r}"
            )
        if self.op != "remove" and not (
            self.weight > 0 and math.isfinite(self.weight)
        ):
            raise GraphError(
                f"{self.op} update weight must be positive and finite, "
                f"got {self.weight}"
            )

    # Convenience constructors keep call sites readable.
    @classmethod
    def add(cls, source: int, target: int, weight: float = 1.0) -> "GraphUpdate":
        """An edge insertion."""
        return cls("add", int(source), int(target), float(weight))

    @classmethod
    def remove(cls, source: int, target: int) -> "GraphUpdate":
        """An edge deletion."""
        return cls("remove", int(source), int(target))

    @classmethod
    def set_weight(cls, source: int, target: int, weight: float) -> "GraphUpdate":
        """A weight change on an existing edge."""
        return cls("set_weight", int(source), int(target), float(weight))

    @classmethod
    def coerce(cls, item: "GraphUpdate | Tuple") -> "GraphUpdate":
        """Accept ``GraphUpdate`` instances or ``(op, source, target[, weight])`` tuples."""
        if isinstance(item, GraphUpdate):
            return item
        return cls(*item)

    def as_tuple(self) -> Tuple:
        """The wire/JSON form ``coerce`` round-trips: weight omitted for removes."""
        if self.op == "remove":
            return (self.op, self.source, self.target)
        return (self.op, self.source, self.target, self.weight)


class DynamicGraph:
    """Buffered edge mutations over an immutable base :class:`DiGraph`.

    Parameters
    ----------
    base:
        The initial frozen graph.  The node set is fixed for the lifetime of
        the wrapper — dynamics are edge-level (matching the paper's §6
        application graphs, whose node populations are stable across the
        update horizon while edges churn).
    compaction_threshold:
        Once the overlay holds this many entries, the next mutation folds it
        into a fresh base CSR automatically (overlay reads cost ``O(1)`` per
        edge but materialization cost grows with the overlay, so unbounded
        buffering would degrade).
    """

    def __init__(self, base: DiGraph, *, compaction_threshold: int = 4096) -> None:
        self._base = base
        self._threshold = check_positive_int(
            compaction_threshold, "compaction_threshold"
        )
        self._overlay: Dict[Tuple[int, int], float] = {}
        self._touched_since_drain: Set[int] = set()
        self._materialized: Optional[DiGraph] = base

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def base(self) -> DiGraph:
        """The frozen graph the overlay currently builds on (last compaction)."""
        return self._base

    @property
    def n_nodes(self) -> int:
        """Number of nodes (fixed at construction)."""
        return self._base.n_nodes

    @property
    def n_edges(self) -> int:
        """Effective number of edges (base plus buffered net insertions)."""
        count = self._base.n_edges
        for (source, target), weight in self._overlay.items():
            in_base = self._base.has_edge(source, target)
            if weight == 0.0 and in_base:
                count -= 1
            elif weight > 0.0 and not in_base:
                count += 1
        return count

    @property
    def pending_updates(self) -> int:
        """Number of buffered (non-elided) overlay entries."""
        return len(self._overlay)

    @property
    def touched_sources(self) -> np.ndarray:
        """Sorted ids of sources mutated since the last :meth:`drain`."""
        return np.asarray(sorted(self._touched_since_drain), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # reads (overlay-first)
    # ------------------------------------------------------------------ #
    def edge_weight(self, source: int, target: int) -> float:
        """Effective weight of ``source -> target`` (0 when absent)."""
        source = check_node_index(source, self.n_nodes, "source")
        target = check_node_index(target, self.n_nodes, "target")
        buffered = self._overlay.get((source, target))
        if buffered is not None:
            return buffered
        return self._base.edge_weight(source, target)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether ``source -> target`` exists in the effective graph."""
        return self.edge_weight(source, target) > 0.0

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #
    def add_edge(self, source: int, target: int, weight: float = 1.0) -> None:
        """Insert a new edge; raises :class:`GraphError` if it already exists."""
        if not (weight > 0 and math.isfinite(weight)):
            raise GraphError(
                f"edge weight must be positive and finite, got {weight}"
            )
        if self.has_edge(source, target):
            raise GraphError(
                f"edge {source} -> {target} already exists "
                "(use set_weight to change it)"
            )
        self._buffer(int(source), int(target), float(weight))

    def remove_edge(self, source: int, target: int) -> None:
        """Delete an existing edge; raises :class:`GraphError` when absent."""
        if not self.has_edge(source, target):
            raise GraphError(f"cannot remove missing edge {source} -> {target}")
        self._buffer(int(source), int(target), 0.0)

    def set_weight(self, source: int, target: int, weight: float) -> None:
        """Change the weight of an existing edge."""
        if not (weight > 0 and math.isfinite(weight)):
            raise GraphError(
                f"edge weight must be positive and finite, got {weight} "
                "(delete via remove_edge)"
            )
        if not self.has_edge(source, target):
            raise GraphError(
                f"cannot set weight of missing edge {source} -> {target} "
                "(use add_edge)"
            )
        self._buffer(int(source), int(target), float(weight))

    def apply_update(self, update: "GraphUpdate | Tuple") -> None:
        """Apply one :class:`GraphUpdate` (or an ``(op, u, v[, w])`` tuple)."""
        update = GraphUpdate.coerce(update)
        if update.op == "add":
            self.add_edge(update.source, update.target, update.weight)
        elif update.op == "remove":
            self.remove_edge(update.source, update.target)
        else:
            self.set_weight(update.source, update.target, update.weight)

    def apply_updates(self, updates: Iterable["GraphUpdate | Tuple"]) -> int:
        """Apply a batch of updates; returns how many were applied."""
        count = 0
        for update in updates:
            self.apply_update(update)
            count += 1
        return count

    def _buffer(self, source: int, target: int, weight: float) -> None:
        source = check_node_index(source, self.n_nodes, "source")
        target = check_node_index(target, self.n_nodes, "target")
        self._materialized = None
        self._touched_since_drain.add(source)
        base_weight = self._base.edge_weight(source, target)
        if weight == base_weight:
            # The overlay entry would restore the base exactly: elide it.
            self._overlay.pop((source, target), None)
        else:
            self._overlay[(source, target)] = weight
        if len(self._overlay) >= self._threshold:
            self.compact()

    # ------------------------------------------------------------------ #
    # materialization / compaction
    # ------------------------------------------------------------------ #
    def materialize(self) -> DiGraph:
        """The effective immutable graph (cached until the next mutation)."""
        if self._materialized is None:
            removed = [
                edge for edge, weight in self._overlay.items() if weight == 0.0
            ]
            added = [
                (source, target, weight)
                for (source, target), weight in self._overlay.items()
                if weight > 0.0
            ]
            self._materialized = self._base.with_edges(added, removed)
        return self._materialized

    def compact(self) -> DiGraph:
        """Fold the overlay into a fresh canonical base CSR and return it.

        Touched-source bookkeeping survives compaction: the maintainer still
        learns about every column mutated since its last :meth:`drain`, even
        when auto-compaction fired in between.
        """
        self._base = self.materialize()
        self._overlay.clear()
        return self._base

    def mark_touched(self, sources: Iterable[int]) -> None:
        """Re-register ``sources`` as mutated since the last :meth:`drain`.

        Recovery hook: when index maintenance fails *after* a drain already
        cleared the touched set, the caller puts the sources back so the
        next maintenance pass re-examines those columns instead of serving
        stale bounds forever.
        """
        for source in sources:
            self._touched_since_drain.add(
                check_node_index(int(source), self.n_nodes, "source")
            )

    def drain(self) -> Tuple[DiGraph, np.ndarray]:
        """Compact and hand over ``(graph, touched_sources)`` for maintenance.

        This is the index maintainer's entry point: the returned graph is
        the new base CSR and the returned ids cover every source whose
        transition column may differ from the previous drain (a conservative
        superset — elided no-ops are already dropped, but e.g. a weight
        change under an unweighted walk is only filtered later, by the
        column-level diff).
        """
        graph = self.compact()
        touched = self.touched_sources
        self._touched_since_drain.clear()
        return graph, touched

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges}, "
            f"pending={self.pending_updates})"
        )
