"""Live serving over a mutating graph: the dynamic service façade.

:class:`DynamicReverseTopKService` extends the static
:class:`~repro.serving.service.ReverseTopKService` with the one thing a
production proximity service needs that the paper's offline/online split
does not cover: **applying graph updates while serving**.

``apply_updates`` runs entirely under the write side of the service's
writer-preferring index lock, so in-flight query bursts never observe a
half-maintained index:

1. the batch is buffered into the :class:`DynamicGraph` overlay and drained
   into a fresh compacted CSR plus the touched-source set;
2. the :class:`IndexMaintainer` delta-maintains the index (conservative
   invalidation; full rebuild past the staleness threshold), bumping the
   index version exactly once — which retires every cached answer of the
   previous graph generation from the LRU :class:`ResultCache`;
3. stale process-pool workers are discarded before the lock is released
   (thread workers share the live engine and follow automatically);
4. when a :class:`SnapshotManager` is configured, the maintained index is
   re-archived under the *new* graph's content key, so a restart against the
   mutated graph warm-starts — the old archive misses naturally, since the
   key hashes the CSR arrays.

A pure no-op batch (e.g. weight changes under the unweighted walk) leaves
the version untouched and the cache warm.
"""

from __future__ import annotations

from dataclasses import dataclass
import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..core.config import IndexParams
from ..core.query import ReverseTopKEngine
from ..graph.digraph import DiGraph
from ..serving.service import ReverseTopKService, ServiceConfig
from ..serving.snapshot import SnapshotManager
from .graph import DynamicGraph, GraphUpdate
from .maintainer import (
    DEFAULT_REBUILD_RATIO,
    IndexMaintainer,
    MaintenanceReport,
)

PathLikeOrManager = Union[str, SnapshotManager]


def _same_matrix(candidate: sp.spmatrix, expected: sp.csc_matrix) -> bool:
    """Whether ``candidate`` is bit-identical to the canonical ``expected``."""
    matrix = sp.csc_matrix(candidate, copy=True)
    matrix.sum_duplicates()
    matrix.eliminate_zeros()
    matrix.sort_indices()
    return (
        matrix.shape == expected.shape
        and np.array_equal(matrix.indptr, expected.indptr)
        and np.array_equal(matrix.indices, expected.indices)
        and np.array_equal(matrix.data, expected.data)
    )


@dataclass(frozen=True)
class UpdateMetrics:
    """Cumulative counters for the update path (the write-side "endpoint").

    Attributes
    ----------
    n_update_batches / n_updates:
        ``apply_updates`` calls, and individual edge mutations applied.
    n_noop_batches:
        Batches that left the transition (and therefore the index and the
        cache) untouched.
    n_invalidated / n_rematerialized:
        Total states reset + re-refined, and lower-bound re-expansions.
    n_full_rebuilds:
        Batches that escalated to a from-scratch rebuild.
    update_seconds:
        Wall-clock total spent inside maintenance.
    index_version:
        Index version at snapshot time.
    """

    n_update_batches: int
    n_updates: int
    n_noop_batches: int
    n_invalidated: int
    n_rematerialized: int
    n_full_rebuilds: int
    update_seconds: float
    index_version: int

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "n_update_batches": self.n_update_batches,
            "n_updates": self.n_updates,
            "n_noop_batches": self.n_noop_batches,
            "n_invalidated": self.n_invalidated,
            "n_rematerialized": self.n_rematerialized,
            "n_full_rebuilds": self.n_full_rebuilds,
            "update_seconds": self.update_seconds,
            "index_version": self.index_version,
        }


class DynamicReverseTopKService(ReverseTopKService):
    """Cached, batched, parallel serving over a graph that changes underneath.

    Typical usage::

        service = DynamicReverseTopKService.from_graph(graph)
        service.query(42, 10)                      # served + cached
        service.apply_updates([GraphUpdate.add(3, 7)])
        service.query(42, 10)                      # recomputed on the new graph

    Every answer is identical to a from-scratch engine on the *current*
    graph; ``update_metrics()`` reports what maintenance cost.
    """

    def __init__(
        self,
        engine: ReverseTopKEngine,
        config: Optional[ServiceConfig] = None,
        *,
        graph: Union[DiGraph, DynamicGraph],
        maintainer: Optional[IndexMaintainer] = None,
        snapshot: Optional[PathLikeOrManager] = None,
        warm_started: bool = False,
        registry=None,
        _trusted_transition: bool = False,
    ) -> None:
        super().__init__(engine, config, warm_started=warm_started, registry=registry)
        self.graph = (
            graph if isinstance(graph, DynamicGraph) else DynamicGraph(graph)
        )
        if self.graph.n_nodes != engine.n_nodes:
            raise ValueError(
                f"graph has {self.graph.n_nodes} nodes but the engine covers "
                f"{engine.n_nodes}"
            )
        # The default maintainer assumes the unweighted walk; engines built
        # on the weighted transition must pass an IndexMaintainer configured
        # with weighted=True (from_graph does this from its `weighted` flag).
        self.maintainer = (
            maintainer if maintainer is not None else IndexMaintainer(engine)
        )
        if self.maintainer.engine is not engine:
            raise ValueError("maintainer must wrap the service's engine")
        # Catch graph/engine/maintainer mismatches at construction, not at
        # the first apply_updates: column splicing uses the current
        # transition as its baseline, so a graph that doesn't match it — or
        # a weighted engine paired with an unweighted maintainer — would
        # silently produce a hybrid matrix and wrong answers.
        # ``_trusted_transition`` is an internal fast path for from_graph,
        # which just derived the transition from this very graph — the check
        # would be tautological there, and warm start exists to be fast.
        if not _trusted_transition:
            from ..graph.transition import (
                transition_matrix,
                weighted_transition_matrix,
            )

            builder = (
                weighted_transition_matrix
                if self.maintainer.weighted
                else transition_matrix
            )
            if not _same_matrix(
                engine.transition, builder(self.graph.materialize())
            ):
                raise ValueError(
                    "the engine's transition does not match the "
                    f"{'weighted' if self.maintainer.weighted else 'unweighted'} "
                    "transition of the graph — pass the graph the engine was "
                    "built on, and a maintainer whose `weighted` flag matches "
                    "the walk variant"
                )
        self._snapshots = (
            snapshot
            if snapshot is None or isinstance(snapshot, SnapshotManager)
            else SnapshotManager(snapshot)
        )
        self._update_lock = threading.Lock()
        self._n_update_batches = 0
        self._n_updates = 0
        self._n_noop_batches = 0
        self._n_invalidated = 0
        self._n_rematerialized = 0
        self._n_full_rebuilds = 0
        self._update_seconds = 0.0

    def bind_registry(self, registry) -> None:
        """Extend the base binding with maintenance-path instruments."""
        super().bind_registry(registry)
        batches = registry.counter(
            "repro_update_batches_total",
            "apply_updates batches by outcome",
            labels=("outcome",),
        )
        self._dyn_obs = {
            "batch_applied": batches.labels(outcome="applied"),
            "batch_noop": batches.labels(outcome="noop"),
            "updates": registry.counter(
                "repro_updates_total", "Individual edge mutations applied"
            ),
            "invalidated": registry.counter(
                "repro_maintenance_invalidated_total",
                "Index states reset and re-refined by maintenance",
            ),
            "rematerialized": registry.counter(
                "repro_maintenance_rematerialized_total",
                "Lower-bound re-expansions performed by maintenance",
            ),
            "full_rebuilds": registry.counter(
                "repro_maintenance_full_rebuilds_total",
                "Update batches escalated to a from-scratch rebuild",
            ),
            "seconds": registry.counter(
                "repro_maintenance_seconds_total",
                "Wall-clock seconds spent inside index maintenance",
            ),
        }

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: DiGraph,
        params: Optional[IndexParams] = None,
        *,
        config: Optional[ServiceConfig] = None,
        snapshot_dir: Optional[PathLikeOrManager] = None,
        transition: Optional[sp.spmatrix] = None,
        weighted: bool = False,
        rebuild_ratio: float = DEFAULT_REBUILD_RATIO,
        hub_policy: str = "pinned",
        n_shards: Optional[int] = None,
        memory_budget: Optional[int] = None,
        scan_workers: int = 0,
        scan_precision: str = "float64",
    ) -> "DynamicReverseTopKService":
        """Build (or warm-start) a dynamic service for ``graph``.

        Mirrors :meth:`ReverseTopKService.from_graph`, additionally keeping
        the snapshot manager around so every applied update batch re-archives
        the maintained index under the mutated graph's content key.
        ``weighted`` selects the walk variant — the maintainer must replay
        the same column arithmetic the transition was built with, so a
        ``transition`` passed explicitly is validated to be exactly the
        declared variant's matrix (delta maintenance cannot rebuild columns
        of an arbitrary custom transition).  ``rebuild_ratio`` and
        ``hub_policy`` configure the :class:`IndexMaintainer` (see its
        docstring for the trade-offs).

        ``n_shards`` / ``memory_budget`` / ``scan_workers`` select the
        partitioned index exactly as on the static service: maintenance
        invalidations route to the owning shards through the sharded
        index's ``replace_contents``, the version bump stays global (one
        retired cache generation per batch), and the re-archive after each
        batch persists the sharded layout under the new graph's key.  Note
        that maintenance rebuilds shards in RAM; memmap backing returns at
        the next warm start from the re-archived layout.
        """
        from ..graph.transition import transition_matrix, weighted_transition_matrix

        builder = weighted_transition_matrix if weighted else transition_matrix
        matrix = builder(graph)
        if transition is not None and not _same_matrix(transition, matrix):
            raise ValueError(
                "transition does not match the "
                f"{'weighted' if weighted else 'unweighted'} transition of the "
                "graph; delta maintenance can only rebuild columns of the "
                "standard walk variants (pass weighted=True for the weighted "
                "one, or drive IndexMaintainer directly)"
            )
        engine, manager, from_snapshot = cls._prepare_engine(
            graph,
            params,
            snapshot_dir,
            matrix,
            n_shards=n_shards,
            memory_budget=memory_budget,
            scan_workers=scan_workers,
            scan_precision=scan_precision,
        )
        maintainer = IndexMaintainer(
            engine,
            rebuild_ratio=rebuild_ratio,
            weighted=weighted,
            hub_policy=hub_policy,
        )
        return cls(
            engine,
            config,
            graph=graph,
            maintainer=maintainer,
            snapshot=manager,
            warm_started=from_snapshot,
            _trusted_transition=True,
        )

    # ------------------------------------------------------------------ #
    # the update path
    # ------------------------------------------------------------------ #
    def apply_updates(
        self, updates: Iterable[Union[GraphUpdate, Tuple]]
    ) -> MaintenanceReport:
        """Apply a batch of edge mutations and delta-maintain the index.

        The whole batch is one atomic transition for readers: queries either
        see the pre-batch index (and cache generation) or the fully
        maintained post-batch one.  A batch that fails *validation*
        (duplicate add, missing remove, bad weight) is rejected wholesale —
        no prefix of it is buffered for a later call to commit silently.

        If *maintenance* itself raises after the (already validated) batch
        was committed to the graph, the exception propagates with the graph
        mutated but the index not yet maintained; the touched columns stay
        marked dirty, so any subsequent successful call — including an
        empty ``apply_updates([])`` retry — re-maintains them.  Do not
        resubmit the same batch: its mutations are already in the graph.

        Returns the maintainer's report.
        """
        self._ensure_open()
        batch: List[GraphUpdate] = [GraphUpdate.coerce(item) for item in updates]
        with self._index_lock.write():
            # close() drains writers through this same lock before releasing
            # resources; a batch that acquired it afterwards must not mutate
            # a service whose pools are already shut down.
            self._ensure_open()
            # Rehearse the whole batch against the current effective graph
            # first: a mid-batch validation failure (duplicate add, missing
            # remove) must reject the batch atomically instead of leaving
            # its valid prefix in the live overlay.
            rehearsal = DynamicGraph(self.graph.materialize())
            rehearsal.apply_updates(batch)
            self.graph.apply_updates(batch)  # identical state: cannot fail
            version_before = self.engine.index.version
            new_graph, touched = self.graph.drain()
            try:
                report = self.maintainer.apply(new_graph, touched)
            except Exception:
                # The graph is committed but the index is not maintained:
                # keep the columns marked dirty so the next apply (or an
                # explicit retry) re-invalidates them instead of serving
                # stale bounds forever.
                self.graph.mark_touched(touched)
                raise
            self._discard_stale_workers(version_before)
            version_after = self.engine.index.version
            if version_after != version_before:
                # The bump just retired one whole cache generation; drop its
                # stranded entries eagerly — LRU aging alone would leave the
                # dead keys pinning heavyweight results under churn.
                self._cache.purge_versions_below(version_after)
        if report.changed and self._snapshots is not None:
            # Re-archive outside the write lock so serving resumes while the
            # compressed .npz is written; the read lock keeps writers (and
            # therefore index mutation) out while the states are serialized.
            # Content-keyed on the new CSR: the pre-update archive misses
            # naturally on the next start, this one hits.
            with self._index_lock.read():
                if self.engine.index.version == version_after:
                    self._snapshots.store(
                        self.engine.index,
                        new_graph,
                        transition=self.engine.transition,
                    )
                # else: a concurrent writer moved the index past this
                # batch's state — skip rather than archive a mixture (at
                # worst the next start rebuilds).
        with self._update_lock:
            self._n_update_batches += 1
            self._n_updates += len(batch)
            self._n_noop_batches += not report.changed
            self._n_invalidated += report.n_invalidated
            self._n_rematerialized += report.n_rematerialized
            self._n_full_rebuilds += report.full_rebuild
            self._update_seconds += report.seconds
        obs = self._dyn_obs
        obs["batch_noop" if not report.changed else "batch_applied"].inc()
        obs["updates"].inc(len(batch))
        obs["invalidated"].inc(report.n_invalidated)
        obs["rematerialized"].inc(report.n_rematerialized)
        obs["full_rebuilds"].inc(int(report.full_rebuild))
        obs["seconds"].inc(report.seconds)
        self._obs["index_version"].set(version_after)
        return report

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def update_metrics(self) -> UpdateMetrics:
        """A consistent snapshot of the update-path counters.

        The version is read under the read side of the index lock so a
        concurrent ``apply_updates`` mid-rewrite can't leak a half-bumped
        value; the locks stay sequential (never nested) to keep the global
        acquisition graph acyclic.
        """
        with self._index_lock.read():
            index_version = self.engine.index.version
        with self._update_lock:
            return UpdateMetrics(
                n_update_batches=self._n_update_batches,
                n_updates=self._n_updates,
                n_noop_batches=self._n_noop_batches,
                n_invalidated=self._n_invalidated,
                n_rematerialized=self._n_rematerialized,
                n_full_rebuilds=self._n_full_rebuilds,
                update_seconds=self._update_seconds,
                index_version=index_version,
            )

    def __repr__(self) -> str:
        return (
            f"DynamicReverseTopKService(n_nodes={self.engine.n_nodes}, "
            f"n_edges={self.graph.n_edges}, "
            f"cache={self.config.cache_capacity}, "
            f"workers={self.config.n_workers}/{self.config.backend})"
        )
